#!/usr/bin/env python
"""Check that local markdown links resolve.

Scans the given markdown files (or the repo's default doc set) for
inline links and validates every *local* target: relative file paths
must exist, and intra-document ``#fragment`` anchors must match a
heading in the target file (GitHub slug rules: lowercase, punctuation
stripped, spaces to dashes). External ``http(s):``/``mailto:`` links
are skipped — CI must not depend on the network.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/PERFORMANCE.md",
    "docs/BENCHMARKS.md",
    "docs/CONFIGURATION.md",
]

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def _strip_code_fences(text: str) -> str:
    """Drop fenced code blocks — example links in them are not claims."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _github_slug(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    slugs: set[str] = set()
    for line in _strip_code_fences(md_path.read_text()).splitlines():
        m = _HEADING_RE.match(line)
        if m:
            slugs.add(_github_slug(m.group(1)))
    return slugs


def check_file(md_path: Path) -> list[str]:
    """Return one error string per broken local link in ``md_path``."""
    errors: list[str] = []
    text = _strip_code_fences(md_path.read_text())
    for target in _LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md_path}: broken link target {target!r}")
                continue
        else:
            resolved = md_path.resolve()
        if fragment:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue
            if fragment not in _anchors(resolved):
                errors.append(
                    f"{md_path}: anchor #{fragment} not found in {resolved.name}"
                )
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] if argv else [
        Path(f) for f in DEFAULT_FILES if Path(f).exists()
    ]
    errors: list[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        errors.extend(check_file(path))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
