"""Shared fixtures: tiny deterministic clips and default configurations.

Everything here is sized for speed — unit tests run on 48x32 clips of a
handful of frames, which still exercise every code path (3x2 macroblocks
per frame, I/P/B frames, motion, skip, intra).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.options import EncoderOptions
from repro.trace.kernels import build_program
from repro.video.frame import Frame, FrameSequence
from repro.video.synthetic import SceneSpec, generate_scene


@pytest.fixture(scope="session")
def tiny_video() -> FrameSequence:
    """A 48x32, 5-frame clip with moderate motion."""
    return generate_scene(
        SceneSpec(
            width=48, height=32, n_frames=5, fps=30.0,
            texture_detail=0.5, motion_magnitude=0.4, noise_level=0.1,
            n_sprites=3, seed=7, name="tiny",
        )
    )


@pytest.fixture(scope="session")
def static_video() -> FrameSequence:
    """A 48x32 clip with no motion at all (every frame identical)."""
    spec = SceneSpec(
        width=48, height=32, n_frames=4, fps=30.0,
        texture_detail=0.3, motion_magnitude=0.0, motion_irregularity=0.0,
        noise_level=0.0, n_sprites=2, seed=3, name="static",
    )
    clip = generate_scene(spec)
    first = clip.frames[0]
    return FrameSequence(frames=[first] * 4, fps=30.0, name="static")


@pytest.fixture(scope="session")
def busy_video() -> FrameSequence:
    """A 48x32 clip with heavy, irregular motion and scene cuts."""
    return generate_scene(
        SceneSpec(
            width=48, height=32, n_frames=6, fps=30.0,
            texture_detail=0.9, motion_magnitude=0.9, motion_irregularity=0.8,
            scene_cut_period=3, noise_level=0.3, n_sprites=6, seed=11,
            name="busy",
        )
    )


@pytest.fixture()
def default_options() -> EncoderOptions:
    return EncoderOptions(crf=23, refs=2, bframes=1)


@pytest.fixture()
def program():
    return build_program()


@pytest.fixture()
def gradient_frame() -> Frame:
    """A deterministic 32x32 gradient frame."""
    y, x = np.mgrid[0:32, 0:32]
    return Frame(((y * 4 + x * 3) % 256).astype(np.uint8))
