"""Documentation conventions for the codec and bench packages.

Every module must carry a module docstring and an explicit ``__all__``,
and every ``__all__`` entry must resolve to a real attribute — the
public surface documented in docs/ARCHITECTURE.md is generated from
these, so a drifting ``__all__`` is a docs bug, not just style.

The docs-drift audit at the bottom holds docs/CONFIGURATION.md to the
same standard: it is the documented-knob contract, so a ``Settings``
field or ``REPRO_*`` variable that exists in code but not in the doc
fails the suite.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path

import pytest

AUDITED_PACKAGES = [
    "repro.codec",
    "repro.bench",
    "repro.api",
    "repro.service",
    "repro.loadgen",
]


def _modules():
    names = []
    for pkg_name in AUDITED_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.append(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__):
            names.append(f"{pkg_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("name", _modules())
def test_module_has_docstring(name):
    mod = importlib.import_module(name)
    doc = (mod.__doc__ or "").strip()
    assert doc, f"{name} is missing a module docstring"
    assert len(doc) >= 40, f"{name} docstring is too thin to be useful: {doc!r}"


@pytest.mark.parametrize("name", _modules())
def test_module_declares_all(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    assert exported is not None, f"{name} does not declare __all__"
    assert exported, f"{name} declares an empty __all__"
    assert len(exported) == len(set(exported)), f"{name} has duplicate __all__ entries"


@pytest.mark.parametrize("name", _modules())
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    missing = [entry for entry in mod.__all__ if not hasattr(mod, entry)]
    assert not missing, f"{name}.__all__ names missing attributes: {missing}"


@pytest.mark.parametrize("name", _modules())
def test_public_callables_documented(name):
    """Everything in __all__ that is callable or a class has a docstring."""
    mod = importlib.import_module(name)
    undocumented = []
    for entry in mod.__all__:
        obj = getattr(mod, entry)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(entry)
    assert not undocumented, f"{name}: undocumented public API: {undocumented}"


# ----------------------------------------------------------------------
# Docs-drift audit: docs/CONFIGURATION.md is the knob contract
# ----------------------------------------------------------------------

_REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def configuration_doc() -> str:
    path = _REPO_ROOT / "docs" / "CONFIGURATION.md"
    assert path.exists(), "docs/CONFIGURATION.md is the knob contract and must exist"
    return path.read_text(encoding="utf-8")


def test_every_settings_field_documented(configuration_doc):
    """A new Settings field must land in docs/CONFIGURATION.md with it."""
    from repro.api import Settings

    missing = [
        field for field in Settings.__dataclass_fields__
        if f"`{field}`" not in configuration_doc
    ]
    assert not missing, (
        f"Settings fields missing from docs/CONFIGURATION.md: {missing} — "
        "add a row to the relevant knob table"
    )


def test_every_env_var_documented(configuration_doc):
    """Every ENV_VARS entry (and the retry family) must be in the doc."""
    from repro.api import ENV_VARS

    expected = set(ENV_VARS) | {
        "REPRO_RETRY_ATTEMPTS", "REPRO_RETRY_BASE_DELAY",
        "REPRO_RETRY_GROWTH", "REPRO_RETRY_MAX_DELAY",
        "REPRO_RETRY_JITTER", "REPRO_RETRY_SEED",
        # pytest-benchmark sizing lives outside Settings but is still a
        # documented knob.
        "REPRO_BENCH_SCALE",
    }
    missing = sorted(v for v in expected if v not in configuration_doc)
    assert not missing, (
        f"env vars missing from docs/CONFIGURATION.md: {missing}"
    )


def test_benchmarks_doc_covers_matrix_contract():
    """docs/BENCHMARKS.md documents every leg kind and both schemas."""
    from repro.bench import LEG_KINDS, MATRIX_SCHEMA, TREND_SCHEMA

    doc = (_REPO_ROOT / "docs" / "BENCHMARKS.md").read_text(encoding="utf-8")
    missing = sorted(leg for leg in LEG_KINDS if f"`{leg}`" not in doc)
    assert not missing, f"legs missing from docs/BENCHMARKS.md: {missing}"
    assert MATRIX_SCHEMA in doc
    assert TREND_SCHEMA in doc
