"""Documentation conventions for the codec and bench packages.

Every module must carry a module docstring and an explicit ``__all__``,
and every ``__all__`` entry must resolve to a real attribute — the
public surface documented in docs/ARCHITECTURE.md is generated from
these, so a drifting ``__all__`` is a docs bug, not just style.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

AUDITED_PACKAGES = [
    "repro.codec",
    "repro.bench",
    "repro.api",
    "repro.service",
    "repro.loadgen",
]


def _modules():
    names = []
    for pkg_name in AUDITED_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.append(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__):
            names.append(f"{pkg_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("name", _modules())
def test_module_has_docstring(name):
    mod = importlib.import_module(name)
    doc = (mod.__doc__ or "").strip()
    assert doc, f"{name} is missing a module docstring"
    assert len(doc) >= 40, f"{name} docstring is too thin to be useful: {doc!r}"


@pytest.mark.parametrize("name", _modules())
def test_module_declares_all(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    assert exported is not None, f"{name} does not declare __all__"
    assert exported, f"{name} declares an empty __all__"
    assert len(exported) == len(set(exported)), f"{name} has duplicate __all__ entries"


@pytest.mark.parametrize("name", _modules())
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    missing = [entry for entry in mod.__all__ if not hasattr(mod, entry)]
    assert not missing, f"{name}.__all__ names missing attributes: {missing}"


@pytest.mark.parametrize("name", _modules())
def test_public_callables_documented(name):
    """Everything in __all__ that is callable or a class has a docstring."""
    mod = importlib.import_module(name)
    undocumented = []
    for entry in mod.__all__:
        obj = getattr(mod, entry)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(entry)
    assert not undocumented, f"{name}: undocumented public API: {undocumented}"
