"""Unit tests for the labeled-series dimension of repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    label_key,
    latency_buckets,
    parse_label_key,
)


class TestLabelKeys:
    def test_key_sorts_labels(self):
        key = label_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'

    def test_round_trip(self):
        labels = {"stage": "encode", "config": "fe_op"}
        name, parsed = parse_label_key(label_key("m", labels))
        assert name == "m"
        assert parsed == labels

    def test_round_trip_with_escapes(self):
        labels = {"msg": 'a"b\\c\nd'}
        name, parsed = parse_label_key(label_key("m", labels))
        assert parsed == labels

    def test_unlabeled_key_is_bare_name(self):
        assert label_key("m", {}) == "m"
        assert parse_label_key("m") == ("m", {})


class TestLatencyBuckets:
    def test_span_microseconds_to_minutes(self):
        buckets = latency_buckets()
        assert buckets[0] == pytest.approx(1e-6)
        assert buckets[-1] >= 300.0          # minutes of tail headroom
        assert list(buckets) == sorted(buckets)

    def test_one_two_five_ladder(self):
        buckets = latency_buckets()
        assert 1e-3 in buckets and 2e-3 in buckets and 5e-3 in buckets


class TestLabeledRegistry:
    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("jobs", {"config": "a"}).inc(1)
        reg.counter("jobs", {"config": "b"}).inc(2)
        reg.counter("jobs").inc(4)
        flat = reg.as_dict()
        assert flat['jobs{config="a"}'] == 1
        assert flat['jobs{config="b"}'] == 2
        assert flat["jobs"] == 4

    def test_series_lists_family(self):
        reg = MetricsRegistry()
        reg.counter("jobs", {"config": "a"}).inc()
        reg.counter("jobs", {"config": "b"}).inc()
        reg.counter("other").inc()
        family = reg.series("jobs")
        assert len(family) == 2
        assert {m.labels["config"] for m in family} == {"a", "b"}

    def test_merge_state_preserves_labels(self):
        worker = MetricsRegistry()
        worker.counter("jobs", {"config": "a"}).inc(3)
        worker.histogram("lat", latency_buckets(),
                         {"stage": "encode"}).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("jobs", {"config": "a"}).inc(1)
        parent.merge_state(worker.export_state())
        flat = parent.as_dict()
        assert flat['jobs{config="a"}'] == 4
        assert flat['lat{stage="encode"}']["count"] == 1

    def test_histogram_fraction_below(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        assert h.fraction_below(8.0) == pytest.approx(1.0, abs=0.05)
        assert 0.0 < h.fraction_below(1.0) < 0.5
        assert MetricsRegistry().histogram("e").fraction_below(1.0) == 1.0

    def test_unlabeled_export_shape_unchanged(self):
        """Pre-existing consumers read histogram state without a labels
        key; only labeled series carry one."""
        reg = MetricsRegistry()
        reg.histogram("plain").observe(1.0)
        reg.histogram("tagged", None, {"k": "v"}).observe(1.0)
        state = reg.export_state()["histograms"]
        assert "labels" not in state["plain"]
        assert state['tagged{k="v"}']["labels"] == {"k": "v"}
