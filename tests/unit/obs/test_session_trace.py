"""Unit tests for session nesting rules and cross-process trace merge."""

import pytest

from repro.obs import session as obs
from repro.obs.session import NestedSessionError
from repro.obs.spans import SpanRecorder, TraceContext


class TestNestedSessions:
    def test_nested_entry_raises(self):
        with obs.telemetry_session():
            with pytest.raises(NestedSessionError) as err:
                with obs.telemetry_session():
                    pass  # pragma: no cover - never reached
            # The message must tell the caller how to recover.
            assert "reset_for_subprocess" in str(err.value)
        assert obs.current() is None

    def test_slot_restored_after_nested_failure(self):
        with obs.telemetry_session() as tel:
            with pytest.raises(NestedSessionError):
                with obs.telemetry_session():
                    pass  # pragma: no cover
            assert obs.current() is tel
        assert obs.current() is None

    def test_reset_for_subprocess_clears_inherited_slot(self):
        with obs.telemetry_session():
            obs.reset_for_subprocess()
            assert obs.current() is None
            with obs.telemetry_session():
                pass
        assert obs.current() is None


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="abc", parent_span_id=7)
        assert TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_current_trace_context_tracks_open_span(self):
        assert obs.current_trace_context() is None
        with obs.telemetry_session() as tel:
            ctx = obs.current_trace_context()
            assert ctx.trace_id == tel.trace_id
            assert ctx.parent_span_id is None
            with obs.span("outer"):
                inner = obs.current_trace_context()
                assert inner.parent_span_id == tel.spans.open_span_id

    def test_session_inherits_context_trace_id(self):
        ctx = TraceContext(trace_id="deadbeef", parent_span_id=3)
        with obs.telemetry_session(ctx) as tel:
            assert tel.trace_id == "deadbeef"


class TestMergeWorkerState:
    def _worker_state(self):
        """Simulate a worker session: one root span with a child."""
        with obs.telemetry_session(TraceContext("worker-trace")) as tel:
            tel.metrics.counter("worker.jobs").inc()
            with tel.spans.span("task"):
                with tel.spans.span("encode"):
                    pass
            return tel.export_state()

    def test_spans_reparented_under_open_span(self):
        state = self._worker_state()
        with obs.telemetry_session() as tel:
            with obs.span("fan_out") as sp:
                obs.merge_worker_state(state)
            fan_out_id = sp.span_id
        by_name = {s.name: s for s in tel.spans.finished}
        assert by_name["task"].parent_id == fan_out_id
        assert by_name["encode"].parent_id == by_name["task"].span_id
        assert by_name["task"].depth == 1
        assert by_name["encode"].depth == 2
        # Foreign spans are tagged with the trace they came from.
        assert by_name["task"].attrs["trace"] == "worker-trace"
        assert tel.metrics.as_dict()["worker.jobs"] == 1

    def test_adopt_remaps_ids_into_local_space(self):
        state = self._worker_state()
        rec = SpanRecorder()
        with rec.span("local"):
            pass
        adopted = rec.adopt(list(state["spans"]))
        assert adopted == 2
        ids = [s.span_id for s in rec.finished]
        assert len(ids) == len(set(ids))     # no collisions

    def test_legacy_metrics_only_payload(self):
        """A bare metrics export (the pre-trace worker protocol) still
        merges: metrics land, no spans are invented."""
        with obs.telemetry_session() as worker_tel:
            worker_tel.metrics.counter("c").inc(2)
            metrics_only = worker_tel.metrics.export_state()
        with obs.telemetry_session() as tel:
            obs.merge_worker_state(metrics_only)
            assert tel.metrics.as_dict()["c"] == 2
            assert tel.spans.finished == []

    def test_merge_disabled_is_noop(self):
        obs.merge_worker_state(self._worker_state())  # no session: no-op
