"""Unit tests for repro.obs.expose: Prometheus text + snapshotting."""

import json

from repro.obs.expose import (
    MetricsSnapshotter,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloObjective, SloSpec


def _registry():
    reg = MetricsRegistry()
    reg.counter("service.jobs_completed").inc(3)
    reg.gauge("service.queue_depth").set(2)
    h = reg.histogram("service.latency_s", (0.1, 1.0),
                      {"stage": "encode", "config": "fe_op"})
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestRenderPrometheus:
    def test_name_sanitization(self):
        assert sanitize_metric_name("service.queue_depth") == \
            "repro_service_queue_depth"
        assert sanitize_metric_name("9lives") == "repro__9lives"

    def test_counter_gauge_lines(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_service_jobs_completed_total counter" in text
        assert "repro_service_jobs_completed_total 3" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 2" in text

    def test_histogram_buckets_cumulative_with_labels(self):
        lines = render_prometheus(_registry()).splitlines()
        bucket_lines = [l for l in lines
                        if l.startswith("repro_service_latency_s_bucket")]
        # Labels are carried through and le added; counts are cumulative.
        assert bucket_lines == [
            'repro_service_latency_s_bucket{config="fe_op",stage="encode",le="0.1"} 1',
            'repro_service_latency_s_bucket{config="fe_op",stage="encode",le="1"} 2',
            'repro_service_latency_s_bucket{config="fe_op",stage="encode",le="+Inf"} 3',
        ]
        assert ('repro_service_latency_s_count{config="fe_op",stage="encode"} 3'
                in lines)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestMetricsSnapshotter:
    def test_exit_flush_writes_all_artifacts(self, tmp_path):
        reg = _registry()
        out = tmp_path / "metrics"
        # interval_s=0 disables the thread; only the exit flush runs.
        with MetricsSnapshotter(reg, out, interval_s=0):
            reg.counter("service.jobs_completed").inc()
        prom = (out / "metrics.prom").read_text()
        assert "repro_service_jobs_completed_total 4" in prom
        rows = [json.loads(l) for l in
                (out / "snapshots.jsonl").read_text().splitlines()]
        assert rows[-1]["seq"] == 0
        assert rows[-1]["metrics"] == len(reg)

    def test_slo_snapshot_written(self, tmp_path):
        reg = _registry()
        spec = SloSpec(name="t", objectives=(
            SloObjective(name="errs", kind="error_rate",
                         bad="service.jobs_failed",
                         total="service.jobs_completed", max_rate=0.5),
        ))
        with MetricsSnapshotter(reg, tmp_path, interval_s=0, slo_spec=spec):
            pass
        doc = json.loads((tmp_path / "slo.json").read_text())
        assert doc["spec"] == "t"
        assert doc["ok"] is True
        row = json.loads(
            (tmp_path / "snapshots.jsonl").read_text().splitlines()[-1]
        )
        assert row["slo_ok"] is True
        assert row["breached"] == []

    def test_interval_thread_ticks(self, tmp_path):
        reg = _registry()
        snap = MetricsSnapshotter(reg, tmp_path, interval_s=0.01)
        with snap:
            deadline = 200
            while snap.ticks < 2 and deadline:
                deadline -= 1
                import time
                time.sleep(0.01)
        assert snap.ticks >= 2  # at least one timed tick + exit flush
