"""Unit tests for repro.obs.slo: spec validation and evaluation."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, latency_buckets
from repro.obs.slo import (
    SloObjective,
    SloSpec,
    evaluate_slo,
    load_slo_spec,
)


def _latency(name="p99", metric="svc.latency_s", labels=None,
             percentile=99.0, threshold_s=1.0):
    return SloObjective(
        name=name, kind="latency", metric=metric,
        labels=labels or {}, percentile=percentile,
        threshold_s=threshold_s,
    )


def _registry_with_latency(values, labels=None):
    reg = MetricsRegistry()
    h = reg.histogram("svc.latency_s", latency_buckets(), labels)
    for v in values:
        h.observe(v)
    return reg


class TestObjectiveValidation:
    def test_latency_needs_metric(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", threshold_s=1.0)

    def test_latency_rejects_unsnapshotted_percentile(self):
        with pytest.raises(ValueError):
            _latency(percentile=95.0)

    def test_latency_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            _latency(threshold_s=0.0)

    def test_error_rate_needs_bad_and_total(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="error_rate", max_rate=0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="availability")

    def test_payload_round_trip(self):
        obj = _latency(labels={"stage": "encode"})
        assert SloObjective.from_payload(obj.to_payload()) == obj

    def test_payload_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            SloObjective.from_payload(
                {"name": "x", "kind": "latency", "metric": "m",
                 "threshold_s": 1.0, "window": "30d"}
            )


class TestSpecValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SloSpec(name="s", objectives=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SloSpec(name="s", objectives=(_latency(), _latency()))

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "name": "t",
            "objectives": [_latency().to_payload()],
        }))
        spec = load_slo_spec(path)
        assert spec.name == "t"
        assert spec.objectives[0].name == "p99"

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(ValueError):
            load_slo_spec(path)


class TestEvaluation:
    def test_latency_pass_and_breach(self):
        spec = SloSpec(name="s", objectives=(_latency(threshold_s=10.0),))
        reg = _registry_with_latency([0.1, 0.2, 0.3])
        assert evaluate_slo(spec, reg.as_dict()).ok

        tight = SloSpec(name="s", objectives=(_latency(threshold_s=0.05),))
        report = evaluate_slo(tight, reg.as_dict())
        assert not report.ok
        assert report.breached == ("p99",)

    def test_latency_label_superset_matching(self):
        """An objective's labels select every series carrying at least
        those labels; the worst matching series decides the verdict."""
        reg = MetricsRegistry()
        fast = reg.histogram("svc.latency_s", latency_buckets(),
                             {"stage": "encode", "config": "fe_op"})
        slow = reg.histogram("svc.latency_s", latency_buckets(),
                             {"stage": "encode", "config": "bs_op"})
        for _ in range(5):
            fast.observe(0.01)
            slow.observe(5.0)
        spec = SloSpec(name="s", objectives=(
            _latency(labels={"stage": "encode"}, threshold_s=1.0),
        ))
        report = evaluate_slo(spec, reg.as_dict())
        assert not report.ok                      # slow config breaches
        assert report.results[0].actual > 1.0

    def test_latency_vacuous_pass_without_samples(self):
        spec = SloSpec(name="s", objectives=(_latency(),))
        assert evaluate_slo(spec, {}).ok

    def test_error_rate(self):
        obj = SloObjective(name="errs", kind="error_rate",
                           bad="svc.errors", total="svc.requests",
                           max_rate=0.05)
        spec = SloSpec(name="s", objectives=(obj,))
        ok = evaluate_slo(spec, {"svc.errors": 1.0, "svc.requests": 100.0})
        assert ok.ok
        bad = evaluate_slo(spec, {"svc.errors": 10.0, "svc.requests": 100.0})
        assert not bad.ok
        assert bad.results[0].actual == pytest.approx(0.10)
        assert bad.results[0].burn_rate == pytest.approx(2.0)

    def test_error_rate_vacuous_pass_with_zero_total(self):
        obj = SloObjective(name="errs", kind="error_rate",
                           bad="svc.errors", total="svc.requests",
                           max_rate=0.05)
        spec = SloSpec(name="s", objectives=(obj,))
        assert evaluate_slo(spec, {}).ok

    def test_deadline_miss_rate_reads_service_counters(self):
        obj = SloObjective(name="deadlines", kind="deadline_miss_rate",
                           max_rate=0.25)
        spec = SloSpec(name="s", objectives=(obj,))
        ok = evaluate_slo(spec, {"service.deadline_misses": 1.0,
                                 "service.jobs_with_deadline": 8.0})
        assert ok.ok
        bad = evaluate_slo(spec, {"service.deadline_misses": 4.0,
                                  "service.jobs_with_deadline": 8.0})
        assert not bad.ok

    def test_burn_rate_capped_and_json_safe(self):
        obj = SloObjective(name="errs", kind="error_rate",
                           bad="b", total="t", max_rate=0.0)
        spec = SloSpec(name="s", objectives=(obj,))
        report = evaluate_slo(spec, {"b": 5.0, "t": 10.0})
        payload = report.to_payload()
        text = json.dumps(payload)          # must not emit Infinity
        assert json.loads(text)["objectives"][0]["burn_rate"] <= 1e9

    def test_report_render_and_payload(self):
        spec = SloSpec(name="s", objectives=(_latency(threshold_s=10.0),))
        reg = _registry_with_latency([0.1])
        report = evaluate_slo(spec, reg.as_dict())
        assert "p99" in report.render()
        payload = report.to_payload()
        assert payload["spec"] == "s"
        assert payload["ok"] is True
        assert payload["breached"] == []

    def test_same_verdict_live_and_snapshot(self):
        """Evaluating the live registry and its as_dict snapshot must
        agree — the CI gate re-checks exported run.json artifacts."""
        reg = _registry_with_latency([0.1, 0.9], {"stage": "encode"})
        reg.counter("svc.errors").inc(2)
        reg.counter("svc.requests").inc(100)
        spec = SloSpec(name="s", objectives=(
            _latency(labels={"stage": "encode"}, threshold_s=1.0),
            SloObjective(name="errs", kind="error_rate", bad="svc.errors",
                         total="svc.requests", max_rate=0.05),
        ))
        live = evaluate_slo(spec, reg.as_dict())
        snapshot = evaluate_slo(
            spec, json.loads(json.dumps(reg.as_dict()))
        )
        assert live.to_payload() == snapshot.to_payload()
