"""Unit tests for the fleet-compare renderers in repro.obs.export.

Drives ``render_run``'s ``meta.fleet_compare`` cost table and
``diff_runs``' throughput/$ comparison from hand-built payloads (no
service runs), pinning the section headers, row content, ranking order,
and the only-one-run / missing-section edge cases.
"""

from __future__ import annotations

from repro.obs import session as obs
from repro.obs.export import build_run_artifact, diff_runs, render_run


def _fleet_row(name: str, jobs_per_dollar: float, **overrides) -> dict:
    row = {
        "fleet": {"name": name, "spec": "c5.xlarge", "description": ""},
        "workers": 4,
        "hourly_usd": 0.25,
        "completed": 8,
        "failed": 0,
        "jobs_per_dollar": jobs_per_dollar,
        "e2e_p99_s": 0.5,
        "cost_per_completed_usd": 4.2e-6,
        "makespan_s": 1.25,
        "control_cost_per_completed_usd": 5.0e-6,
        "control_jobs_per_dollar": jobs_per_dollar * 0.8,
        "control_e2e_p99_s": 0.4,
        "cost_margin_vs_control_pct": 16.0,
    }
    row.update(overrides)
    return row


def _artifact(fleets: list[dict] | None, **fc_overrides) -> dict:
    with obs.telemetry_session() as tel:
        with obs.span("fleet_compare"):
            obs.inc("service.jobs_submitted")
        if fleets is not None:
            tel.meta["fleet_compare"] = {
                "objective": "min-cost",
                "mix": "table3",
                "count": 8,
                "seed": 0,
                "deadline_s": None,
                "budget_usd": None,
                "fleets": fleets,
                **fc_overrides,
            }
    return build_run_artifact(
        tel, experiment="fleet-compare", scale="min-cost", wall_seconds=1.0
    )


class TestRenderRunFleetSection:
    def test_renders_rows_ranked_by_jobs_per_dollar(self):
        art = _artifact([
            _fleet_row("x86", 100.0),
            _fleet_row("arm", 300.0),
        ])
        text = render_run(art)
        assert "fleet-compare: objective=min-cost" in text
        assert "jobs/$" in text and "vs random" in text
        # Best throughput/$ renders first regardless of payload order.
        assert text.index("arm") < text.index("x86")
        assert "+16.0%" in text

    def test_constraints_appear_in_header_when_set(self):
        art = _artifact(
            [_fleet_row("arm", 300.0)], deadline_s=2.5, budget_usd=0.05
        )
        text = render_run(art)
        assert "deadline=2.5s" in text
        assert "budget=$0.05/h" in text

    def test_section_absent_without_meta(self):
        assert "fleet-compare:" not in render_run(_artifact(None))


class TestDiffRunsFleetSection:
    def test_diffs_jobs_per_dollar_per_fleet(self):
        a = _artifact([_fleet_row("arm", 200.0)])
        b = _artifact([_fleet_row("arm", 250.0)])
        text = diff_runs(a, b)
        assert "fleet-compare throughput/$" in text
        assert "arm" in text
        assert "+50" in text
        assert "(+25.00%)" in text

    def test_fleet_missing_from_one_run(self):
        a = _artifact([_fleet_row("arm", 200.0)])
        b = _artifact([_fleet_row("arm", 200.0), _fleet_row("x86", 90.0)])
        text = diff_runs(a, b)
        assert "x86" in text
        assert "(only one run)" in text

    def test_section_absent_when_neither_run_compared_fleets(self):
        a = _artifact(None)
        assert "fleet-compare throughput/$" not in diff_runs(a, a)
