"""Unit tests for repro.obs.export: JSONL, run.json, Chrome trace, diff."""

import json

import pytest

from repro.obs import session as obs
from repro.obs.export import (
    SCHEMA_VERSION,
    build_run_artifact,
    chrome_trace,
    diff_runs,
    export_session,
    load_run,
    read_events_jsonl,
    render_run,
    validate_run,
    write_events_jsonl,
)


def _session_with_activity():
    with obs.telemetry_session() as tel:
        with obs.span("experiment", id="test"):
            with obs.span("encode", crf=23):
                obs.inc("encoder.encodes")
                obs.observe("topdown.retiring", 40.0)
                obs.observe("topdown.retiring", 60.0)
                obs.set_gauge("depth", 3)
    return tel


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tel = _session_with_activity()
        path = tmp_path / "events.jsonl"
        write_events_jsonl(tel.spans.finished, path)
        rows = read_events_jsonl(path)
        assert len(rows) == len(tel.spans.finished)
        for row, rec in zip(rows, tel.spans.finished):
            assert row["kind"] == "span"
            assert row["name"] == rec.name
            assert row["span_id"] == rec.span_id
            assert row["parent_id"] == rec.parent_id
            assert row["start_ns"] == rec.start_ns
            assert row["end_ns"] == rec.end_ns


class TestChromeTrace:
    def test_structure(self):
        tel = _session_with_activity()
        doc = chrome_trace(tel.spans.finished)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == 2
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0
            assert {"name", "ts", "pid", "tid", "args"} <= set(ev)
        # Sorted by start time: parent first.
        assert doc["traceEvents"][0]["name"] == "experiment"

    def test_json_serializable(self):
        tel = _session_with_activity()
        json.dumps(chrome_trace(tel.spans.finished))


class TestRunArtifact:
    def test_build_and_validate(self):
        tel = _session_with_activity()
        art = build_run_artifact(
            tel, experiment="fig3", scale="quick", wall_seconds=1.25
        )
        assert art["schema_version"] == SCHEMA_VERSION
        assert art["experiment"] == "fig3"
        assert art["scale"] == "quick"
        assert art["status"] == "ok"
        assert art["wall_seconds"] == 1.25
        assert art["metrics"]["encoder.encodes"] == 1
        assert art["topdown"]["retiring"] == pytest.approx(50.0)
        assert art["spans"]["encode"]["calls"] == 1
        validate_run(art)

    def test_validate_rejects_missing_field(self):
        tel = _session_with_activity()
        art = build_run_artifact(
            tel, experiment="x", scale="quick", wall_seconds=0.0
        )
        del art["metrics"]
        with pytest.raises(ValueError, match="metrics"):
            validate_run(art)

    def test_validate_rejects_unknown_field(self):
        tel = _session_with_activity()
        art = build_run_artifact(
            tel, experiment="x", scale="quick", wall_seconds=0.0
        )
        art["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            validate_run(art)

    def test_validate_rejects_wrong_type(self):
        tel = _session_with_activity()
        art = build_run_artifact(
            tel, experiment="x", scale="quick", wall_seconds=0.0
        )
        art["wall_seconds"] = "fast"
        with pytest.raises(ValueError, match="wall_seconds"):
            validate_run(art)

    def test_validate_rejects_future_schema(self):
        tel = _session_with_activity()
        art = build_run_artifact(
            tel, experiment="x", scale="quick", wall_seconds=0.0
        )
        art["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_run(art)

    def test_export_and_load_round_trip(self, tmp_path):
        tel = _session_with_activity()
        paths = export_session(
            tel, tmp_path / "out", experiment="fig3", scale="quick",
            wall_seconds=2.0,
        )
        assert set(paths) == {"run", "events", "trace"}
        loaded = load_run(paths["run"])
        assert loaded["experiment"] == "fig3"
        assert loaded["metrics"]["encoder.encodes"] == 1
        # trace.json must parse and carry the spans.
        trace = json.loads(paths["trace"].read_text())
        assert len(trace["traceEvents"]) == 2
        assert len(read_events_jsonl(paths["events"])) == 2


class TestRenderAndDiff:
    def _artifact(self, retiring: float) -> dict:
        with obs.telemetry_session() as tel:
            with obs.span("experiment"):
                obs.inc("encoder.encodes")
                obs.observe("topdown.retiring", retiring)
        return build_run_artifact(
            tel, experiment="fig3", scale="quick", wall_seconds=1.0
        )

    def test_render_mentions_key_fields(self):
        text = render_run(self._artifact(40.0))
        assert "fig3" in text
        assert "quick" in text
        assert "encoder.encodes" in text
        assert "retiring" in text

    def test_diff_reports_delta_per_metric(self):
        a = self._artifact(40.0)
        b = self._artifact(44.0)
        text = diff_runs(a, b)
        assert "topdown.retiring.mean" in text
        assert "+10.00%" in text  # 40 -> 44
        assert "encoder.encodes" in text
        assert "+0.00%" in text

    def test_diff_handles_disjoint_metrics(self):
        a = self._artifact(40.0)
        b = self._artifact(40.0)
        a["metrics"]["only.in.a"] = 1.0
        text = diff_runs(a, b)
        assert "only.in.a" in text
        assert "(only one run)" in text
