"""Unit tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_percentiles_uniform_fine_buckets(self):
        # Unit-width buckets 0..1000: percentile interpolation over a
        # uniform stream must land within one bucket of the true value.
        h = Histogram("h", bounds=tuple(float(i) for i in range(1001)))
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(500, abs=1.0)
        assert h.percentile(90) == pytest.approx(900, abs=1.0)
        assert h.percentile(99) == pytest.approx(990, abs=1.0)
        assert h.percentile(0) == pytest.approx(1.0, abs=1.0)
        assert h.percentile(100) == 1000.0

    def test_percentiles_clamped_to_observed_range(self):
        # One coarse bucket [0, 1000]: interpolation may not leave [min, max].
        h = Histogram("h", bounds=(1000.0,))
        h.observe(10.0)
        h.observe(20.0)
        assert 10.0 <= h.percentile(50) <= 20.0

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(42.0)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == pytest.approx(42.0, rel=0.25)

    def test_overflow_bucket(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.bucket_counts[-1] == 1
        assert h.percentile(100) == 100.0

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_snapshot_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.snapshot()) == {
            "count", "sum", "min", "max", "mean", "p50", "p90", "p99"
        }

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_default_buckets_cover_wide_range(self):
        b = default_buckets()
        assert b[0] <= 1e-9
        assert b[-1] >= 1e9
        assert all(x < y for x, y in zip(b, b[1:]))


class TestExportMerge:
    """The worker -> parent merge path used by the parallel sweep engine."""

    def test_histogram_round_trip_preserves_exact_stats(self):
        src = Histogram("h")
        for v in (0.5, 1.5, 7.0):
            src.observe(v)
        dst = Histogram("h")
        dst.merge_state(src.export_state())
        assert dst.count == 3
        assert dst.total == 9.0
        assert dst.min == 0.5 and dst.max == 7.0
        assert dst.bucket_counts == src.bucket_counts

    def test_histogram_merge_accumulates(self):
        a = Histogram("h", bounds=(1.0, 10.0))
        b = Histogram("h", bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(100.0)
        a.merge_state(b.export_state())
        assert a.count == 3
        assert a.min == 0.5 and a.max == 100.0
        assert a.bucket_counts == [1, 1, 1]

    def test_histogram_merge_rejects_mismatched_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        b.observe(1.5)
        with pytest.raises(ValueError, match="mismatched bucket bounds"):
            a.merge_state(b.export_state())

    def test_empty_histogram_merge_is_a_noop(self):
        a = Histogram("h")
        a.observe(2.0)
        a.merge_state(Histogram("h").export_state())
        assert a.count == 1 and a.min == 2.0

    def test_registry_merge_semantics(self):
        """Counters add, gauges last-write-win, histograms accumulate."""
        parent = MetricsRegistry()
        parent.counter("jobs").inc(2)
        parent.gauge("depth").set(1.0)
        parent.histogram("lat").observe(1.0)

        worker = MetricsRegistry()
        worker.counter("jobs").inc(3)
        worker.counter("worker_only").inc(1)
        worker.gauge("depth").set(9.0)
        worker.histogram("lat").observe(3.0)

        parent.merge_state(worker.export_state())
        assert parent.counter("jobs").value == 5
        assert parent.counter("worker_only").value == 1
        assert parent.gauge("depth").value == 9.0
        assert parent.histogram("lat").count == 2

    def test_registry_export_state_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        state = reg.export_state()
        assert set(state) == {"counters", "gauges", "histograms"}
        restored = json.loads(json.dumps(state))
        fresh = MetricsRegistry()
        fresh.merge_state(restored)
        assert fresh.counter("c").value == 1
        assert fresh.histogram("h").count == 1


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_as_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.as_dict()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert isinstance(snap["h"], dict) and snap["h"]["count"] == 1

    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        assert list(reg.as_dict()) == ["aa", "zz"]
        assert "zz" in reg and len(reg) == 2
