"""Unit tests for repro.obs.spans and the session front door."""

import pytest

from repro.obs import session as obs
from repro.obs.spans import NULL_SPAN, SpanRecorder


class FakeClock:
    """Deterministic nanosecond clock: each read advances by `step_ns`."""

    def __init__(self, step_ns: int = 1000) -> None:
        self.now = 0
        self.step_ns = step_ns

    def __call__(self) -> int:
        self.now += self.step_ns
        return self.now


class TestSpanRecorder:
    def test_single_span_timing(self):
        rec = SpanRecorder(clock=FakeClock(step_ns=500))
        with rec.span("root"):
            pass
        (s,) = rec.finished
        assert s.name == "root"
        assert s.duration_ns == 500
        assert s.duration_s == pytest.approx(5e-7)
        assert s.parent_id is None
        assert s.depth == 0

    def test_nesting_links_parent_and_depth(self):
        rec = SpanRecorder()
        with rec.span("a") as a:
            with rec.span("b") as b:
                with rec.span("c"):
                    pass
            with rec.span("d"):
                pass
        by_name = {s.name: s for s in rec.finished}
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id == a.span_id
        assert by_name["c"].parent_id == b.span_id
        assert by_name["d"].parent_id == a.span_id
        assert by_name["a"].depth == 0
        assert by_name["b"].depth == 1
        assert by_name["c"].depth == 2
        # Children close before parents.
        names_in_close_order = [s.name for s in rec.finished]
        assert names_in_close_order == ["c", "b", "d", "a"]
        assert rec.open_depth == 0

    def test_child_interval_contained_in_parent(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {s.name: s for s in rec.finished}
        assert by_name["outer"].start_ns < by_name["inner"].start_ns
        assert by_name["inner"].end_ns < by_name["outer"].end_ns

    def test_attrs_and_late_set(self):
        rec = SpanRecorder()
        with rec.span("s", crf=23) as sp:
            sp.set(bits=100)
        (s,) = rec.finished
        assert s.attrs == {"crf": 23, "bits": 100}

    def test_exception_marks_error_and_propagates(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("boom"):
                raise ValueError("x")
        (s,) = rec.finished
        assert s.attrs["error"] == "ValueError"
        assert rec.open_depth == 0

    def test_totals_aggregation(self):
        rec = SpanRecorder(clock=FakeClock(step_ns=1000))
        for _ in range(3):
            with rec.span("k"):
                pass
        totals = rec.totals()
        assert totals["k"]["calls"] == 3
        assert totals["k"]["total_s"] == pytest.approx(3e-6)

    def test_roots(self):
        rec = SpanRecorder()
        with rec.span("r1"):
            with rec.span("c"):
                pass
        with rec.span("r2"):
            pass
        assert [s.name for s in rec.roots()] == ["r1", "r2"]


class TestSessionFrontDoor:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None
        assert obs.span("anything", k=1) is NULL_SPAN
        # All helpers are silent no-ops without a session.
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 2.0)

    def test_null_span_contextmanager(self):
        with obs.span("off") as sp:
            sp.set(extra=1)  # must not raise

    def test_session_routes_helpers(self):
        with obs.telemetry_session() as tel:
            assert obs.enabled()
            with obs.span("work", kind="test"):
                obs.inc("jobs", 2)
                obs.observe("latency", 0.5)
                obs.set_gauge("depth", 7)
        assert not obs.enabled()
        assert [s.name for s in tel.spans.finished] == ["work"]
        assert tel.metrics.counter("jobs").value == 2
        assert tel.metrics.gauge("depth").value == 7
        assert tel.metrics.histogram("latency").count == 1

    def test_sessions_do_not_nest(self):
        with obs.telemetry_session():
            with pytest.raises(RuntimeError):
                with obs.telemetry_session():
                    pass

    def test_session_uninstalls_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.telemetry_session():
                raise RuntimeError("boom")
        assert not obs.enabled()
