"""Unit tests for repro._util."""

import numpy as np
import pytest

from repro._util import (
    check_choice,
    check_positive,
    check_range,
    clamp,
    format_table,
    geometric_mean,
    rng_for,
    stable_seed,
)


class TestValidation:
    def test_check_range_accepts_bounds(self):
        check_range("x", 0, 0, 10)
        check_range("x", 10, 0, 10)

    def test_check_range_rejects_outside(self):
        with pytest.raises(ValueError, match="x must be in"):
            check_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_range("x", -1, 0, 10)

    def test_check_positive(self):
        check_positive("n", 1e-9)
        with pytest.raises(ValueError):
            check_positive("n", 0)
        with pytest.raises(ValueError):
            check_positive("n", -3)

    def test_check_choice(self):
        check_choice("mode", "a", ("a", "b"))
        with pytest.raises(ValueError, match="mode must be one of"):
            check_choice("mode", "c", ("a", "b"))


class TestSeeding:
    def test_stable_seed_deterministic(self):
        assert stable_seed("a", 1, "b") == stable_seed("a", 1, "b")

    def test_stable_seed_distinguishes_parts(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("ab") != stable_seed("a", "b")

    def test_stable_seed_is_63_bit(self):
        for parts in (("x",), ("y", 2), (1, 2, 3)):
            s = stable_seed(*parts)
            assert 0 <= s < (1 << 63)

    def test_rng_for_reproducible_streams(self):
        a = rng_for("scene", 1).random(8)
        b = rng_for("scene", 1).random(8)
        assert np.array_equal(a, b)

    def test_rng_for_independent_streams(self):
        a = rng_for("scene", 1).random(8)
        b = rng_for("scene", 2).random(8)
        assert not np.array_equal(a, b)


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_edges(self):
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in out and "4.250" in out

    def test_floatfmt(self):
        out = format_table(["v"], [[1.23456]], floatfmt=".1f")
        assert "1.2" in out and "1.23" not in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row length"):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        out = format_table(["name", "v"], [["long-name", 1], ["x", 2]])
        lines = out.splitlines()
        # All rows should have equal width.
        assert len({len(l) for l in lines}) == 1
