"""Unit tests for repro.trace.events."""

import numpy as np
import pytest

from repro.trace.events import BranchEvent, KernelEvent, MemoryEvent, TraceStream
from repro.trace.program import InstrMix


class TestMemoryEvent:
    def test_valid_kinds(self):
        for kind in ("r", "w", "i"):
            MemoryEvent("k", np.array([0], dtype=np.uint64), kind)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            MemoryEvent("k", np.array([0], dtype=np.uint64), "x")


class TestTraceStream:
    def test_instruction_totals_accumulate(self):
        stream = TraceStream()
        stream.add_instr("a", InstrMix(alu=10, load=5, branch=2))
        stream.add_instr("a", InstrMix(alu=10, load=5, branch=2))
        stream.add_instr("b", InstrMix(mul=4, store=1))
        assert stream.total_instructions == 39
        assert stream.total_branches == 4
        assert stream.instr_by_kernel["a"].alu == 20
        assert stream.instr_by_kernel["b"].mul == 4

    def test_summary_contents(self):
        stream = TraceStream()
        stream.add_instr("a", InstrMix(alu=1, branch=1))
        stream.events.append(KernelEvent("a", 1.0))
        stream.n_frames = 2
        summary = stream.summary()
        assert summary["instructions"] == 2
        assert summary["events"] == 1
        assert summary["frames"] == 2

    def test_iter_events_order(self):
        stream = TraceStream()
        k = KernelEvent("a", 1.0)
        m = MemoryEvent("a", np.array([0], dtype=np.uint64), "r")
        b = BranchEvent("a:s", np.array([True]))
        stream.events.extend([k, m, b])
        assert list(stream.iter_events()) == [k, m, b]

    def test_empty_stream(self):
        stream = TraceStream()
        assert stream.total_instructions == 0
        assert list(stream.iter_events()) == []
