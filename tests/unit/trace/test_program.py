"""Unit tests for repro.trace.program."""

import numpy as np
import pytest

from repro.trace.program import (
    CACHE_LINE,
    CODE_BASE,
    CodeLayout,
    InstrMix,
    Kernel,
    LoopNest,
    Program,
    default_layout,
)


def _kernel(name, hot=4, cold=2, **mix):
    return Kernel(
        name=name,
        instr_mix=InstrMix(**(mix or {"alu": 5, "load": 2, "branch": 1})),
        call_overhead=InstrMix(alu=2),
        hot_lines=hot,
        cold_lines=cold,
    )


class TestInstrMix:
    def test_total(self):
        mix = InstrMix(alu=3, mul=1, load=2, store=1, branch=1)
        assert mix.total == 8

    def test_scaled(self):
        mix = InstrMix(alu=4, load=2).scaled(2.5)
        assert mix.alu == 10 and mix.load == 5

    def test_add(self):
        a = InstrMix(alu=1, branch=2)
        b = InstrMix(alu=3, store=1)
        c = a + b
        assert c.alu == 4 and c.branch == 2 and c.store == 1


class TestDefaultLayout:
    def test_fetch_covers_full_extent(self):
        kernels = {"a": _kernel("a", hot=4, cold=4)}
        layout = default_layout(kernels)
        # Interleaved layout: the fetch footprint is hot + cold.
        assert len(layout.fetch_line_addrs["a"]) == 8
        assert len(layout.hot_line_addrs["a"]) == 4
        assert len(layout.cold_line_addrs["a"]) == 4

    def test_addresses_are_cache_line_aligned(self):
        layout = default_layout({"a": _kernel("a"), "b": _kernel("b")})
        for addrs in layout.fetch_line_addrs.values():
            assert np.all(addrs % CACHE_LINE == 0)
            assert np.all(addrs >= CODE_BASE)

    def test_kernels_do_not_overlap(self):
        layout = default_layout({"a": _kernel("a"), "b": _kernel("b")})
        a = set(layout.fetch_line_addrs["a"].tolist())
        b = set(layout.fetch_line_addrs["b"].tolist())
        assert not (a & b)

    def test_total_lines(self):
        kernels = {"a": _kernel("a", hot=3, cold=1), "b": _kernel("b", hot=2, cold=2)}
        layout = default_layout(kernels)
        assert layout.total_lines == 8
        assert layout.footprint_bytes() == 8 * CACHE_LINE

    def test_no_branch_hints_by_default(self):
        layout = default_layout({"a": _kernel("a")})
        assert layout.branch_hints is False

    def test_fetch_footprint_lines(self):
        layout = default_layout({"a": _kernel("a", hot=3, cold=2)})
        assert layout.fetch_footprint_lines() == 5

    def test_hot_only_kernel(self):
        layout = default_layout({"a": _kernel("a", hot=5, cold=0)})
        assert len(layout.hot_line_addrs["a"]) == 5
        assert len(layout.cold_line_addrs["a"]) == 0


class TestProgram:
    def test_kernel_lookup(self):
        prog = Program({"a": _kernel("a")})
        assert prog.kernel("a").name == "a"
        with pytest.raises(KeyError, match="unknown kernel"):
            prog.kernel("zzz")

    def test_requires_kernels(self):
        with pytest.raises(ValueError):
            Program({})

    def test_with_layout_replaces(self):
        prog = Program({"a": _kernel("a")})
        new_layout = CodeLayout(
            hot_line_addrs={"a": np.array([0])},
            cold_line_addrs={"a": np.array([], dtype=np.int64)},
            fetch_line_addrs={"a": np.array([0])},
            total_lines=1,
            description="custom",
        )
        new = prog.with_layout(new_layout)
        assert new.layout.description == "custom"
        assert prog.layout.description != "custom"

    def test_loop_nest_defaults(self):
        k = _kernel("a")
        assert k.loop_nest == LoopNest()
        assert not k.loop_nest.tileable
