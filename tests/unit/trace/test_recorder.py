"""Unit tests for repro.trace.recorder and repro.trace.kernels."""

import numpy as np
import pytest

from repro.trace.events import BranchEvent, KernelEvent, MemoryEvent
from repro.trace.kernels import KERNELS, build_program, kernel_spec
from repro.trace.recorder import AddressMap, NullTracer, RecordingTracer


class TestKernelCatalog:
    def test_catalog_nonempty(self):
        assert len(KERNELS) >= 15

    def test_expected_kernels_present(self):
        for name in ("me_sad", "dct4", "quant", "trellis", "entropy_coeff",
                     "deblock", "mode_decide", "intra_pred16"):
            assert name in KERNELS

    def test_kernel_spec_lookup(self):
        assert kernel_spec("me_sad").name == "me_sad"
        with pytest.raises(KeyError):
            kernel_spec("bogus")

    def test_all_kernels_have_positive_footprints(self):
        for k in KERNELS.values():
            assert k.hot_lines > 0
            assert k.cold_lines >= 0
            assert k.instr_mix.total > 0 or k.call_overhead.total > 0

    def test_tileable_kernels_marked(self):
        assert KERNELS["dct4"].loop_nest.tileable
        assert KERNELS["deblock"].loop_nest.tileable
        assert not KERNELS["me_sad"].loop_nest.tileable

    def test_build_program(self):
        prog = build_program()
        assert set(prog.kernels) == set(KERNELS)


class TestAddressMap:
    def test_alloc_page_aligned(self):
        amap = AddressMap()
        base = amap.alloc("x", 100)
        assert base % 4096 == 0

    def test_realloc_same_name_same_base(self):
        amap = AddressMap()
        a = amap.alloc("x", 100)
        b = amap.alloc("x", 50)
        assert a == b

    def test_realloc_larger_rejected(self):
        amap = AddressMap()
        amap.alloc("x", 100)
        with pytest.raises(ValueError, match="reallocated larger"):
            amap.alloc("x", 100_000)

    def test_regions_disjoint(self):
        amap = AddressMap()
        a = amap.alloc("a", 8192)
        b = amap.alloc("b", 8192)
        assert abs(a - b) >= 8192

    def test_bytes_allocated_grows(self):
        amap = AddressMap()
        before = amap.bytes_allocated
        amap.alloc("a", 4096)
        assert amap.bytes_allocated > before

    def test_zero_byte_alloc_gets_one_page(self):
        amap = AddressMap()
        base = amap.alloc("empty", 0)
        assert base % 4096 == 0
        got_base, size = amap.region("empty")
        assert got_base == base
        assert size == 4096  # rounded up to a full page, never zero

    def test_realloc_equal_size_returns_original_base(self):
        amap = AddressMap()
        a = amap.alloc("x", 4096)
        assert amap.alloc("x", 4096) == a
        # Boundary: exactly the recorded (page-rounded) size is accepted...
        _, size = amap.region("x")
        assert amap.alloc("x", size) == a
        # ...one byte more is not.
        with pytest.raises(ValueError, match="reallocated larger"):
            amap.alloc("x", size + 1)

    def test_guard_page_between_consecutive_regions(self):
        amap = AddressMap()
        a = amap.alloc("first", 4096)
        b = amap.alloc("second", 4096)
        _, a_size = amap.region("first")
        # The second region starts one guard page past the first's end,
        # so no in-bounds address of one region touches the other's page.
        assert b == a + a_size + 4096

    def test_guard_spacing_accumulates(self):
        amap = AddressMap()
        names = [f"r{i}" for i in range(4)]
        for name in names:
            amap.alloc(name, 100)
        bases = [amap.region(n)[0] for n in names]
        for prev, nxt in zip(bases, bases[1:]):
            assert nxt - prev == 4096 + 4096  # one page data + one guard

    def test_region_unknown_name_raises(self):
        with pytest.raises(KeyError):
            AddressMap().region("nope")


class TestNullTracer:
    def test_noop(self):
        t = NullTracer()
        assert not t.enabled
        t.begin_frame("I", 0)
        t.kernel("anything", iters=5)  # must not raise or record


class TestRecordingTracer:
    def _tracer(self, sample=1):
        return RecordingTracer(build_program(), sample=sample)

    def test_instruction_accounting(self):
        t = self._tracer()
        spec = kernel_spec("dct4")
        t.kernel("dct4", iters=10)
        expected = spec.instr_mix.scaled(10) + spec.call_overhead
        assert t.stream.instr.total == pytest.approx(expected.total)
        assert t.stream.kernel_calls["dct4"] == 1

    def test_events_recorded(self):
        t = self._tracer()
        reads = np.array([100, 164], dtype=np.uint64)
        branches = {"nz": np.array([True, False, True])}
        t.kernel("quant", iters=4, reads=reads, branches=branches)
        kinds = [type(e).__name__ for e in t.stream.events]
        assert "KernelEvent" in kinds
        assert "MemoryEvent" in kinds
        assert "BranchEvent" in kinds
        branch_events = [e for e in t.stream.events if isinstance(e, BranchEvent)]
        assert branch_events[0].site == "quant:nz"
        assert branch_events[0].outcomes.tolist() == [True, False, True]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            self._tracer().kernel("not_a_kernel")

    def test_negative_iters_rejected(self):
        with pytest.raises(ValueError):
            self._tracer().kernel("dct4", iters=-1)

    def test_negative_addresses_rejected(self):
        t = self._tracer()
        with pytest.raises(ValueError, match="negative address"):
            t.kernel("dct4", reads=np.array([-5]))

    def test_sampling_keeps_exact_instructions(self):
        exact = self._tracer(sample=1)
        sampled = self._tracer(sample=4)
        for tr in (exact, sampled):
            for _ in range(8):
                tr.kernel("quant", iters=4, reads=np.array([64], dtype=np.uint64))
        assert exact.stream.instr.total == sampled.stream.instr.total

    def test_sampling_reduces_events_and_weights(self):
        sampled = self._tracer(sample=4)
        for _ in range(8):
            sampled.kernel("quant", iters=4, reads=np.array([64], dtype=np.uint64))
        mem = [e for e in sampled.stream.events if isinstance(e, MemoryEvent)]
        assert len(mem) == 2  # every 4th of 8 invocations
        assert all(e.weight == 4.0 for e in mem)

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            self._tracer(sample=0)

    def test_begin_frame_counts(self):
        t = self._tracer()
        t.begin_frame("I", 0)
        t.begin_frame("P", 1)
        assert t.stream.n_frames == 2

    def test_empty_arrays_not_recorded(self):
        t = self._tracer()
        t.kernel("dct4", iters=1, reads=np.array([], dtype=np.uint64))
        mem = [e for e in t.stream.events if isinstance(e, MemoryEvent)]
        assert not mem

    def test_summary_fields(self):
        t = self._tracer()
        t.kernel("dct4", iters=2)
        summary = t.stream.summary()
        assert summary["instructions"] > 0
        assert "branches" in summary and "events" in summary
