"""Bench harness: workload wiring, artifact roundtrip, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    KERNEL_BENCH_NAMES,
    bench_artifact_path,
    compare_bench,
    load_bench,
    render_bench,
    run_e2e_fig3,
    run_kernel_benches,
    write_bench,
)
from repro.bench.report import build_payload
from repro.obs import MetricsRegistry


def _fake_payload(kernel_speedups, e2e_speedup, rev="abc1234"):
    kernels = {
        name: {
            "blocks": 64.0,
            "reference_ns_per_block": 1000.0 * s,
            "vectorized_ns_per_block": 1000.0,
            "speedup": s,
        }
        for name, s in kernel_speedups.items()
    }
    e2e = {
        "width": 112,
        "height": 64,
        "n_frames": 8,
        "cells": [
            {"crf": 23, "refs": 1, "reference_s": e2e_speedup, "vectorized_s": 1.0,
             "speedup": e2e_speedup},
        ],
        "reference_s": e2e_speedup,
        "vectorized_s": 1.0,
        "reference_frames_per_s": 8 / e2e_speedup,
        "vectorized_frames_per_s": 8.0,
        "speedup": e2e_speedup,
    }
    payload = build_payload(kernels, e2e, MetricsRegistry())
    payload["rev"] = rev
    # Pin provenance: build_payload stamps the *ambient* tree state, and
    # these tests must not depend on whether the checkout is dirty.
    payload["dirty"] = False
    return payload


def test_run_kernel_benches_subset():
    registry = MetricsRegistry()
    names = ["transform.forward_4x4", "entropy.encode_blocks"]
    results = run_kernel_benches(registry, reps=1, names=names)
    assert sorted(results) == sorted(names)
    for row in results.values():
        assert row["blocks"] > 0
        assert row["reference_ns_per_block"] > 0
        assert row["vectorized_ns_per_block"] > 0
        assert row["speedup"] > 0
    metrics = registry.as_dict()
    assert "bench.kernel.transform.forward_4x4.reference_s" in metrics
    assert "bench.kernel.transform.forward_4x4.vectorized_s" in metrics


def test_run_e2e_fig3_single_cell():
    registry = MetricsRegistry()
    e2e = run_e2e_fig3(registry, reps=1, cells=((23, 1),), n_frames=2)
    assert e2e["n_frames"] == 2
    assert len(e2e["cells"]) == 1
    assert e2e["cells"][0]["crf"] == 23
    assert e2e["reference_s"] > 0 and e2e["vectorized_s"] > 0
    assert e2e["speedup"] == pytest.approx(
        e2e["reference_s"] / e2e["vectorized_s"]
    )
    assert "bench.e2e.crf23_refs1.reference_s" in registry.as_dict()


def test_kernel_bench_names_stable():
    # The baseline artifact keys off these names; renames are breaking.
    assert "transform.forward_4x4" in KERNEL_BENCH_NAMES
    assert "motion.subpel_refine" in KERNEL_BENCH_NAMES
    assert len(KERNEL_BENCH_NAMES) == len(set(KERNEL_BENCH_NAMES))


def test_write_load_roundtrip(tmp_path):
    payload = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    path = write_bench(payload, tmp_path / "BENCH_test.json")
    assert path.read_text().endswith("\n")
    assert load_bench(path) == payload
    assert bench_artifact_path(payload, tmp_path).name == "BENCH_abc1234.json"


def test_payload_records_provenance():
    payload = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    assert isinstance(payload["dirty"], bool)
    assert isinstance(payload["timestamp"], float)
    assert payload["timestamp"] > 0


def test_dirty_payload_suffixes_artifact_name(tmp_path):
    payload = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    payload["dirty"] = True
    assert (
        bench_artifact_path(payload, tmp_path).name
        == "BENCH_abc1234+dirty.json"
    )


def test_render_bench_marks_dirty():
    payload = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    assert "+dirty" not in render_bench(payload)
    payload["dirty"] = True
    assert "abc1234+dirty" in render_bench(payload)


def test_load_bench_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/v9"}))
    with pytest.raises(ValueError, match="not a repro-bench/v1"):
        load_bench(path)


def test_render_bench_mentions_workloads():
    payload = _fake_payload({"transform.forward_4x4": 3.5}, 3.0)
    text = render_bench(payload)
    assert "transform.forward_4x4" in text
    assert "3.50x" in text
    assert "e2e fig3 slice" in text


def test_compare_no_regression():
    base = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    cur = _fake_payload({"transform.forward_4x4": 2.9}, 2.8, rev="def5678")
    report, regressions = compare_bench(cur, base, threshold=0.25)
    assert regressions == []
    assert "no regressions" in report


def test_compare_flags_e2e_regression():
    base = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    cur = _fake_payload({"transform.forward_4x4": 3.0}, 2.0, rev="def5678")
    report, regressions = compare_bench(cur, base, threshold=0.25)
    assert regressions == ["e2e:fig3-slice"]
    assert "REGRESSION" in report


def test_compare_kernel_threshold_is_looser():
    # A 40% kernel drop is within the doubled (50%) kernel threshold, but
    # the same drop end-to-end trips the 25% gate.
    base = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    cur = _fake_payload({"transform.forward_4x4": 1.8}, 3.0, rev="def5678")
    _, regressions = compare_bench(cur, base, threshold=0.25)
    assert regressions == []
    cur2 = _fake_payload({"transform.forward_4x4": 1.4}, 3.0, rev="def5678")
    _, regressions2 = compare_bench(cur2, base, threshold=0.25)
    assert regressions2 == ["kernel:transform.forward_4x4"]


def test_compare_one_sided_workloads_not_regressions():
    base = _fake_payload({"transform.forward_4x4": 3.0, "old.kernel": 2.0}, 3.0)
    cur = _fake_payload({"transform.forward_4x4": 3.0, "new.kernel": 1.0}, 3.0)
    report, regressions = compare_bench(cur, base)
    assert regressions == []
    assert "(removed)" in report
    assert "(new)" in report


def test_payload_schema_and_metrics():
    payload = _fake_payload({"transform.forward_4x4": 3.0}, 3.0)
    assert payload["schema"] == BENCH_SCHEMA
    assert set(payload["host"]) == {"python", "numpy", "machine"}
    assert isinstance(payload["metrics"], dict)
