"""Unit tests for the top-level `repro` CLI plumbing."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENT_IDS


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        for exp_id in ("tab1", "tab2", "tab3", "tab4",
                       "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert exp_id in EXPERIMENT_IDS

    def test_roofline_extension_registered(self):
        assert "roofline" in EXPERIMENT_IDS


class TestArgumentHandling:
    def test_requires_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["tab2", "--scale", "gigantic"])

    def test_static_table_runs(self, capsys):
        assert main(["tab4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "done in" in out

    def test_scale_flag_accepted(self, capsys):
        assert main(["tab2", "--scale", "medium"]) == 0
        assert "scale=medium" in capsys.readouterr().out
