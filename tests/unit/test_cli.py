"""Unit tests for the top-level `repro` CLI plumbing."""

import json

import pytest

import repro
from repro.cli import main
from repro.experiments import EXPERIMENT_DESCRIPTIONS, EXPERIMENT_IDS


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        for exp_id in ("tab1", "tab2", "tab3", "tab4",
                       "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert exp_id in EXPERIMENT_IDS

    def test_roofline_extension_registered(self):
        assert "roofline" in EXPERIMENT_IDS


class TestArgumentHandling:
    def test_requires_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["tab2", "--scale", "gigantic"])

    def test_static_table_runs(self, capsys):
        assert main(["tab4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "done in" in out

    def test_scale_flag_accepted(self, capsys):
        assert main(["tab2", "--scale", "medium"]) == 0
        assert "scale=medium" in capsys.readouterr().out


class TestVersionAndList:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_list_enumerates_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENT_IDS:
            assert exp_id in out
            assert EXPERIMENT_DESCRIPTIONS[exp_id] in out


class TestAllFailureHandling:
    def test_all_reports_succeeded_before_failure(self, capsys, monkeypatch):
        import repro.api.facade as facade

        real_render = facade.render_experiment

        def flaky(exp_id, scale):
            if exp_id == "tab3":
                raise RuntimeError("injected")
            return real_render(exp_id, scale)

        monkeypatch.setattr(facade, "render_experiment", flaky)
        assert main(["all"]) == 1
        captured = capsys.readouterr()
        assert "[tab3] FAILED: RuntimeError: injected" in captured.err
        assert "completed before the failure: tab1, tab2" in captured.err
        assert "--debug" in captured.err

    def test_debug_reraises(self, monkeypatch):
        import repro.api.facade as facade

        def boom(exp_id, scale):
            raise RuntimeError("injected")

        monkeypatch.setattr(facade, "render_experiment", boom)
        with pytest.raises(RuntimeError, match="injected"):
            main(["all", "--debug"])

    def test_single_experiment_failure_exits_nonzero(self, capsys, monkeypatch):
        import repro.api.facade as facade

        def boom(exp_id, scale):
            raise ValueError("bad")

        monkeypatch.setattr(facade, "render_experiment", boom)
        assert main(["tab4"]) == 1
        err = capsys.readouterr().err
        assert "[tab4] FAILED: ValueError: bad" in err
        assert "completed before" not in err


class TestTelemetry:
    def test_tab1_telemetry_artifacts(self, tmp_path, capsys):
        from repro.obs import load_run

        out = tmp_path / "out"
        assert main(["tab1", "--telemetry", str(out)]) == 0
        art = load_run(out / "run.json")  # validates against RUN_SCHEMA
        assert art["experiment"] == "tab1"
        assert art["scale"] == "quick"
        assert art["status"] == "ok"
        assert art["spans"]["experiment"]["calls"] == 1
        trace = json.loads((out / "trace.json").read_text())
        assert any(e["name"] == "experiment" for e in trace["traceEvents"])
        assert (out / "events.jsonl").exists()

    def test_failed_run_still_writes_artifact(self, tmp_path, capsys,
                                              monkeypatch):
        import repro.api.facade as facade
        from repro.obs import load_run

        def boom(exp_id, scale):
            raise RuntimeError("injected")

        monkeypatch.setattr(facade, "render_experiment", boom)
        out = tmp_path / "out"
        assert main(["tab4", "--telemetry", str(out)]) == 1
        art = load_run(out / "run.json")
        assert art["status"] == "failed"

    def test_all_uses_per_experiment_subdirs(self, tmp_path, capsys,
                                             monkeypatch):
        import repro.api.facade as facade

        def tiny(exp_id, scale):
            if exp_id not in ("tab1", "tab2"):
                raise RuntimeError("skip the slow ones")
            return "ok"

        monkeypatch.setattr(facade, "render_experiment", tiny)
        out = tmp_path / "out"
        main(["all", "--telemetry", str(out)])
        assert (out / "tab1" / "run.json").exists()
        assert (out / "tab2" / "run.json").exists()

    def test_session_closed_after_run(self, tmp_path, capsys):
        from repro.obs import session as obs

        assert main(["tab4", "--telemetry", str(tmp_path / "o")]) == 0
        assert not obs.enabled()


class TestCacheCommand:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 0" in out
        assert str(tmp_path) in out

    def test_stats_defaults_to_env_cache_dir(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envd"))
        assert main(["cache", "stats"]) == 0
        assert "envd" in capsys.readouterr().out

    def test_clear_removes_entries(self, tmp_path, capsys):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path)
        cache.put_value("ab" * 32, {"x": 1}, kind="sweep")
        cache.put_value("cd" * 32, {"y": 2}, kind="sweep")
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2 cache entries" in capsys.readouterr().out
        assert cache.stats().entries == 0

    def test_clear_is_idempotent(self, tmp_path, capsys):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_rejects_unknown_action(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune"])


class TestEngineFlags:
    @pytest.fixture(autouse=True)
    def _reset_engine(self):
        """``main`` configures process-wide engine defaults; undo them."""
        from repro.experiments import parallel

        yield
        parallel.configure(jobs=None, cache_dir=None)

    def test_jobs_flag_configures_engine(self, capsys):
        from repro.experiments import parallel

        assert main(["tab4", "--jobs", "3"]) == 0
        assert parallel.default_jobs() == 3

    def test_jobs_env_fallback(self, capsys, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setenv("REPRO_JOBS", "5")
        assert main(["tab4"]) == 0
        assert parallel.default_jobs() == 5

    def test_cache_dir_flag_configures_engine(self, tmp_path, capsys):
        from repro.experiments import parallel

        assert main(["tab4", "--cache-dir", str(tmp_path / "c")]) == 0
        cache = parallel.default_cache()
        assert cache is not None
        assert str(cache.root).endswith("c")

    def test_no_cache_overrides_env(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envd"))
        assert main(["tab4", "--no-cache"]) == 0
        assert parallel.default_cache() is None


class TestBenchMatrixCommand:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        from repro.api import Settings

        monkeypatch.delenv("REPRO_BENCH_MATRIX", raising=False)
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        yield
        Settings.reset()

    def _write_spec(self, tmp_path):
        spec = tmp_path / "m.json"
        spec.write_text(json.dumps({
            "name": "cli-smoke",
            "leg": "encode",
            "axes": {"kernels": ["reference", "vectorized"],
                     "clip": ["cricket"]},
            "params": {"crf": 23},
        }))
        return spec

    def test_matrix_run_writes_artifact(self, tmp_path, capsys):
        from repro.bench import load_matrix

        spec = self._write_spec(tmp_path)
        out = tmp_path / "matrix.json"
        assert main(["bench", "--matrix", str(spec), "--quick",
                     "--matrix-out", str(out)]) == 0
        payload = load_matrix(out)
        assert [c["status"] for c in payload["cells"]] == ["ok", "ok"]
        text = capsys.readouterr().out
        assert "matrix: cli-smoke" in text
        assert "2 cells, 2 ok" in text

    def test_matrix_env_var_selects_spec(self, tmp_path, capsys,
                                         monkeypatch):
        spec = self._write_spec(tmp_path)
        monkeypatch.setenv("REPRO_BENCH_MATRIX", str(spec))
        assert main(["bench", "--quick",
                     "--matrix-out", str(tmp_path / "m.json")]) == 0
        assert "matrix: cli-smoke" in capsys.readouterr().out

    def test_invalid_spec_fails_with_line_context(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "name: bad\nleg: encode\naxes:\n  rate: [4]\n"
        )
        assert main(["bench", "--matrix", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "bad.yaml:4:" in err
        assert "unknown axis" in err

    def test_matrix_validate_subcommand(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert main(["matrix", "validate", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "ok — cli-smoke" in out
        assert "2 cells" in out

    def test_matrix_validate_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "leg": "warp",
                                   "axes": {"clip": ["cricket"]}}))
        assert main(["matrix", "validate", str(bad)]) == 1
        assert "unknown leg" in capsys.readouterr().err


class TestBenchHistoryCommand:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        from repro.api import Settings

        monkeypatch.delenv("REPRO_BENCH_MATRIX", raising=False)
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        yield
        Settings.reset()

    def _write_history(self, tmp_path, speedups):
        from repro.bench import BENCH_SCHEMA

        for i, s in enumerate(speedups):
            (tmp_path / f"BENCH_rev{i}.json").write_text(json.dumps({
                "schema": BENCH_SCHEMA,
                "rev": f"rev{i}",
                "dirty": False,
                "timestamp": 1000.0 + i,
                "kernels": {},
                "e2e": {"speedup": s},
            }))

    def test_flat_history_exits_zero(self, tmp_path, capsys):
        self._write_history(tmp_path, [3.0, 3.0, 3.0])
        assert main(["bench", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "e2e:fig3-slice" in out
        assert "no drift" in out

    def test_slow_drift_exits_five(self, tmp_path, capsys):
        # The accumulating-drop scenario the pairwise exit-4 gate misses.
        self._write_history(tmp_path, [3.0, 2.9, 2.6, 2.4])
        assert main(["bench", "--history", str(tmp_path),
                     "--window", "3"]) == 5
        assert "DRIFT" in capsys.readouterr().out

    def test_trend_json_written_with_output(self, tmp_path, capsys):
        self._write_history(tmp_path, [3.0, 3.0])
        out = tmp_path / "trend.json"
        assert main(["bench", "--history", str(tmp_path),
                     "--output", str(out)]) == 0
        trend = json.loads(out.read_text())
        assert trend["schema"] == "repro-bench-trend/v1"
        assert len(trend["entries"]) == 2

    def test_empty_history_dir_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "--history", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_corrupt_artifact_is_an_error(self, tmp_path, capsys):
        (tmp_path / "BENCH_x.json").write_text("{nope")
        assert main(["bench", "--history", str(tmp_path)]) == 1
        assert "unreadable" in capsys.readouterr().err


class TestReport:
    def _make_artifact(self, tmp_path, name):
        out = tmp_path / name
        assert main(["tab4", "--telemetry", str(out)]) == 0
        return out / "run.json"

    def test_report_renders(self, tmp_path, capsys):
        path = self._make_artifact(tmp_path, "a")
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tab4" in out
        assert "wall=" in out

    def test_report_diff(self, tmp_path, capsys):
        a = self._make_artifact(tmp_path, "a")
        b = self._make_artifact(tmp_path, "b")
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "diff:" in out
        assert "wall_seconds" in out
        assert "delta" in out

    def test_report_diff_needs_two(self, tmp_path, capsys):
        a = self._make_artifact(tmp_path, "a")
        with pytest.raises(SystemExit):
            main(["report", "--diff", str(a)])

    def test_report_missing_file_is_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
        assert "repro report:" in capsys.readouterr().err

    def test_report_rejects_invalid_artifact(self, tmp_path, capsys):
        bad = tmp_path / "run.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["report", str(bad)]) == 1
        assert "missing required field" in capsys.readouterr().err
