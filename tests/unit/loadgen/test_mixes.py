"""Unit tests for workload mixes: weights, sampling, validation."""

import pytest

from repro.api.types import TranscodeRequest
from repro.loadgen.mixes import MIXES, MixTemplate, WorkloadMix, make_mix
from repro.scheduling.task import TABLE_III_TASKS


class TestTemplates:
    def test_template_stamps_typed_requests(self):
        template = MixTemplate("cricket", "slow", 18, refs=4, weight=2.0)
        request = template.request(priority=1)
        assert isinstance(request, TranscodeRequest)
        assert (request.clip, request.preset, request.crf) == (
            "cricket", "slow", 18
        )
        assert request.refs == 4
        assert request.priority == 1

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight must be > 0"):
            MixTemplate("cricket", weight=0.0)

    def test_validates_request_contract_eagerly(self):
        # Bad templates fail at construction, not at sample time.
        with pytest.raises(ValueError, match="preset"):
            MixTemplate("cricket", preset="warp9")
        with pytest.raises(ValueError, match="crf"):
            MixTemplate("cricket", crf=99)


class TestWorkloadMix:
    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="no templates"):
            WorkloadMix(name="hollow", templates=())

    def test_weights_normalize(self):
        mix = make_mix("hd_streams")
        weights = mix.weights()
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_sampling_is_deterministic_and_weighted(self):
        mix = make_mix("screencast")
        a = mix.sample(64, seed=9)
        b = mix.sample(64, seed=9)
        assert [r.to_payload() for r in a] == [r.to_payload() for r in b]
        assert mix.sample(64, seed=10) != a  # a different stream
        assert {r.clip for r in a} <= {"desktop", "presentation"}

    def test_sample_rejects_negative_n(self):
        with pytest.raises(ValueError, match="sample size"):
            make_mix("table3").sample(-1)

    def test_sample_zero_is_empty(self):
        assert make_mix("table3").sample(0) == []

    def test_describe_lists_every_template(self):
        mix = make_mix("entropy_spread")
        text = mix.describe()
        for template in mix.templates:
            assert template.clip in text


class TestBuiltinMixes:
    def test_registry_names_match_members(self):
        for name, mix in MIXES.items():
            assert mix.name == name

    def test_table3_mirrors_the_paper_mix(self):
        mix = make_mix("table3")
        assert len(mix.templates) == len(TABLE_III_TASKS)
        assert [t.clip for t in mix.templates] == [
            t.video for t in TABLE_III_TASKS
        ]

    def test_unknown_mix_raises(self):
        with pytest.raises(ValueError, match="unknown workload mix"):
            make_mix("nightly")
