"""Unit tests for the service clocks (wall and virtual)."""

import pytest

from repro.loadgen.clock import Clock, VirtualClock, WallClock


class TestWallClock:
    def test_reads_monotonic_time(self):
        clock = WallClock()
        assert clock.virtual is False
        a = clock.now_ns()
        b = clock.now_ns()
        assert b >= a > 0

    def test_advance_is_a_noop(self):
        clock = WallClock()
        clock.advance_to_ns(clock.now_ns() + 10**12)  # nothing to assert
        assert clock.now_ns() < 10**18  # still reading the perf counter


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now_ns() == 0
        assert VirtualClock(start_ns=500).now_ns() == 500
        assert VirtualClock().virtual is True

    def test_advance_to_moves_forward_only(self):
        clock = VirtualClock()
        clock.advance_to_ns(1_000)
        assert clock.now_ns() == 1_000
        clock.advance_to_ns(400)  # backward: ignored, stays monotonic
        assert clock.now_ns() == 1_000
        clock.advance_to_ns(1_000)  # same instant: also a no-op
        assert clock.now_ns() == 1_000

    def test_advance_s_accumulates(self):
        clock = VirtualClock()
        clock.advance_s(1.5)
        clock.advance_s(0.25)
        assert clock.now_ns() == 1_750_000_000

    def test_advance_s_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            VirtualClock().advance_s(-0.1)

    def test_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().now_ns()
        with pytest.raises(NotImplementedError):
            Clock().advance_to_ns(0)
