"""Unit tests for arrival processes: validation, shape, determinism.

The statistical and cross-process properties live in
``tests/property/test_loadgen_props.py``; these tests pin the concrete
contracts — constructor validation, registry dispatch, schedule
mechanics — with exact, example-based assertions.
"""

import pytest

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSchedule,
    DiurnalArrivals,
    FixedIntervalArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
    merge_schedules,
)


class TestValidation:
    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_nonpositive_rate(self, rate):
        with pytest.raises(ValueError, match="rate must be > 0"):
            PoissonArrivals(rate)

    @pytest.mark.parametrize("duration", [0.0, -5.0])
    def test_rejects_nonpositive_duration(self, duration):
        with pytest.raises(ValueError, match="duration must be > 0"):
            PoissonArrivals(4.0).schedule(duration)

    @pytest.mark.parametrize("amplitude", [-0.1, 1.0, 2.0])
    def test_diurnal_rejects_amplitude_outside_unit_interval(self, amplitude):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(4.0, amplitude=amplitude)

    def test_diurnal_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period"):
            DiurnalArrivals(4.0, period_s=0.0)

    def test_mmpp_rejects_burst_below_one(self):
        with pytest.raises(ValueError, match="burst"):
            MmppArrivals(4.0, burst=0.5)

    def test_mmpp_rejects_nonpositive_sojourn(self):
        with pytest.raises(ValueError, match="sojourn"):
            MmppArrivals(4.0, sojourn_s=0.0)

    def test_schedule_rejects_unsorted_or_negative_times(self):
        with pytest.raises(ValueError, match="sorted"):
            ArrivalSchedule((2.0, 1.0))
        with pytest.raises(ValueError, match="non-negative"):
            ArrivalSchedule((-1.0, 1.0))


class TestRegistry:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrivals("pareto", 4.0)

    def test_unsupported_extras_raise(self):
        with pytest.raises(ValueError, match="does not accept extras"):
            make_arrivals("poisson", 4.0, amplitude=0.5)
        with pytest.raises(ValueError, match="does not accept extras"):
            make_arrivals("diurnal", 4.0, burst=8.0)

    def test_extras_reach_the_process(self):
        process = make_arrivals(
            "diurnal", 4.0, amplitude=0.25, period_s=30.0
        )
        assert process.amplitude == 0.25
        assert process.period_s == 30.0
        process = make_arrivals("mmpp", 4.0, burst=12.0, sojourn_s=2.0)
        assert process.burst == 12.0
        assert process.sojourn_s == 2.0

    def test_every_kind_describes_itself(self):
        for kind in ARRIVAL_KINDS:
            assert make_arrivals(kind, 3.0).describe().startswith(kind)


class TestFixedInterval:
    def test_exact_grid(self):
        schedule = FixedIntervalArrivals(2.0).schedule(2.0)
        assert schedule.times_s == (0.5, 1.0, 1.5)

    def test_endpoint_excluded(self):
        # duration lands exactly on the grid: the [0, D) interval
        # excludes the final tick.
        schedule = FixedIntervalArrivals(1.0).schedule(3.0)
        assert schedule.times_s == (1.0, 2.0)


class TestMmppRates:
    def test_time_average_matches_target(self):
        process = MmppArrivals(10.0, burst=4.0)
        assert process.rate_low == pytest.approx(4.0)
        assert process.rate_high == pytest.approx(16.0)
        # Equal expected sojourns: the mean of the two rates is the target.
        assert (process.rate_low + process.rate_high) / 2 == pytest.approx(
            process.rate
        )


class TestScheduleMechanics:
    def test_digest_is_content_addressed(self):
        a = ArrivalSchedule((0.5, 1.0))
        b = ArrivalSchedule((0.5, 1.0))
        c = ArrivalSchedule((0.5, 1.5))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_empty_schedule(self):
        empty = ArrivalSchedule(())
        assert len(empty) == 0
        assert empty.inter_arrivals() == ()
        assert len(empty.digest()) == 64

    def test_merge_with_empty_is_identity(self):
        a = PoissonArrivals(5.0, seed=1).schedule(4.0)
        merged = merge_schedules(a, ArrivalSchedule(()))
        assert merged.times_s == a.times_s
