"""Unit tests for repro.profiling (counters, perf, vtune, roofline)."""

import pytest

from repro.codec.options import EncoderOptions
from repro.profiling.counters import CounterSet
from repro.profiling.perf import profile_transcode
from repro.profiling.roofline import RooflineModel
from repro.profiling.vtune import topdown_report


@pytest.fixture(scope="module")
def profiled(request):
    tiny = request.getfixturevalue("tiny_video")
    return profile_transcode(
        tiny, EncoderOptions(crf=23, refs=2, bframes=1), data_capacity_scale=16.0
    )


class TestProfileTranscode:
    def test_counters_consistent_with_encode(self, profiled):
        assert profiled.counters.psnr_db == pytest.approx(profiled.encode.psnr_db)
        assert profiled.counters.bitrate_kbps == pytest.approx(
            profiled.encode.bitrate_kbps
        )
        assert profiled.counters.cycles == pytest.approx(profiled.report.cycles)

    def test_default_config_is_baseline(self, profiled):
        assert profiled.report.config_name == "baseline"

    def test_sampling_approximates_exact(self, tiny_video):
        opts = EncoderOptions(crf=23, refs=2, bframes=1)
        exact = profile_transcode(tiny_video, opts, data_capacity_scale=16.0)
        sampled = profile_transcode(
            tiny_video, opts, sample=4, data_capacity_scale=16.0
        )
        # Instructions are exact either way. Cycles drift on a clip this
        # tiny (sampled events over-weight cold starts) but stay within 2x.
        assert sampled.report.instructions == exact.report.instructions
        ratio = sampled.report.cycles / exact.report.cycles
        assert 0.5 < ratio < 2.0

    def test_counterset_flattening(self, profiled):
        d = profiled.counters.as_dict()
        assert set(d) == set(CounterSet.field_names())
        assert d["backend_bound"] == profiled.counters.backend_bound


class TestVtuneReport:
    def test_report_contains_categories(self, profiled):
        text = topdown_report(profiled.report, title="tiny")
        for needle in (
            "Retiring", "Bad Speculation", "Front-End Bound", "Back-End Bound",
            "Memory Bound", "Core Bound", "MPKI", "tiny",
        ):
            assert needle in text

    def test_percentages_rendered(self, profiled):
        text = topdown_report(profiled.report)
        assert "%" in text and "IPC" in text


class TestRoofline:
    def test_ridge_point(self):
        model = RooflineModel(peak_ops_per_cycle=4.0, peak_bytes_per_cycle=8.0)
        assert model.ridge_point == pytest.approx(0.5)

    def test_attainable_clamps_at_peak(self):
        model = RooflineModel(peak_ops_per_cycle=4.0, peak_bytes_per_cycle=8.0)
        assert model.attainable(0.25) == pytest.approx(2.0)
        assert model.attainable(100.0) == pytest.approx(4.0)

    def test_classification(self):
        model = RooflineModel(peak_ops_per_cycle=4.0, peak_bytes_per_cycle=8.0)
        assert model.classify(0.1) == "memory"
        assert model.classify(10.0) == "compute"

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel().attainable(-1.0)

    def test_place_simulated_run(self, profiled):
        point = RooflineModel().place(profiled.report)
        assert point.operational_intensity > 0
        assert point.bound in ("memory", "compute")
        assert point.performance == pytest.approx(profiled.report.ipc)

    def test_invalid_roof_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel(peak_ops_per_cycle=0.0)
