"""Bench history: artifact ingestion, ordering, rolling-window drift."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    MATRIX_SCHEMA,
    collect_series,
    compare_bench,
    detect_drift,
    load_history,
    trend_payload,
)
from repro.obs import render_trend


def _bench_artifact(rev, timestamp, kernel_speedups, e2e_speedup):
    return {
        "schema": BENCH_SCHEMA,
        "rev": rev,
        "dirty": False,
        "timestamp": timestamp,
        "kernels": {
            name: {
                "blocks": 64.0,
                "reference_ns_per_block": 1000.0 * s,
                "vectorized_ns_per_block": 1000.0,
                "speedup": s,
            }
            for name, s in kernel_speedups.items()
        },
        "e2e": {
            "reference_s": e2e_speedup,
            "vectorized_s": 1.0,
            "speedup": e2e_speedup,
        },
    }


def _write(dir_path, name, payload):
    path = dir_path / name
    path.write_text(json.dumps(payload) + "\n")
    return path


def _history(tmp_path, e2e_speedups, kernel="transform.forward_4x4"):
    for i, s in enumerate(e2e_speedups):
        _write(tmp_path, f"BENCH_rev{i}.json",
               _bench_artifact(f"rev{i}", 1000.0 + i, {kernel: s}, s))
    return load_history(tmp_path)


class TestLoadHistory:
    def test_orders_by_payload_timestamp_not_filename(self, tmp_path):
        # "aaa" sorts first by name but carries the *latest* timestamp.
        _write(tmp_path, "BENCH_aaa.json",
               _bench_artifact("aaa", 2000.0, {}, 3.0))
        _write(tmp_path, "BENCH_zzz.json",
               _bench_artifact("zzz", 1000.0, {}, 2.0))
        entries = load_history(tmp_path)
        assert [e.rev for e in entries] == ["zzz", "aaa"]

    def test_ingests_matrix_artifacts_alongside_bench(self, tmp_path):
        _write(tmp_path, "BENCH_r1.json",
               _bench_artifact("r1", 1000.0, {"transform.forward_4x4": 3.0},
                               3.0))
        _write(tmp_path, "matrix.json", {
            "schema": MATRIX_SCHEMA,
            "name": "kw",
            "rev": "r2",
            "dirty": False,
            "timestamp": 2000.0,
            "cells": [
                {"id": "clip=cricket", "status": "ok",
                 "metrics": {"psnr_db": 38.5}},
                {"id": "clip=landscape", "status": "failed",
                 "metrics": {}},
            ],
        })
        entries = load_history(tmp_path)
        assert [e.kind for e in entries] == ["bench", "matrix"]
        series = collect_series(entries)
        # Failed cells contribute nothing; ok cells become series.
        assert series["matrix:kw:clip=cricket:psnr_db"] == [None, 38.5]
        assert series["kernel:transform.forward_4x4"] == [3.0, None]

    def test_rejects_unknown_schema(self, tmp_path):
        _write(tmp_path, "BENCH_bad.json", {"schema": "other/v9"})
        with pytest.raises(ValueError, match="unknown artifact schema"):
            load_history(tmp_path)

    def test_rejects_corrupt_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{nope")
        with pytest.raises(ValueError, match="unreadable"):
            load_history(tmp_path)

    def test_rejects_non_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            load_history(tmp_path / "nope")


class TestDetectDrift:
    def test_single_run_is_insufficient_never_flagged(self, tmp_path):
        entries = _history(tmp_path, [3.0])
        verdicts = detect_drift(collect_series(entries))
        assert {v.status for v in verdicts} == {"insufficient"}
        assert not any(v.flagged for v in verdicts)

    def test_all_equal_runs_are_ok(self, tmp_path):
        entries = _history(tmp_path, [3.0, 3.0, 3.0, 3.0])
        for v in detect_drift(collect_series(entries)):
            assert v.status == "ok"
            assert v.drop_frac == pytest.approx(0.0)

    def test_missing_kernel_between_revisions_is_a_gap(self, tmp_path):
        _write(tmp_path, "BENCH_r0.json",
               _bench_artifact("r0", 1000.0, {"old.kernel": 2.0}, 3.0))
        _write(tmp_path, "BENCH_r1.json",
               _bench_artifact("r1", 2000.0, {"new.kernel": 1.5}, 3.0))
        series = collect_series(load_history(tmp_path))
        assert series["kernel:old.kernel"] == [2.0, None]
        assert series["kernel:new.kernel"] == [None, 1.5]
        verdicts = {v.series: v for v in detect_drift(series)}
        # One point each: insufficient, not drifted.
        assert verdicts["kernel:old.kernel"].status == "insufficient"
        assert verdicts["kernel:new.kernel"].status == "insufficient"

    def test_slow_drift_flagged_where_pairwise_gate_passes(self, tmp_path):
        # Four runs losing a little each time: 3.0 → 2.9 → 2.6 → 2.4.
        # The pairwise gate (current vs one baseline, 25% ratio) passes,
        # but median(last 3) = 2.6 < 3.0 * 0.9 trips the rolling window.
        speedups = [3.0, 2.9, 2.6, 2.4]
        entries = _history(tmp_path, speedups)
        verdicts = detect_drift(collect_series(entries), window=3, drift=0.10)
        assert all(v.status == "drift" for v in verdicts)
        first = _bench_artifact("rev0", 1000.0,
                                {"transform.forward_4x4": 3.0}, 3.0)
        last = _bench_artifact("rev3", 1003.0,
                               {"transform.forward_4x4": 2.4}, 2.4)
        _report, regressions = compare_bench(last, first, threshold=0.25)
        assert regressions == []

    def test_validates_window_and_drift(self):
        with pytest.raises(ValueError, match="window"):
            detect_drift({}, window=0)
        with pytest.raises(ValueError, match="drift"):
            detect_drift({}, drift=1.5)


class TestTrendPayload:
    def test_payload_shape_and_render(self, tmp_path):
        entries = _history(tmp_path, [3.0, 2.9, 2.6, 2.4])
        trend = trend_payload(entries, window=3, drift=0.10)
        assert trend["schema"] == "repro-bench-trend/v1"
        assert trend["window"] == 3
        assert len(trend["entries"]) == 4
        assert [e["rev"] for e in trend["entries"]] == [
            "rev0", "rev1", "rev2", "rev3"]
        flagged = [v for v in trend["verdicts"] if v["status"] == "drift"]
        assert flagged
        text = render_trend(trend)
        assert "e2e:fig3-slice" in text
        assert "DRIFT" in text
        assert "rev0" in text and "rev3" in text

    def test_render_reports_no_drift(self, tmp_path):
        entries = _history(tmp_path, [3.0, 3.0, 3.0])
        text = render_trend(trend_payload(entries))
        assert "no drift" in text

    def test_gap_renders_as_dot_in_sparkline(self, tmp_path):
        _write(tmp_path, "BENCH_r0.json",
               _bench_artifact("r0", 1000.0, {"a.kernel": 2.0}, 3.0))
        _write(tmp_path, "BENCH_r1.json",
               _bench_artifact("r1", 2000.0, {}, 3.1))
        _write(tmp_path, "BENCH_r2.json",
               _bench_artifact("r2", 3000.0, {"a.kernel": 2.1}, 3.2))
        text = render_trend(trend_payload(load_history(tmp_path)))
        assert "·" in text
