"""Unit tests for repro.optim (profile, autofdo, graphite, pipeline)."""

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.options import EncoderOptions
from repro.optim.autofdo import autofdo_optimize, fdo_layout
from repro.optim.graphite import GRAPHITE_FLAGS, analyze_kernels, graphite_loop_opts
from repro.optim.pipeline import build_autofdo, build_default, build_graphite
from repro.optim.profile import ExecutionProfile, collect_profile
from repro.trace.kernels import KERNELS, build_program
from repro.trace.recorder import RecordingTracer


@pytest.fixture(scope="module")
def training_stream(request):
    tiny = request.getfixturevalue("tiny_video")
    program = build_program()
    tracer = RecordingTracer(program)
    Encoder(EncoderOptions(crf=23, refs=2, bframes=1), tracer=tracer).encode(tiny)
    return tracer.stream


class TestExecutionProfile:
    def test_collect_requires_streams(self):
        with pytest.raises(ValueError):
            collect_profile([])

    def test_merge_accumulates(self, training_stream):
        profile = collect_profile([training_stream, training_stream])
        assert profile.n_runs == 2
        assert profile.total_instructions == pytest.approx(
            2 * training_stream.total_instructions
        )

    def test_heat_sums_to_one(self, training_stream):
        profile = collect_profile([training_stream])
        total_heat = sum(profile.heat(k) for k in profile.kernel_instructions)
        assert total_heat == pytest.approx(1.0)

    def test_hottest_first_ordering(self, training_stream):
        profile = collect_profile([training_stream])
        order = profile.hottest_first()
        heats = [profile.heat(k) for k in order]
        assert heats == sorted(heats, reverse=True)

    def test_me_sad_is_hot(self, training_stream):
        profile = collect_profile([training_stream])
        assert profile.heat("me_sad") > 0.05

    def test_branch_bias_recorded(self, training_stream):
        profile = collect_profile([training_stream])
        assert profile.branch_bias  # at least one site
        for taken, total in profile.branch_bias.values():
            assert 0 <= taken <= total

    def test_unseen_site_bias_half(self):
        assert ExecutionProfile().site_bias("nope") == 0.5


class TestAutoFdo:
    def test_layout_shrinks_fetch_footprints(self, training_stream):
        program = build_program()
        profile = collect_profile([training_stream])
        optimized = autofdo_optimize(program, profile)
        for name in profile.hottest_first()[:5]:
            before = len(program.layout.fetch_line_addrs[name])
            after = len(optimized.layout.fetch_line_addrs[name])
            assert after <= before
            assert after == program.kernels[name].hot_lines

    def test_hot_kernels_clustered(self, training_stream):
        program = build_program()
        profile = collect_profile([training_stream])
        layout = fdo_layout(program, profile)
        hottest = profile.hottest_first()[:3]
        addr_ranges = [layout.fetch_line_addrs[k] for k in hottest]
        span = max(a.max() for a in addr_ranges) - min(a.min() for a in addr_ranges)
        hot_bytes = sum(program.kernels[k].hot_lines for k in hottest) * 64
        # The three hottest kernels live within ~the hot section, not
        # scattered across the whole binary.
        assert span < hot_bytes * 20

    def test_branch_hints_enabled(self, training_stream):
        profile = collect_profile([training_stream])
        layout = fdo_layout(build_program(), profile)
        assert layout.branch_hints

    def test_kernels_unchanged(self, training_stream):
        profile = collect_profile([training_stream])
        optimized = autofdo_optimize(build_program(), profile)
        assert set(optimized.kernels) == set(KERNELS)

    def test_no_address_overlap(self, training_stream):
        # Hot and cold line sets jointly cover each kernel exactly once
        # (fetch sets of unprofiled kernels alias their hot+cold extent,
        # so uniqueness is checked over hot+cold).
        profile = collect_profile([training_stream])
        layout = fdo_layout(build_program(), profile)
        all_addrs = np.concatenate(
            [a for a in layout.hot_line_addrs.values() if a.size]
            + [a for a in layout.cold_line_addrs.values() if a.size]
        )
        assert len(np.unique(all_addrs)) == len(all_addrs)


class TestGraphite:
    def test_analysis_finds_tileable_nests(self):
        report = analyze_kernels(KERNELS)
        assert "dct4" in report.transformed
        assert "deblock" in report.transformed
        assert report.loop_opts.tile_transform
        assert report.loop_opts.fuse_deblock

    def test_dependence_bound_nests_rejected(self):
        report = analyze_kernels(KERNELS)
        assert "me_sad" in report.rejected  # sequential search, not tileable

    def test_loop_opts_helper(self):
        opts = graphite_loop_opts(KERNELS)
        assert opts.any_enabled

    def test_describe(self):
        text = analyze_kernels(KERNELS).describe()
        assert "transformed" in text and "rejected" in text


class TestBuilds:
    def test_default_build(self):
        build = build_default()
        assert build.name == "default"
        assert not build.loop_opts.any_enabled
        assert "-O2" in build.flags

    def test_graphite_build_flags(self):
        build = build_graphite()
        for flag in GRAPHITE_FLAGS:
            assert flag in build.flags
        assert build.loop_opts.any_enabled

    def test_autofdo_build(self, training_stream):
        build = build_autofdo(collect_profile([training_stream]))
        assert build.program.layout.branch_hints
        assert "autofdo" in build.program.layout.description
        assert any("auto-profile" in f for f in build.flags)

    def test_describe(self, training_stream):
        assert "autofdo" in build_autofdo(
            collect_profile([training_stream])
        ).describe()
