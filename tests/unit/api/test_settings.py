"""Unit tests for the consolidated ``repro.api.Settings`` record.

Covers the documented precedence order (CLI flag > environment >
default), eager validation, and ``apply``/``reset`` pushing the resolved
values into the subsystems.
"""

from pathlib import Path

import pytest

from repro import resilience
from repro.api import ENV_VARS, Settings
from repro.codec import kernels
from repro.experiments import parallel as engine
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy

ALL_ENV = (
    "REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_KERNELS", "REPRO_SHM",
    "REPRO_FAULT_PLAN",
    "REPRO_RESUME", "REPRO_CHECKPOINT_DIR", "REPRO_RETRY_ATTEMPTS",
    "REPRO_RETRY_BASE_DELAY", "REPRO_RETRY_MAX_DELAY",
    "REPRO_BENCH_MATRIX", "REPRO_BENCH_HISTORY",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Isolate each test from ambient REPRO_* vars and applied state."""
    for var in ALL_ENV:
        monkeypatch.delenv(var, raising=False)
    yield
    Settings.reset()


class TestDefaults:
    def test_builtin_defaults(self):
        s = Settings()
        assert s.jobs == 1
        assert s.cache_dir is None
        assert s.cache_enabled is True
        assert s.kernels == kernels.DEFAULT_BACKEND
        assert s.shm is True
        assert s.fault_plan is None
        assert s.resume is False
        assert s.checkpoint_dir is None

    def test_env_vars_map_to_real_fields(self):
        field_names = set(Settings.__dataclass_fields__)
        for field in ENV_VARS.values():
            assert field in field_names


class TestValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Settings(jobs=0)

    def test_rejects_unknown_kernel_backend(self):
        with pytest.raises(ValueError, match="kernel backend"):
            Settings(kernels="quantum")

    def test_accepts_every_registered_backend(self):
        # Unavailable-but-registered backends (numba without numba) are
        # valid selections; they degrade at dispatch time, not here.
        for name in kernels.KERNEL_BACKENDS:
            assert Settings(kernels=name).kernels == name

    def test_rejects_unknown_env_kernels_eagerly(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "vectorised")  # typo'd
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            Settings.from_env()

    def test_rejects_malformed_fault_plan_eagerly(self):
        with pytest.raises(ValueError):
            Settings(fault_plan="sweep.compute,at=not-a-number")


class TestPrecedence:
    def test_env_beats_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        monkeypatch.setenv("REPRO_RESUME", "1")
        s = Settings.from_env()
        assert s.jobs == 3
        assert s.cache_dir == tmp_path / "c"
        assert s.kernels == "reference"
        assert s.resume is True

    def test_cli_flag_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        s = Settings.resolve(jobs=5, kernels="vectorized",
                             checkpoint_dir=tmp_path / "ck")
        assert s.jobs == 5
        assert s.kernels == "vectorized"
        assert s.checkpoint_dir == tmp_path / "ck"

    def test_absent_flag_falls_through_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert Settings.resolve().jobs == 7

    def test_no_cache_flag_disables_cache(self):
        assert Settings.resolve(no_cache=True).cache_enabled is False
        assert Settings.resolve().cache_enabled is True

    def test_garbage_env_jobs_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert Settings.from_env().jobs == 1

    def test_shm_env_and_flag(self, monkeypatch):
        assert Settings.resolve().shm is True
        monkeypatch.setenv("REPRO_SHM", "0")
        assert Settings.from_env().shm is False
        monkeypatch.setenv("REPRO_SHM", "true")
        assert Settings.from_env().shm is True
        # --no-shm beats the environment.
        assert Settings.resolve(no_shm=True).shm is False

    def test_retry_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "5")
        s = Settings.from_env()
        assert s.retry.max_attempts == 5

    def test_bench_paths_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_MATRIX", str(tmp_path / "m.yaml"))
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "hist"))
        s = Settings.from_env()
        assert s.bench_matrix == tmp_path / "m.yaml"
        assert s.bench_history == tmp_path / "hist"

    def test_cli_bench_paths_beat_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_MATRIX", str(tmp_path / "env.yaml"))
        s = Settings.resolve(bench_matrix=tmp_path / "cli.yaml")
        assert s.bench_matrix == tmp_path / "cli.yaml"

    def test_env_overrides_empty_when_unset(self):
        assert Settings.env_overrides() == {}

    def test_env_overrides_returns_only_set_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        overrides = Settings.env_overrides()
        assert overrides == {"jobs": 3}


class TestApply:
    def test_apply_pushes_into_subsystems(self, tmp_path):
        plan = "sweep.compute,at=99,raise=InjectedFault"
        s = Settings(
            jobs=2,
            cache_dir=tmp_path / "cache",
            kernels="reference",
            retry=RetryPolicy(max_attempts=4),
            fault_plan=plan,
        )
        assert s.apply() is s
        assert engine.default_jobs() == 2
        assert kernels.active_backend() == "reference"
        assert resilience.retry_policy().max_attempts == 4
        assert faults.active_plan() is not None

    def test_apply_without_cache_disables_it(self):
        Settings(cache_enabled=False).apply()
        assert engine.default_cache() is None

    def test_apply_configures_transport(self):
        from repro.experiments import transport

        Settings(shm=False).apply()
        assert transport.enabled() is False
        Settings.reset()
        assert transport.enabled() is True

    def test_reset_restores_env_fallback(self, monkeypatch):
        Settings(jobs=9, kernels="reference").apply()
        Settings.reset()
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert engine.default_jobs() == 4
        assert kernels.active_backend() == kernels.DEFAULT_BACKEND
        assert faults.active_plan() is None


class TestFrozen:
    def test_settings_is_immutable(self):
        s = Settings()
        with pytest.raises(AttributeError):
            s.jobs = 8

    def test_resolve_accepts_str_paths(self):
        s = Settings.resolve(cache_dir="somewhere", checkpoint_dir="else")
        assert isinstance(s.cache_dir, Path)
        assert isinstance(s.checkpoint_dir, Path)
