"""Unit tests for the ``repro.api`` facade and the deprecation shims.

Exercises all five blessed entry points (encode, profile, sweep,
schedule, serve) and asserts every deprecated alias warns exactly once
per symbol while still resolving to the historical implementation.
"""

import warnings

import pytest

import repro
from repro import api
from repro.api import TranscodeRequest, TranscodeResult


class TestEncode:
    def test_encode_by_clip_name(self):
        result = api.encode("cricket", preset="veryfast", crf=30,
                            width=48, height=32, n_frames=3)
        assert isinstance(result, TranscodeResult)
        assert result.clip == "cricket"
        assert result.preset == "veryfast"
        assert result.crf == 30
        assert result.psnr_db > 0
        assert result.bitrate_kbps > 0
        assert result.cycles is None          # no simulation in encode()
        assert result.speedup_pct is None

    def test_encode_by_request_object(self):
        req = TranscodeRequest(clip="cricket", preset="veryfast", crf=35)
        result = api.encode(req, width=48, height=32, n_frames=3)
        assert result.crf == 35

    def test_request_plus_overrides_rejected(self):
        req = TranscodeRequest(clip="cricket")
        with pytest.raises(ValueError, match="not both"):
            api.encode(req, preset="slow", width=48, height=32, n_frames=3)


class TestProfile:
    def test_profile_returns_counters(self):
        profiled = api.profile("cricket", preset="veryfast", crf=30,
                               width=48, height=32, n_frames=3)
        assert profiled.counters.cycles > 0
        assert 0.0 <= profiled.counters.frontend_bound <= 100.0


class TestSweep:
    def test_sweep_static_table(self):
        out = api.sweep("tab4")
        assert "Table IV" in out

    def test_sweep_unknown_experiment(self):
        with pytest.raises(KeyError):
            api.sweep("fig42")

    def test_sweep_with_telemetry(self, tmp_path, capsys):
        from repro.obs import load_run

        out_dir = tmp_path / "tel"
        text = api.sweep("tab4", telemetry_dir=out_dir)
        assert "Table IV" in text
        art = load_run(out_dir / "run.json")
        assert art["experiment"] == "tab4"
        assert art["status"] == "ok"


class TestScheduleAndServe:
    def test_schedule_runs_case_study(self):
        result = api.schedule(width=48, height=32, n_frames=3)
        assert set(result.assignments) == {"random", "smart", "best"}
        assert result.assignments["smart"].mean_speedup_pct > 0

    def test_serve_smoke(self):
        report = api.serve(
            api.table3_requests(2),
            api.ServiceConfig(width=48, height=32, n_frames=3),
            control=False,
        )
        assert report.completed == 2
        assert report.control is None
        assert report.margin_vs_control_pp is None


class TestDeprecatedAliases:
    def test_transcode_alias_warns_once(self, monkeypatch):
        monkeypatch.setattr(repro, "_warned_deprecations", set())
        with pytest.warns(DeprecationWarning, match="repro.api.encode"):
            symbol = repro.transcode
        from repro.ffmpeg import transcode

        assert symbol is transcode
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warn would raise
            assert repro.transcode is transcode

    def test_profile_transcode_alias_warns_once(self, monkeypatch):
        monkeypatch.setattr(repro, "_warned_deprecations", set())
        with pytest.warns(DeprecationWarning, match="repro.api.profile"):
            symbol = repro.profile_transcode
        from repro.profiling import profile_transcode

        assert symbol is profile_transcode
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.profile_transcode is profile_transcode

    def test_runner_run_alias_warns_once(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setattr(runner, "_warned_deprecations", set())
        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            run = runner.run
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run = runner.run
        assert "Table IV" in run("tab4")

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist
