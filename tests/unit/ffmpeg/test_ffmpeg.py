"""Unit tests for repro.ffmpeg (transcode pipeline + CLI)."""

import numpy as np
import pytest

from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions
from repro.ffmpeg.cli import build_parser, main
from repro.ffmpeg.transcode import transcode
from repro.video.io import read_ylm, write_ylm


class TestTranscode:
    def test_raw_frames_input(self, tiny_video):
        result = transcode(tiny_video, preset="veryfast", crf=28)
        assert result.quality_psnr_db > 20
        assert result.size_bitrate_kbps > 0
        assert result.total_seconds >= result.encode.encode_seconds
        assert result.bitstream

    def test_bitstream_input_retranscode(self, tiny_video):
        first = encode(tiny_video, EncoderOptions(crf=18, refs=1, bframes=0))
        result = transcode(first.stream.bitstream, preset="ultrafast", crf=35)
        assert result.decode_seconds > 0
        assert result.encode.stream.n_frames == len(tiny_video)
        # Re-encoding at much higher crf shrinks the stream.
        assert result.encode.total_bits < first.total_bits

    def test_options_object_wins(self, tiny_video):
        opts = EncoderOptions(crf=40, refs=1, bframes=0)
        result = transcode(tiny_video, options=opts)
        assert result.encode.options.crf == 40

    def test_options_and_preset_conflict(self, tiny_video):
        with pytest.raises(ValueError, match="not both"):
            transcode(tiny_video, preset="fast", options=EncoderOptions())

    def test_preset_refs_default(self, tiny_video):
        result = transcode(tiny_video, preset="slow")
        assert result.encode.options.refs == 5  # Table II slow preset

    def test_triangle_direction_crf(self, tiny_video):
        lo = transcode(tiny_video, preset="veryfast", crf=10)
        hi = transcode(tiny_video, preset="veryfast", crf=45)
        assert lo.quality_psnr_db > hi.quality_psnr_db
        assert lo.size_bitrate_kbps > hi.size_bitrate_kbps


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["-i", "cricket"])
        assert args.preset == "medium"
        assert args.crf == 23

    def test_vbench_input(self, capsys):
        rc = main(["-i", "desktop", "--frames", "3", "-preset", "ultrafast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transcoding desktop" in out
        assert "PSNR" in out
        assert "frame types: I" in out

    def test_ylm_file_roundtrip(self, tmp_path, tiny_video, capsys):
        src = tmp_path / "in.ylm"
        dst = tmp_path / "out.ylm"
        write_ylm(src, tiny_video)
        rc = main(["-i", str(src), "-o", str(dst), "-crf", "30", "--frames", "3"])
        assert rc == 0
        decoded = read_ylm(dst)
        assert decoded.resolution == tiny_video.resolution
        assert len(decoded) == 3

    def test_profile_flag_prints_topdown(self, capsys):
        rc = main(["-i", "desktop", "--frames", "3", "--profile",
                   "-preset", "ultrafast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Top-down" in out
        assert "Back-End Bound" in out

    def test_unknown_input_errors(self, capsys):
        rc = main(["-i", "definitely-not-a-video"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestFullTranscodeTracing:
    def test_decode_stage_traced(self, tiny_video):
        """Profiling a bitstream-input transcode covers decode + encode."""
        from repro.codec.encoder import encode as _encode
        from repro.trace.kernels import build_program
        from repro.trace.recorder import RecordingTracer

        first = _encode(tiny_video, EncoderOptions(crf=20, refs=1, bframes=0))
        program = build_program()

        # Encode-only trace (raw frames in).
        t_enc = RecordingTracer(program)
        transcode(tiny_video, options=EncoderOptions(crf=30, refs=1, bframes=0),
                  tracer=t_enc)
        # Full transcode trace (bitstream in: decode + encode).
        t_full = RecordingTracer(program)
        transcode(first.stream.bitstream,
                  options=EncoderOptions(crf=30, refs=1, bframes=0),
                  tracer=t_full)
        assert (
            t_full.stream.total_instructions > t_enc.stream.total_instructions
        )

    def test_decode_much_cheaper_than_encode(self, tiny_video):
        """'The decoding stage is deterministic and hence relatively
        straight-forward' (paper §II-A): decode < 40% of encode work."""
        from repro.codec.decoder import Decoder
        from repro.codec.encoder import Encoder
        from repro.trace.kernels import build_program
        from repro.trace.recorder import RecordingTracer

        program = build_program()
        enc_tracer = RecordingTracer(program)
        result = Encoder(
            EncoderOptions(crf=23, refs=2, bframes=1), tracer=enc_tracer
        ).encode(tiny_video)
        dec_tracer = RecordingTracer(program)
        Decoder(tracer=dec_tracer).decode(result.stream.bitstream)
        ratio = (
            dec_tracer.stream.total_instructions
            / enc_tracer.stream.total_instructions
        )
        assert 0.0 < ratio < 0.4
