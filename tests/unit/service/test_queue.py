"""Unit tests for the bounded admission queue (backpressure, dispatch
order, and checkpoint snapshot/restore)."""

import pytest

from repro.api.types import JOB_DONE, JOB_QUEUED
from repro.service.jobs import Job
from repro.service.queue import (
    QUEUE_SNAPSHOT_VERSION,
    BoundedJobQueue,
    QueueFullError,
)
from repro.api.types import TranscodeRequest


def make_job(job_id: int, *, priority: int = 0, seq: int | None = None) -> Job:
    return Job(
        job_id=job_id,
        request=TranscodeRequest(clip="cricket", priority=priority),
        seq=job_id if seq is None else seq,
    )


class TestAdmission:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedJobQueue(0)

    def test_backpressure_at_capacity(self):
        q = BoundedJobQueue(2)
        q.put(make_job(1))
        q.put(make_job(2))
        with pytest.raises(QueueFullError, match="capacity"):
            q.put(make_job(3))

    def test_duplicate_job_id_rejected(self):
        q = BoundedJobQueue(4)
        q.put(make_job(1))
        with pytest.raises(ValueError, match="already admitted"):
            q.put(make_job(1))

    def test_terminal_jobs_release_their_slots(self):
        q = BoundedJobQueue(1)
        job = make_job(1)
        q.put(job)
        job.mark_running("w0")
        with pytest.raises(QueueFullError):
            q.put(make_job(2))   # running jobs still hold a slot
        job.mark_failed("boom")
        q.put(make_job(2))       # terminal job freed the slot
        assert q.depth() == 1

    def test_requeue_requires_prior_admission(self):
        q = BoundedJobQueue(2)
        with pytest.raises(ValueError, match="never admitted"):
            q.requeue(make_job(9))


class TestDispatchOrder:
    def test_priority_major_then_fifo(self):
        q = BoundedJobQueue(8)
        q.put(make_job(1, priority=0))
        q.put(make_job(2, priority=5))
        q.put(make_job(3, priority=5))
        q.put(make_job(4, priority=1))
        ready = q.pop_ready(4)
        assert [j.job_id for j in ready] == [2, 3, 4, 1]

    def test_pop_ready_respects_n(self):
        q = BoundedJobQueue(8)
        for i in range(1, 5):
            q.put(make_job(i))
        assert [j.job_id for j in q.pop_ready(2)] == [1, 2]
        assert q.pop_ready(0) == []

    def test_requeued_job_keeps_its_arrival_order(self):
        q = BoundedJobQueue(8)
        first, second = make_job(1), make_job(2)
        q.put(first)
        q.put(second)
        first.mark_running("w0")
        first.mark_requeued("crash")
        q.requeue(first)
        assert [j.job_id for j in q.pop_ready(2)] == [1, 2]


class TestSnapshotRestore:
    def test_round_trip_preserves_every_job(self):
        q = BoundedJobQueue(8)
        done = make_job(1)
        queued = make_job(2, priority=3)
        q.put(done)
        q.put(queued)
        done.mark_running("w0")
        done.state = JOB_DONE

        restored = BoundedJobQueue(8)
        assert restored.restore(q.snapshot()) == 2
        assert restored.get(1).state == JOB_DONE
        assert restored.get(2).state == JOB_QUEUED
        assert restored.get(2).request.priority == 3

    def test_running_jobs_requeue_on_restore(self):
        q = BoundedJobQueue(4)
        job = make_job(1)
        q.put(job)
        job.mark_running("w0")

        restored = BoundedJobQueue(4)
        restored.restore(q.snapshot())
        revived = restored.get(1)
        assert revived.state == JOB_QUEUED
        assert revived.worker is None
        assert "restart" in (revived.error or "")

    def test_unsupported_version_rejected(self):
        snap = BoundedJobQueue(4).snapshot()
        snap["version"] = QUEUE_SNAPSHOT_VERSION + 1
        with pytest.raises(ValueError, match="snapshot version"):
            BoundedJobQueue(4).restore(snap)
