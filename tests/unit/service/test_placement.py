"""Unit tests for the online placement policies (smart vs. random).

The smart policy's affinity model is faked via monkeypatching so these
tests pin down pure placement mechanics: assignment maximization,
deterministic tie-breaking, and the seeded random control.
"""

import pytest

import repro.service.placement as placement_mod
from repro.api.types import TranscodeRequest
from repro.service.jobs import Job
from repro.service.placement import (
    PLACEMENT_POLICIES,
    RandomPlacement,
    SmartPlacement,
    make_policy,
)
from repro.service.workers import WorkerFleet


@pytest.fixture()
def fleet() -> WorkerFleet:
    return WorkerFleet(("fe_op", "be_op1", "be_op2", "bs_op"))


def make_jobs(n: int) -> list[Job]:
    return [
        Job(job_id=i, request=TranscodeRequest(clip="cricket"), seq=i)
        for i in range(1, n + 1)
    ]


class TestSmartPlacement:
    def test_places_each_job_on_its_best_worker(self, fleet, monkeypatch):
        # Job 1 strongly prefers bs_op, job 2 fe_op; the fake affinity
        # model keys off the per-job counter stand-ins.
        prefs = {
            1: {"bs_op": 10.0},
            2: {"fe_op": 10.0},
        }
        monkeypatch.setattr(
            placement_mod, "affinity_scores", lambda token: prefs[token]
        )
        jobs = make_jobs(2)
        counters = {j.job_id: j.job_id for j in jobs}
        out = SmartPlacement().place(jobs, fleet.available(), counters)
        assert out[1].config_name == "bs_op"
        assert out[2].config_name == "fe_op"

    def test_equal_scores_break_toward_lower_indices(self, fleet,
                                                     monkeypatch):
        monkeypatch.setattr(
            placement_mod, "affinity_scores", lambda token: {}
        )
        jobs = make_jobs(4)
        counters = {j.job_id: None for j in jobs}
        workers = fleet.available()
        out = SmartPlacement().place(jobs, workers, counters)
        # All-zero scores: job i must land on worker i, run after run.
        for i, job in enumerate(jobs):
            assert out[job.job_id] is workers[i]
        again = SmartPlacement().place(jobs, workers, counters)
        assert {k: v.name for k, v in again.items()} == {
            k: v.name for k, v in out.items()
        }

    def test_batch_larger_than_fleet_truncates(self, fleet, monkeypatch):
        monkeypatch.setattr(
            placement_mod, "affinity_scores", lambda token: {}
        )
        jobs = make_jobs(6)
        counters = {j.job_id: None for j in jobs}
        out = SmartPlacement().place(jobs, fleet.available(), counters)
        assert set(out) == {1, 2, 3, 4}  # first len(workers) jobs only

    def test_empty_inputs(self, fleet):
        assert SmartPlacement().place([], fleet.available(), {}) == {}
        assert SmartPlacement().place(make_jobs(1), [], {1: None}) == {}


class TestRandomPlacement:
    def test_same_seed_same_placements(self, fleet):
        jobs = make_jobs(4)
        counters = {j.job_id: None for j in jobs}
        a = RandomPlacement(seed=7).place(jobs, fleet.available(), counters)
        b = RandomPlacement(seed=7).place(jobs, fleet.available(), counters)
        assert {k: v.name for k, v in a.items()} == {
            k: v.name for k, v in b.items()
        }

    def test_workers_are_distinct_per_round(self, fleet):
        jobs = make_jobs(4)
        counters = {j.job_id: None for j in jobs}
        out = RandomPlacement(seed=0).place(jobs, fleet.available(), counters)
        names = [w.name for w in out.values()]
        assert len(set(names)) == len(names) == 4

    def test_round_counter_varies_choices(self, fleet):
        # The same job ids across successive rounds need not repeat the
        # same worker; assert only that both rounds are valid one-to-one
        # placements (the hash includes the round index).
        policy = RandomPlacement(seed=0)
        jobs = make_jobs(4)
        counters = {j.job_id: None for j in jobs}
        for _ in range(2):
            out = policy.place(jobs, fleet.available(), counters)
            assert len({w.name for w in out.values()}) == 4


class TestRegistry:
    def test_registry_names(self):
        assert PLACEMENT_POLICIES == ("smart", "random")
        assert make_policy("smart").name == "smart"
        assert make_policy("random", seed=3).seed == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="placement policy"):
            make_policy("oracle")
