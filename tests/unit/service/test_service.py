"""Unit tests for the long-lived transcoding job service.

Runs the real encode→trace→simulate path on tiny proxy clips (48x32, a
few frames), so these tests cover the full queue → profile → placement →
fleet data flow, including crash isolation and checkpoint/resume.
"""

import pytest

from repro import resilience
from repro.api.types import TranscodeRequest
from repro.service import (
    DEFAULT_FLEET,
    QueueFullError,
    ServiceConfig,
    TranscodeService,
    parse_fleet_spec,
    run_service,
    table3_requests,
)

TINY = dict(width=48, height=32, n_frames=3)


@pytest.fixture(autouse=True)
def clean_resilience():
    resilience.reset()
    yield
    resilience.reset()


class TestConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="placement policy"):
            ServiceConfig(policy="oracle")

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ServiceConfig(max_attempts=0)

    def test_fleet_spec_parsing(self):
        entries = parse_fleet_spec("fe_op,be_op1:2")
        assert [(e.name, e.count, e.rate_per_hour) for e in entries] == [
            ("fe_op", 1, None), ("be_op1", 2, None),
        ]
        with pytest.raises(ValueError, match="unknown"):
            parse_fleet_spec("warp_drive")
        with pytest.raises(ValueError, match="empty"):
            parse_fleet_spec(" , ")

    def test_fleet_spec_drives_worker_expansion(self):
        service = TranscodeService(ServiceConfig(
            fleet=parse_fleet_spec("fe_op:2,be_op1"), **TINY
        ))
        assert [w.config_name for w in service.fleet.workers] == [
            "fe_op", "fe_op", "be_op1",
        ]

    def test_table3_requests_cycle_the_mix(self):
        reqs = table3_requests(6)
        assert len(reqs) == 6
        assert reqs[0].content_key() == reqs[4].content_key()
        with pytest.raises(ValueError):
            table3_requests(0)


class TestLifecycle:
    def test_submit_and_drain(self):
        service = TranscodeService(ServiceConfig(**TINY))
        statuses = service.submit_many(table3_requests(4))
        assert all(s.state == "queued" for s in statuses)

        report = service.run_until_idle()
        assert report.completed == 4
        assert report.failed == 0
        assert report.policy == "smart"
        assert report.mean_latency_cycles > 0
        for status in service.statuses():
            assert status.state == "done"
            assert status.result.cycles is not None
            assert status.result.config in DEFAULT_FLEET
        assert set(report.placements) == {1, 2, 3, 4}

    def test_backpressure_surfaces_to_submitter(self):
        service = TranscodeService(ServiceConfig(queue_capacity=1, **TINY))
        service.submit(TranscodeRequest(clip="cricket"))
        with pytest.raises(QueueFullError):
            service.submit(TranscodeRequest(clip="holi"))

    def test_identical_requests_profile_once(self):
        service = TranscodeService(ServiceConfig(**TINY))
        service.submit_many(table3_requests(8))  # 4 unique, each twice
        report = service.run_until_idle()
        assert report.completed == 8
        assert len(service._profiles) == 4

    def test_status_lookup(self):
        service = TranscodeService(ServiceConfig(**TINY))
        job = service.submit(TranscodeRequest(clip="cricket"))
        assert service.status(job.job_id).state == "queued"
        with pytest.raises(KeyError):
            service.status(99)


class TestCrashIsolation:
    def test_crashed_worker_is_isolated_and_job_replaced(self):
        resilience.configure(
            fault_plan="service.worker,at=1,raise=RuntimeError"
        )
        service = TranscodeService(ServiceConfig(**TINY))
        service.submit(TranscodeRequest(clip="cricket"))
        report = service.run_until_idle()
        assert report.completed == 1
        assert report.worker_crashes == 1
        assert len(service.fleet.available()) == len(DEFAULT_FLEET) - 1
        status = service.statuses()[0]
        assert status.state == "done"
        assert status.attempts == 2  # first placement crashed

    def test_attempt_budget_exhaustion_fails_the_job(self):
        resilience.configure(
            fault_plan="service.worker,at=1|2,raise=RuntimeError"
        )
        service = TranscodeService(ServiceConfig(max_attempts=2, **TINY))
        service.submit(TranscodeRequest(clip="cricket"))
        report = service.run_until_idle()
        assert report.completed == 0
        assert report.failed == 1
        assert report.worker_crashes == 2
        status = service.statuses()[0]
        assert status.state == "failed"
        assert "isolated" in status.error

    def test_whole_fleet_isolated_fails_pending_jobs(self):
        resilience.configure(
            fault_plan="service.worker,raise=RuntimeError"
        )
        service = TranscodeService(
            ServiceConfig(fleet=("fe_op",), max_attempts=5, **TINY)
        )
        service.submit(TranscodeRequest(clip="cricket"))
        service.submit(TranscodeRequest(clip="holi"))
        report = service.run_until_idle()
        assert report.completed == 0
        assert report.failed == 2
        assert service.fleet.available() == []

    def test_retryable_faults_retry_in_place(self):
        # InjectedFault is retryable: the worker survives, no isolation.
        resilience.configure(
            fault_plan="service.worker,at=1,raise=InjectedFault"
        )
        service = TranscodeService(ServiceConfig(**TINY))
        service.submit(TranscodeRequest(clip="cricket"))
        report = service.run_until_idle()
        assert report.completed == 1
        assert report.worker_crashes == 0
        assert len(service.fleet.available()) == len(DEFAULT_FLEET)


class TestVirtualClockTimings:
    """Regression: queue wait is stamped at *placement*, not round
    start. The old round-based loop folded earlier batch members'
    encode time into later members' queue wait; under continuous
    admission ``queue_wait == placement_time - admission_time`` by
    construction, checked here on a deterministic 2-job / 1-worker
    scenario over the virtual clock."""

    def _drained(self):
        from repro.loadgen.clock import VirtualClock

        service = TranscodeService(
            ServiceConfig(fleet=("fe_op",), **TINY),
            clock=VirtualClock(),
        )
        service.submit(TranscodeRequest(clip="cricket"))
        service.submit(TranscodeRequest(clip="cricket"))
        report = service.run_until_idle()
        assert report.completed == 2
        first, second = service.statuses()
        return first.timings, second.timings

    def test_queue_wait_is_placement_minus_admission(self):
        first, second = self._drained()
        # Job 1 is placed the instant the drain starts: zero wait.
        assert first["queue_wait_s"] == 0.0
        # Job 2 waits exactly as long as job 1 occupies the only
        # worker — its placement instant *is* job 1's completion.
        assert second["queue_wait_s"] == pytest.approx(
            first["encode_s"], abs=1e-12
        )
        # Identical requests charge identical virtual encode time, so
        # any extra wait would be the old round-barrier artifact.
        assert second["encode_s"] == first["encode_s"]

    def test_e2e_decomposes_into_stages(self):
        for timings in self._drained():
            assert timings["placement_s"] == 0.0  # virtual: no decision cost
            assert timings["e2e_s"] == pytest.approx(
                timings["queue_wait_s"] + timings["encode_s"], abs=1e-12
            )


class TestCheckpointResume:
    def test_resume_restores_pending_jobs(self, tmp_path):
        ckpt = tmp_path / "service.json"
        first = TranscodeService(
            ServiceConfig(checkpoint_path=ckpt, **TINY)
        )
        first.submit_many(table3_requests(3))
        assert ckpt.exists()

        revived = TranscodeService(
            ServiceConfig(checkpoint_path=ckpt, **TINY), resume=True
        )
        assert revived.queue.pending() == 3
        report = revived.run_until_idle()
        assert report.completed == 3

    def test_resume_skips_completed_jobs(self, tmp_path):
        ckpt = tmp_path / "service.json"
        cfg = ServiceConfig(checkpoint_path=ckpt, **TINY)
        first = TranscodeService(cfg)
        first.submit_many(table3_requests(2))
        first.run_until_idle()

        revived = TranscodeService(cfg, resume=True)
        assert revived.queue.pending() == 0
        report = revived.run_until_idle()
        assert report.completed == 2       # carried over, not re-run
        # New submissions continue the id sequence past restored jobs.
        status = revived.submit(TranscodeRequest(clip="cricket"))
        assert status.job_id == 3

    def test_resume_without_checkpoint_is_a_no_op(self, tmp_path):
        cfg = ServiceConfig(
            checkpoint_path=tmp_path / "missing.json", **TINY
        )
        service = TranscodeService(cfg, resume=True)
        assert service.queue.pending() == 0


class TestControlRun:
    def test_control_attached_and_margin_defined(self):
        report = run_service(
            table3_requests(4), ServiceConfig(**TINY), control=True
        )
        assert report.control is not None
        assert report.control.policy == "random"
        assert report.control.completed == 4
        assert report.margin_vs_control_pp == pytest.approx(
            report.mean_speedup_pct - report.control.mean_speedup_pct
        )

    def test_random_primary_skips_control(self):
        report = run_service(
            table3_requests(2),
            ServiceConfig(policy="random", **TINY),
            control=True,
        )
        assert report.control is None

    def test_payload_round_trips_to_json(self):
        import json

        report = run_service(
            table3_requests(2), ServiceConfig(**TINY), control=True
        )
        doc = json.loads(json.dumps(report.to_payload()))
        assert doc["completed"] == 2
        assert doc["control"]["policy"] == "random"
        assert len(doc["jobs"]) == 2

    def test_render_mentions_margin(self):
        report = run_service(
            table3_requests(2), ServiceConfig(**TINY), control=True
        )
        text = report.render()
        assert "policy=smart" in text
        assert "paper: +3.72" in text
