"""Unit tests for the fleet-spec grammar and heterogeneous worker fleets.

Pins the ``name[:count][:$rate]`` grammar — every documented error path
raises ``ValueError`` with a pointed message — and the expansion rules:
instance entries expand to ``count x cores`` workers at the per-core
rate and the family's scaled clock, config entries keep the reference
clock and the flat default rate, and billing accumulates busy time at
each worker's own price.
"""

from __future__ import annotations

import pytest

from repro.service.workers import (
    DEFAULT_RATE_PER_HOUR,
    FleetEntry,
    WorkerFleet,
    parse_fleet_spec,
)
from repro.uarch.instances import instance_by_name


class TestParseFleetSpec:
    def test_bare_names_default_to_count_one(self):
        entries = parse_fleet_spec("fe_op,be_op1")
        assert [(e.name, e.count, e.rate_per_hour) for e in entries] == [
            ("fe_op", 1, None), ("be_op1", 1, None),
        ]

    def test_count_rate_and_order_insensitivity(self):
        a, = parse_fleet_spec("c5.xlarge:2:$0.15")
        b, = parse_fleet_spec("c5.xlarge:$0.15:2")
        assert a == b == FleetEntry("c5.xlarge", 2, 0.15)

    def test_whitespace_and_empty_clauses_are_tolerated(self):
        entries = parse_fleet_spec(" fe_op : 2 , , bs_op ")
        assert [(e.name, e.count) for e in entries] == [
            ("fe_op", 2), ("bs_op", 1),
        ]

    def test_mixed_config_and_instance_entries(self):
        entries = parse_fleet_spec("fe_op,c6g.xlarge:2")
        assert entries[0].instance is None
        assert entries[1].instance is instance_by_name("c6g.xlarge")

    def test_unknown_name_lists_both_namespaces(self):
        with pytest.raises(ValueError, match="unknown fleet entry"):
            parse_fleet_spec("not_a_config")
        with pytest.raises(ValueError, match="instance type"):
            parse_fleet_spec("c9.xlarge")

    def test_malformed_count_points_at_rate_prefix(self):
        with pytest.raises(ValueError, match=r"rates need a \$ prefix"):
            parse_fleet_spec("fe_op:0.17")
        with pytest.raises(ValueError, match="bad count"):
            parse_fleet_spec("fe_op:two")

    def test_duplicate_count_and_rate_rejected(self):
        with pytest.raises(ValueError, match="duplicate count"):
            parse_fleet_spec("fe_op:2:3")
        with pytest.raises(ValueError, match=r"duplicate \$rate"):
            parse_fleet_spec("fe_op:$0.1:$0.2")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match=r"bad \$rate"):
            parse_fleet_spec("fe_op:$cheap")
        with pytest.raises(ValueError, match=r"\$rate must be > 0"):
            parse_fleet_spec("fe_op:$0")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate fleet entry"):
            parse_fleet_spec("fe_op,fe_op")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty fleet spec"):
            parse_fleet_spec("")
        with pytest.raises(ValueError, match="empty fleet spec"):
            parse_fleet_spec(" , ")

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError, match="count must be >= 1"):
            parse_fleet_spec("fe_op:0")


class TestFleetExpansion:
    def test_instance_entry_expands_to_physical_cores(self):
        fleet = WorkerFleet(parse_fleet_spec("c6g.xlarge"))
        instance = instance_by_name("c6g.xlarge")
        assert len(fleet.workers) == instance.cores
        names = [w.name for w in fleet.workers]
        assert len(set(names)) == len(names)
        for worker in fleet.workers:
            assert worker.instance is instance
            assert worker.config_name == instance.config_name
            assert worker.rate_per_hour == pytest.approx(
                instance.rate_per_core_hour
            )

    def test_instance_clock_scales_from_reference(self):
        fleet = WorkerFleet(
            parse_fleet_spec("c5.xlarge,fe_op"), clock_hz=1.0e6
        )
        c5 = instance_by_name("c5.xlarge")
        instance_workers = [w for w in fleet.workers if w.instance]
        config_workers = [w for w in fleet.workers if not w.instance]
        for worker in instance_workers:
            assert worker.clock_hz == pytest.approx(1.0e6 * c5.clock_scale())
        # Table IV config workers keep the service reference clock.
        assert all(w.clock_hz == 1.0e6 for w in config_workers)

    def test_rate_override_splits_across_instance_cores(self):
        fleet = WorkerFleet(parse_fleet_spec("a1.xlarge:$0.08"))
        assert all(
            w.rate_per_hour == pytest.approx(0.08 / 4)
            for w in fleet.workers
        )

    def test_config_workers_bill_flat_default_rate(self):
        fleet = WorkerFleet(parse_fleet_spec("fe_op:2"))
        assert all(
            w.rate_per_hour == DEFAULT_RATE_PER_HOUR for w in fleet.workers
        )
        assert fleet.hourly_rate == pytest.approx(2 * DEFAULT_RATE_PER_HOUR)

    def test_hourly_rate_sums_catalogue_prices(self):
        fleet = WorkerFleet(parse_fleet_spec("c5.xlarge,c6g.xlarge:2"))
        expected = (instance_by_name("c5.xlarge").rate_per_hour
                    + 2 * instance_by_name("c6g.xlarge").rate_per_hour)
        assert fleet.hourly_rate == pytest.approx(expected)

    def test_charge_accumulates_busy_time_dollars(self):
        fleet = WorkerFleet(parse_fleet_spec("fe_op"))
        worker = fleet.workers[0]
        cost = worker.charge(int(3600 * 1e9))  # one busy hour
        assert cost == pytest.approx(DEFAULT_RATE_PER_HOUR)
        assert worker.stats.busy_ns == int(3600 * 1e9)
        assert fleet.cost_usd() == pytest.approx(DEFAULT_RATE_PER_HOUR)
