"""Unit tests for `repro slo check` and `repro report --timeline`."""

import json

import pytest

from repro.cli import main
from repro.obs import session as obs
from repro.obs.export import export_session


def _spec_doc(max_rate=0.03):
    return {
        "name": "gate",
        "objectives": [
            {
                "name": "requeue-rate",
                "kind": "error_rate",
                "bad": "service.requeues",
                "total": "service.jobs_submitted",
                "max_rate": max_rate,
            }
        ],
    }


@pytest.fixture()
def run_dir(tmp_path):
    """A synthetic exported session: one job's span tree + counters."""
    with obs.telemetry_session() as tel:
        tel.metrics.counter("service.jobs_submitted").inc(16)
        tel.metrics.counter("service.requeues").inc(1)
        with tel.spans.span("service.submit", job=3):
            pass
        with tel.spans.span("service.drain"):
            with tel.spans.span("service.job", job=3, worker="w0"):
                with tel.spans.span("worker.encode", job=3):
                    pass
            with tel.spans.span("service.job", job=4):
                pass
        export_session(
            tel, tmp_path, experiment="serve", scale="smart",
            wall_seconds=1.0,
        )
    return tmp_path


class TestSloCheck:
    def _write_spec(self, tmp_path, **kwargs):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps(_spec_doc(**kwargs)))
        return spec

    def test_exit_zero_when_met(self, run_dir, tmp_path, capsys):
        spec = self._write_spec(tmp_path, max_rate=0.5)
        code = main(["slo", "check", str(run_dir / "run.json"),
                     "--spec", str(spec)])
        assert code == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_exit_two_on_breach(self, run_dir, tmp_path, capsys):
        spec = self._write_spec(tmp_path, max_rate=0.03)
        code = main(["slo", "check", str(run_dir / "run.json"),
                     "--spec", str(spec)])
        assert code == 2
        assert "requeue-rate" in capsys.readouterr().out

    def test_exit_one_on_bad_spec(self, run_dir, tmp_path, capsys):
        spec = tmp_path / "slo.json"
        spec.write_text("{broken")
        code = main(["slo", "check", str(run_dir / "run.json"),
                     "--spec", str(spec)])
        assert code == 1
        assert "repro slo:" in capsys.readouterr().err

    def test_spec_required(self, run_dir, monkeypatch):
        monkeypatch.delenv("REPRO_SLO_SPEC", raising=False)
        with pytest.raises(SystemExit):
            main(["slo", "check", str(run_dir / "run.json")])

    def test_spec_from_environment(self, run_dir, tmp_path, monkeypatch):
        spec = self._write_spec(tmp_path, max_rate=0.5)
        monkeypatch.setenv("REPRO_SLO_SPEC", str(spec))
        assert main(["slo", "check", str(run_dir / "run.json")]) == 0


class TestReportTimeline:
    def test_renders_job_tree(self, run_dir, capsys):
        code = main(["report", str(run_dir / "run.json"),
                     "--timeline", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline for job 3" in out
        # The job's own spans plus the drain scaffolding they hang under.
        for name in ("service.submit", "service.drain",
                     "service.job", "worker.encode"):
            assert name in out
        assert "w0" in out                # attrs are shown

    def test_unknown_job_reports_no_spans(self, run_dir, capsys):
        assert main(["report", str(run_dir / "run.json"),
                     "--timeline", "99"]) == 0
        assert "no spans found" in capsys.readouterr().out

    def test_missing_events_stream_fails(self, run_dir, capsys):
        (run_dir / "events.jsonl").unlink()
        code = main(["report", str(run_dir / "run.json"),
                     "--timeline", "3"])
        assert code == 1
        assert "no event stream" in capsys.readouterr().err


class TestReportSloSections:
    def _artifact_with_slo(self, tmp_path, ok):
        with obs.telemetry_session() as tel:
            tel.metrics.counter("service.jobs_submitted").inc(10)
            slo = {
                "spec": "gate",
                "ok": ok,
                "breached": [] if ok else ["requeue-rate"],
                "objectives": [
                    {"name": "requeue-rate", "kind": "error_rate",
                     "ok": ok, "actual": 0.0 if ok else 0.2,
                     "target": 0.03, "burn_rate": 0.0 if ok else 6.67,
                     "budget_remaining": 1.0 if ok else -5.67,
                     "detail": ""},
                ],
            }
            export_session(
                tel, tmp_path, experiment="serve", scale="smart",
                wall_seconds=1.0, slo=slo,
            )
        return tmp_path / "run.json"

    def test_render_includes_slo_verdict(self, tmp_path, capsys):
        path = self._artifact_with_slo(tmp_path / "a", ok=False)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "slo:" in out
        assert "BREACHED: requeue-rate" in out

    def test_diff_compares_slo_objectives(self, tmp_path, capsys):
        a = self._artifact_with_slo(tmp_path / "a", ok=True)
        b = self._artifact_with_slo(tmp_path / "b", ok=False)
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "slo objectives:" in out
        assert "requeue-rate" in out
        assert "pass" in out and "FAIL" in out
