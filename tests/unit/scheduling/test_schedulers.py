"""Unit tests for the Figure 9 schedulers: Assignment arithmetic and
SmartScheduler tie-breaking determinism.

The affinity model is faked where needed so these tests isolate the
assignment mechanics from the characterization pipeline.
"""

import pytest

import repro.scheduling.schedulers as schedulers_mod
from repro.scheduling.casestudy import CaseStudyResult
from repro.scheduling.schedulers import (
    Assignment,
    BestScheduler,
    RandomScheduler,
    SmartScheduler,
)
from repro.scheduling.task import TranscodeTask


def make_tasks(n: int) -> list[TranscodeTask]:
    return [
        TranscodeTask(task_id=i, video="cricket", preset="medium", crf=23,
                      refs=2)
        for i in range(1, n + 1)
    ]


CONFIGS = ["fe_op", "be_op1", "be_op2", "bs_op"]


def flat_cycles(tasks, value=100.0):
    return {t.task_id: {c: value for c in CONFIGS} for t in tasks}


class TestAssignmentArithmetic:
    def test_mean_speedup_pct(self):
        a = Assignment(
            scheduler="x",
            placement={1: "fe_op", 2: "be_op1"},
            task_cycles={1: 100.0, 2: 50.0},
            baseline_cycles={1: 200.0, 2: 60.0},
        )
        # (200/100 - 1) = +100%, (60/50 - 1) = +20% -> mean +60%.
        assert a.mean_speedup_pct == pytest.approx(60.0)

    def test_total_cycles(self):
        a = Assignment("x", {}, {1: 10.0, 2: 30.0}, {1: 10.0, 2: 30.0})
        assert a.total_cycles == pytest.approx(40.0)

    def test_no_speedup_is_zero(self):
        a = Assignment("x", {1: "fe_op"}, {1: 120.0}, {1: 120.0})
        assert a.mean_speedup_pct == pytest.approx(0.0)


class TestSmartTieBreaking:
    def test_equal_scores_prefer_lower_task_then_config_index(self,
                                                              monkeypatch):
        monkeypatch.setattr(
            schedulers_mod, "affinity_scores", lambda counters: {}
        )
        tasks = make_tasks(4)
        cycles = flat_cycles(tasks)
        baseline = {t.task_id: 100.0 for t in tasks}
        counters = {t.task_id: None for t in tasks}
        out = SmartScheduler().schedule(
            tasks, cycles, CONFIGS, baseline, counters
        )
        # All-zero affinity: the tie-break pins task i to config i.
        assert out.placement == {
            i + 1: CONFIGS[i] for i in range(len(tasks))
        }

    def test_identical_inputs_identical_placements(self, monkeypatch):
        monkeypatch.setattr(
            schedulers_mod, "affinity_scores",
            lambda counters: {"fe_op": 1.0, "bs_op": 1.0},
        )
        tasks = make_tasks(4)
        cycles = flat_cycles(tasks)
        baseline = {t.task_id: 100.0 for t in tasks}
        counters = {t.task_id: None for t in tasks}
        first = SmartScheduler().schedule(
            tasks, cycles, CONFIGS, baseline, counters
        )
        for _ in range(3):
            again = SmartScheduler().schedule(
                tasks, cycles, CONFIGS, baseline, counters
            )
            assert again.placement == first.placement

    def test_tie_break_never_overrides_a_real_preference(self, monkeypatch):
        # Task 4 alone prefers fe_op (the config the tie-break would
        # otherwise hand to task 1): the epsilon must not outvote it.
        monkeypatch.setattr(
            schedulers_mod, "affinity_scores",
            lambda counters: {"fe_op": 5.0} if counters == 4 else {},
        )
        tasks = make_tasks(4)
        out = SmartScheduler().schedule(
            tasks, flat_cycles(tasks), CONFIGS,
            {t.task_id: 100.0 for t in tasks},
            {t.task_id: t.task_id for t in tasks},
        )
        assert out.placement[4] == "fe_op"

    def test_requires_counters_and_square_problem(self):
        tasks = make_tasks(4)
        cycles = flat_cycles(tasks)
        baseline = {t.task_id: 100.0 for t in tasks}
        with pytest.raises(ValueError, match="counters"):
            SmartScheduler().schedule(tasks, cycles, CONFIGS, baseline)
        with pytest.raises(ValueError, match="one-to-one"):
            SmartScheduler().schedule(
                tasks[:2], flat_cycles(tasks[:2]), CONFIGS,
                baseline, {1: None, 2: None},
            )


class TestOtherSchedulers:
    def test_random_uses_the_per_task_average(self):
        tasks = make_tasks(1)
        cycles = {1: {"fe_op": 100.0, "be_op1": 300.0,
                      "be_op2": 100.0, "bs_op": 100.0}}
        out = RandomScheduler().schedule(
            tasks, cycles, CONFIGS, {1: 150.0}
        )
        assert out.task_cycles[1] == pytest.approx(150.0)
        assert out.placement[1] == "<average>"

    def test_best_picks_the_fastest_config(self):
        tasks = make_tasks(1)
        cycles = {1: {"fe_op": 90.0, "be_op1": 300.0,
                      "be_op2": 100.0, "bs_op": 100.0}}
        out = BestScheduler().schedule(tasks, cycles, CONFIGS, {1: 100.0})
        assert out.placement[1] == "fe_op"

    def test_empty_task_list_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            RandomScheduler().schedule([], {}, CONFIGS, {})


class TestCaseStudyGuards:
    def test_match_fraction_of_empty_study_is_zero(self):
        empty = Assignment("smart", {}, {}, {})
        result = CaseStudyResult(
            tasks=[], config_names=CONFIGS, cycles={}, baseline_cycles={},
            counters={},
            assignments={
                "smart": empty,
                "best": Assignment("best", {}, {}, {}),
            },
        )
        assert result.smart_matches_best_fraction == 0.0
