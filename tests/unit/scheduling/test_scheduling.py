"""Unit tests for repro.scheduling (tasks, affinity, schedulers)."""

import pytest

from repro.profiling.counters import CounterSet
from repro.scheduling.affinity import affinity_scores
from repro.scheduling.schedulers import (
    Assignment,
    BestScheduler,
    RandomScheduler,
    SmartScheduler,
)
from repro.scheduling.task import TABLE_III_TASKS, TranscodeTask


def _counters(**overrides):
    base = dict(
        time_seconds=0.01, psnr_db=35.0, bitrate_kbps=500.0,
        retiring=50.0, bad_speculation=10.0, frontend_bound=10.0,
        backend_bound=30.0, memory_bound=20.0, core_bound=10.0,
        branch_mpki=3.0, l1d_mpki=10.0, l2_mpki=2.0, l3_mpki=0.2,
        l1i_mpki=2.0, itlb_mpki=0.01,
        stall_any_pki=100.0, stall_rob_pki=80.0, stall_rs_pki=30.0,
        stall_sb_pki=2.0, cycles=1e6, instructions=2e6, ipc=2.0,
    )
    base.update(overrides)
    return CounterSet(**base)


class TestTableIIITasks:
    def test_four_tasks_verbatim(self):
        assert len(TABLE_III_TASKS) == 4
        t1, t2, t3, t4 = TABLE_III_TASKS
        assert (t1.video, t1.crf, t1.refs, t1.preset) == ("desktop", 30, 8, "veryfast")
        assert (t2.video, t2.crf, t2.refs, t2.preset) == ("holi", 10, 1, "slow")
        assert (t3.video, t3.crf, t3.refs, t3.preset) == (
            "presentation", 35, 6, "veryfast",
        )
        assert (t4.video, t4.crf, t4.refs, t4.preset) == ("game2", 15, 2, "medium")

    def test_options_carry_parameters(self):
        opts = TABLE_III_TASKS[0].options()
        assert opts.crf == 30 and opts.refs == 8
        assert opts.preset_name == "veryfast"

    def test_load_geometry(self):
        clip = TABLE_III_TASKS[0].load(width=48, height=32, n_frames=2)
        assert clip.resolution == (48, 32)

    def test_describe(self):
        assert "holi" in TABLE_III_TASKS[1].describe()


class TestAffinity:
    def test_branchy_task_prefers_bs_op(self):
        scores = affinity_scores(
            _counters(bad_speculation=30.0, branch_mpki=8.0, memory_bound=10.0)
        )
        assert scores["bs_op"] == max(scores.values())

    def test_memory_task_prefers_be_op1(self):
        scores = affinity_scores(
            _counters(memory_bound=45.0, bad_speculation=2.0, frontend_bound=3.0,
                      core_bound=3.0)
        )
        assert scores["be_op1"] == max(scores.values())

    def test_frontend_task_prefers_fe_op(self):
        scores = affinity_scores(
            _counters(frontend_bound=40.0, memory_bound=4.0, core_bound=2.0,
                      bad_speculation=3.0, l1i_mpki=20.0)
        )
        assert scores["fe_op"] == max(scores.values())

    def test_all_four_configs_scored(self):
        assert set(affinity_scores(_counters())) == {
            "fe_op", "be_op1", "be_op2", "bs_op",
        }


def _fixture_problem():
    """4 tasks x 4 configs with distinct, known optima."""
    tasks = [TranscodeTask(i + 1, "desktop", 23, 1, "medium") for i in range(4)]
    config_names = ["fe_op", "be_op1", "be_op2", "bs_op"]
    baseline = {t.task_id: 1000.0 for t in tasks}
    # Task i is fastest on config i.
    cycles = {}
    for i, t in enumerate(tasks):
        cycles[t.task_id] = {
            name: (800.0 if j == i else 950.0)
            for j, name in enumerate(config_names)
        }
    # Counters that point each task at its true best config.
    profiles = {
        1: _counters(frontend_bound=40, l1i_mpki=20, memory_bound=5,
                     core_bound=2, bad_speculation=2),
        2: _counters(memory_bound=45, core_bound=2, bad_speculation=2,
                     frontend_bound=3),
        3: _counters(core_bound=30, memory_bound=28, stall_rob_pki=300,
                     stall_rs_pki=200, bad_speculation=2, frontend_bound=3),
        4: _counters(bad_speculation=35, branch_mpki=9, memory_bound=5,
                     core_bound=2, frontend_bound=3),
    }
    return tasks, cycles, config_names, baseline, profiles


class TestSchedulers:
    def test_random_is_average(self):
        tasks, cycles, names, baseline, _ = _fixture_problem()
        a = RandomScheduler().schedule(tasks, cycles, names, baseline)
        for t in tasks:
            expected = (800 + 3 * 950) / 4
            assert a.task_cycles[t.task_id] == pytest.approx(expected)

    def test_best_picks_minimum(self):
        tasks, cycles, names, baseline, _ = _fixture_problem()
        a = BestScheduler().schedule(tasks, cycles, names, baseline)
        assert all(c == 800.0 for c in a.task_cycles.values())
        # No one-to-one constraint: duplicates allowed in principle.
        assert a.placement[1] == "fe_op"

    def test_smart_solves_assignment(self):
        tasks, cycles, names, baseline, profiles = _fixture_problem()
        a = SmartScheduler().schedule(tasks, cycles, names, baseline, profiles)
        # The affinity signals point each task at its true optimum, and the
        # optima are distinct, so smart should match best everywhere.
        assert a.placement == {1: "fe_op", 2: "be_op1", 3: "be_op2", 4: "bs_op"}

    def test_smart_requires_counters(self):
        tasks, cycles, names, baseline, _ = _fixture_problem()
        with pytest.raises(ValueError, match="counters"):
            SmartScheduler().schedule(tasks, cycles, names, baseline, None)

    def test_smart_one_to_one(self):
        tasks, cycles, names, baseline, profiles = _fixture_problem()
        a = SmartScheduler().schedule(tasks, cycles, names, baseline, profiles)
        assert sorted(a.placement.values()) == sorted(names)

    def test_smart_rejects_mismatched_sizes(self):
        tasks, cycles, names, baseline, profiles = _fixture_problem()
        with pytest.raises(ValueError, match="one-to-one"):
            SmartScheduler().schedule(tasks[:2], cycles, names, baseline, profiles)

    def test_missing_measurements_rejected(self):
        tasks, cycles, names, baseline, _ = _fixture_problem()
        del cycles[2]["be_op1"]
        with pytest.raises(ValueError, match="missing cycles"):
            BestScheduler().schedule(tasks, cycles, names, baseline)

    def test_speedup_computation(self):
        a = Assignment(
            scheduler="x",
            placement={1: "c"},
            task_cycles={1: 800.0},
            baseline_cycles={1: 1000.0},
        )
        assert a.mean_speedup_pct == pytest.approx(25.0)
        assert a.total_cycles == 800.0

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            RandomScheduler().schedule([], {}, ["a"], {})
