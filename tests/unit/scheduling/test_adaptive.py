"""Unit tests for repro.scheduling.adaptive."""

import pytest

from repro.experiments.runner import SweepRecord
from repro.profiling.counters import CounterSet
from repro.scheduling.adaptive import (
    OperatingPoint,
    pareto_frontier,
    select_for_bandwidth,
    select_for_deadline,
)


def _record(crf, refs, psnr, kbps, secs, preset="medium"):
    fields = {name: 0.0 for name in CounterSet.field_names()}
    fields.update(
        time_seconds=secs, psnr_db=psnr, bitrate_kbps=kbps,
        retiring=50.0, bad_speculation=10.0, frontend_bound=10.0,
        backend_bound=30.0, memory_bound=20.0, core_bound=10.0,
        cycles=secs * 3.5e9, instructions=1e6, ipc=1.0,
    )
    return SweepRecord(
        video="v", crf=crf, refs=refs, preset=preset,
        counters=CounterSet(**fields),
    )


@pytest.fixture()
def ladder():
    """A quality ladder plus two dominated points."""
    return [
        _record(10, 3, psnr=45.0, kbps=2000.0, secs=0.020),
        _record(23, 3, psnr=38.0, kbps=800.0, secs=0.015),
        _record(35, 2, psnr=31.0, kbps=250.0, secs=0.010),
        _record(45, 1, psnr=26.0, kbps=90.0, secs=0.007),
        # Dominated: same quality as crf=23 but bigger and slower.
        _record(22, 8, psnr=38.0, kbps=900.0, secs=0.018),
        # Dominated: worse than crf=35 on every axis.
        _record(36, 8, psnr=30.0, kbps=260.0, secs=0.012),
    ]


class TestPareto:
    def test_dominated_points_pruned(self, ladder):
        frontier = pareto_frontier(ladder)
        crfs = {p.crf for p in frontier}
        assert crfs == {10, 23, 35, 45}

    def test_sorted_by_bitrate(self, ladder):
        frontier = pareto_frontier(ladder)
        rates = [p.bitrate_kbps for p in frontier]
        assert rates == sorted(rates)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([])

    def test_dominates_semantics(self):
        a = OperatingPoint(23, 3, "medium", 38.0, 800.0, 0.01)
        worse = OperatingPoint(22, 8, "medium", 38.0, 900.0, 0.02)
        equal = OperatingPoint(23, 3, "medium", 38.0, 800.0, 0.01)
        assert a.dominates(worse)
        assert not worse.dominates(a)
        assert not a.dominates(equal)  # no strict improvement


class TestBandwidthSelection:
    def test_picks_best_quality_under_budget(self, ladder):
        point = select_for_bandwidth(ladder, 1000.0)
        assert point is not None
        assert point.crf == 23  # 800 kbps fits, 2000 does not

    def test_generous_budget_gets_top_rung(self, ladder):
        assert select_for_bandwidth(ladder, 1e6).crf == 10

    def test_tight_budget_gets_saver(self, ladder):
        assert select_for_bandwidth(ladder, 100.0).crf == 45

    def test_impossible_budget_returns_none(self, ladder):
        assert select_for_bandwidth(ladder, 10.0) is None

    def test_invalid_budget(self, ladder):
        with pytest.raises(ValueError):
            select_for_bandwidth(ladder, 0.0)


class TestDeadlineSelection:
    def test_picks_best_quality_under_deadline(self, ladder):
        point = select_for_deadline(ladder, 0.016)
        assert point is not None
        assert point.crf == 23  # 15 ms fits, 20 ms does not

    def test_tight_deadline(self, ladder):
        assert select_for_deadline(ladder, 0.008).crf == 45

    def test_impossible_deadline_returns_none(self, ladder):
        assert select_for_deadline(ladder, 0.001) is None

    def test_never_picks_dominated_point(self, ladder):
        # The crf=22/refs=8 point fits this deadline but is dominated.
        point = select_for_deadline(ladder, 0.018)
        assert (point.crf, point.refs) != (22, 8)


class TestEndToEnd:
    def test_with_real_sweep(self):
        """Selectors work on genuinely profiled records."""
        from repro.experiments.runner import ExperimentScale, SweepRunner

        scale = ExperimentScale(
            name="adaptive-test", width=48, height=32, n_frames=4,
            crf_values=(10, 30, 48), refs_values=(1,),
            sweep_video="cricket", data_capacity_scale=16.0,
        )
        records = SweepRunner(scale).crf_refs_sweep()
        frontier = pareto_frontier(records)
        assert frontier  # something survives
        mid = select_for_bandwidth(
            records, frontier[len(frontier) // 2].bitrate_kbps + 1
        )
        assert mid is not None
        top = select_for_bandwidth(records, 1e9)
        assert top.psnr_db >= mid.psnr_db
