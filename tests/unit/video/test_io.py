"""Unit tests for repro.video.io (.ylm container)."""

import numpy as np
import pytest

from repro.video.frame import FrameSequence
from repro.video.io import read_ylm, write_ylm


def _seq(n=3, h=32, w=48, fps=29.97):
    rng = np.random.default_rng(4)
    lumas = [rng.integers(0, 256, (h, w)).astype(np.uint8) for _ in range(n)]
    return FrameSequence.from_lumas(lumas, fps=fps, name="io-test")


class TestRoundTrip:
    def test_lossless(self, tmp_path):
        seq = _seq()
        path = tmp_path / "clip.ylm"
        write_ylm(path, seq)
        back = read_ylm(path)
        assert len(back) == len(seq)
        assert back.fps == pytest.approx(seq.fps)
        assert np.array_equal(back.lumas(), seq.lumas())

    def test_byte_count(self, tmp_path):
        seq = _seq(n=2, h=16, w=16)
        path = tmp_path / "c.ylm"
        n = write_ylm(path, seq)
        assert n == path.stat().st_size

    def test_name_from_filename(self, tmp_path):
        path = tmp_path / "myclip.ylm"
        write_ylm(path, _seq())
        assert read_ylm(path).name == "myclip"


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ylm"
        path.write_bytes(b"NOPE width=1 height=1 fps=1 frames=1\n\x00")
        with pytest.raises(ValueError, match="not a YLM1"):
            read_ylm(path)

    def test_malformed_header_token(self, tmp_path):
        path = tmp_path / "bad.ylm"
        path.write_bytes(b"YLM1 width=16 height 16 fps=30 frames=1\n" + b"\x00" * 256)
        with pytest.raises(ValueError, match="malformed"):
            read_ylm(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.ylm"
        path.write_bytes(b"YLM1 width=16 fps=30 frames=1\n" + b"\x00" * 256)
        with pytest.raises(ValueError, match="malformed"):
            read_ylm(path)

    def test_truncated_frame(self, tmp_path):
        path = tmp_path / "trunc.ylm"
        path.write_bytes(b"YLM1 width=16 height=16 fps=30 frames=2\n" + b"\x00" * 256)
        with pytest.raises(ValueError, match="truncated frame 1"):
            read_ylm(path)

    def test_invalid_geometry(self, tmp_path):
        path = tmp_path / "geo.ylm"
        path.write_bytes(b"YLM1 width=0 height=16 fps=30 frames=1\n")
        with pytest.raises(ValueError, match="invalid geometry"):
            read_ylm(path)
