"""Unit tests for repro.video.frame."""

import numpy as np
import pytest

from repro.video.frame import MB_SIZE, Frame, FrameSequence


def _luma(h, w, value=10):
    return np.full((h, w), value, dtype=np.uint8)


class TestFrame:
    def test_geometry_properties(self):
        f = Frame(_luma(32, 48))
        assert f.height == 32
        assert f.width == 48
        assert f.resolution == (48, 32)
        assert f.n_pixels == 32 * 48

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            Frame(np.zeros((2, 3, 4), dtype=np.uint8))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="uint8"):
            Frame(np.zeros((16, 16), dtype=np.float32))

    def test_chroma_shape_validated(self):
        ch = np.zeros((16, 24), dtype=np.uint8)
        f = Frame(_luma(32, 48), chroma=(ch, ch))
        assert f.chroma is not None
        with pytest.raises(ValueError, match="chroma"):
            Frame(_luma(32, 48), chroma=(np.zeros((8, 8), np.uint8),) * 2)

    def test_padded_luma_noop_when_aligned(self):
        f = Frame(_luma(32, 48))
        assert f.padded_luma() is f.luma

    def test_padded_luma_pads_to_mb_multiple(self):
        f = Frame(_luma(30, 47))
        padded = f.padded_luma()
        assert padded.shape == (32, 48)
        # Edge padding replicates border pixels.
        assert np.array_equal(padded[30, :47], f.luma[29, :])

    def test_padded_luma_custom_multiple(self):
        f = Frame(_luma(17, 17))
        assert f.padded_luma(8).shape == (24, 24)

    def test_mb_size_constant(self):
        assert MB_SIZE == 16

    def test_downscale_averages_blocks(self):
        luma = np.zeros((4, 4), dtype=np.uint8)
        luma[:2, :2] = 100
        f = Frame(luma).downscale(2)
        assert f.luma.shape == (2, 2)
        assert f.luma[0, 0] == 100
        assert f.luma[1, 1] == 0

    def test_downscale_rejects_too_small(self):
        with pytest.raises(ValueError):
            Frame(_luma(4, 4)).downscale(8)


class TestFrameSequence:
    def _seq(self, n=3, h=32, w=48):
        return FrameSequence(
            frames=[Frame(_luma(h, w, i)) for i in range(n)], fps=30.0, name="t"
        )

    def test_len_iter_getitem(self):
        seq = self._seq(4)
        assert len(seq) == 4
        assert seq[2].luma[0, 0] == 2
        assert [f.luma[0, 0] for f in seq] == [0, 1, 2, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one frame"):
            FrameSequence(frames=[], fps=30)

    def test_rejects_mixed_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            FrameSequence(
                frames=[Frame(_luma(32, 48)), Frame(_luma(32, 32))], fps=30
            )

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            FrameSequence(frames=[Frame(_luma(16, 16))], fps=0)

    def test_duration(self):
        assert self._seq(6).duration_seconds == pytest.approx(0.2)

    def test_lumas_stack(self):
        stack = self._seq(3).lumas()
        assert stack.shape == (3, 32, 48)
        assert stack[1, 0, 0] == 1

    def test_clip(self):
        clipped = self._seq(5).clip(2)
        assert len(clipped) == 2

    def test_downscale_sequence(self):
        small = self._seq(2).downscale(2)
        assert small.resolution == (24, 16)
        assert "1/2" in small.name

    def test_from_lumas(self):
        seq = FrameSequence.from_lumas([_luma(16, 16), _luma(16, 16)], fps=25)
        assert len(seq) == 2
        assert seq.fps == 25
