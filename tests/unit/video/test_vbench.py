"""Unit tests for repro.video.vbench (the Table I catalog)."""

import pytest

from repro.video.vbench import (
    ALL_VIDEOS,
    BIG_BUCK_BUNNY,
    VBENCH_VIDEOS,
    load_video,
    scene_spec_for,
    video_info,
)


class TestCatalog:
    def test_fifteen_vbench_videos(self):
        assert len(VBENCH_VIDEOS) == 15

    def test_big_buck_bunny_included(self):
        assert BIG_BUCK_BUNNY in ALL_VIDEOS
        assert len(ALL_VIDEOS) == 16

    def test_table_i_values_verbatim(self):
        # Spot-check rows against the paper's Table I.
        desktop = video_info("desktop")
        assert (desktop.width, desktop.height, desktop.fps) == (1280, 720, 30)
        assert desktop.entropy == 0.2
        chicken = video_info("chicken")
        assert (chicken.width, chicken.height) == (3840, 2160)
        assert chicken.entropy == 5.9
        hall = video_info("hall")
        assert hall.fps == 29 and hall.entropy == 7.7
        game3 = video_info("game3")
        assert game3.fps == 59

    def test_entropy_sorted_order(self):
        entropies = [v.entropy for v in VBENCH_VIDEOS]
        assert entropies == sorted(entropies)

    def test_resolution_labels(self):
        assert video_info("cat").resolution_label == "480p"
        assert video_info("bike").resolution_label == "720p"
        assert video_info("hall").resolution_label == "1080p"
        assert video_info("chicken").resolution_label == "2160p"

    def test_unknown_video_raises(self):
        with pytest.raises(KeyError, match="unknown video"):
            video_info("nonexistent")


class TestSceneSpecMapping:
    def test_entropy_scales_motion(self):
        lo = scene_spec_for(video_info("desktop"))
        hi = scene_spec_for(video_info("hall"))
        assert hi.motion_magnitude > lo.motion_magnitude
        assert hi.texture_detail > lo.texture_detail
        assert hi.noise_level > lo.noise_level

    def test_low_entropy_no_scene_cuts(self):
        assert scene_spec_for(video_info("desktop")).scene_cut_period == 0
        assert scene_spec_for(video_info("presentation")).scene_cut_period == 0

    def test_high_entropy_has_scene_cuts(self):
        assert scene_spec_for(video_info("holi")).scene_cut_period > 0

    def test_geometry_overrides(self):
        spec = scene_spec_for(video_info("cricket"), width=64, height=48, n_frames=6)
        assert (spec.width, spec.height, spec.n_frames) == (64, 48, 6)

    def test_full_geometry_default(self):
        spec = scene_spec_for(video_info("cricket"))
        assert (spec.width, spec.height) == (1280, 720)
        assert spec.n_frames == 150  # 5 seconds at 30 fps


class TestLoadVideo:
    def test_proxy_scale_small(self):
        clip = load_video("cricket")
        assert clip.height == 96
        assert clip.width % 16 == 0
        assert len(clip) == 10

    def test_proxy_preserves_aspect_roughly(self):
        clip = load_video("chicken")  # 16:9
        aspect = clip.width / clip.height
        assert 1.3 < aspect < 2.2

    def test_explicit_geometry(self):
        clip = load_video("holi", width=64, height=48, n_frames=3)
        assert clip.resolution == (64, 48)
        assert len(clip) == 3

    def test_deterministic(self):
        import numpy as np

        a = load_video("girl", width=48, height=32, n_frames=3).lumas()
        b = load_video("girl", width=48, height=32, n_frames=3).lumas()
        assert np.array_equal(a, b)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            load_video("cricket", scale="huge")

    def test_fps_matches_catalog(self):
        clip = load_video("game3", width=48, height=32, n_frames=2)
        assert clip.fps == 59.0
