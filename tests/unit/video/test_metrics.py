"""Unit tests for repro.video.metrics."""

import numpy as np
import pytest

from repro.video.frame import Frame, FrameSequence
from repro.video.metrics import (
    bitrate_kbps,
    estimate_entropy,
    psnr,
    psnr_sequence,
    ssim,
)
from repro.video.synthetic import SceneSpec, generate_scene


def _plane(value=128, shape=(32, 32)):
    return np.full(shape, value, dtype=np.uint8)


class TestPsnr:
    def test_identical_is_max(self):
        assert psnr(_plane(), _plane()) == 100.0

    def test_known_mse(self):
        a = _plane(100)
        b = _plane(110)  # MSE = 100
        expected = 10 * np.log10(255**2 / 100)
        assert psnr(a, b) == pytest.approx(expected)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        b = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        assert psnr(a, b) == pytest.approx(psnr(b, a))

    def test_accepts_frames(self):
        assert psnr(Frame(_plane()), Frame(_plane())) == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            psnr(_plane(), _plane(shape=(16, 16)))

    def test_worse_distortion_lower_psnr(self):
        a = _plane(100)
        assert psnr(a, _plane(105)) > psnr(a, _plane(130))


class TestPsnrSequence:
    def _seq(self, values):
        return FrameSequence.from_lumas([_plane(v) for v in values], fps=30)

    def test_pooled_mse(self):
        ref = self._seq([100, 100])
        out = self._seq([100, 110])  # pooled MSE = 50
        expected = 10 * np.log10(255**2 / 50)
        assert psnr_sequence(ref, out) == pytest.approx(expected)

    def test_identical(self):
        s = self._seq([1, 2, 3])
        assert psnr_sequence(s, s) == 100.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            psnr_sequence(self._seq([1]), self._seq([1, 2]))


class TestSsim:
    def test_identical_is_one(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_degrades_with_noise(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        small = np.clip(a.astype(int) + rng.normal(0, 5, a.shape), 0, 255).astype(np.uint8)
        big = np.clip(a.astype(int) + rng.normal(0, 60, a.shape), 0, 255).astype(np.uint8)
        assert ssim(a, small) > ssim(a, big)

    def test_range(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ssim(_plane(shape=(4, 4)), _plane(shape=(4, 4)))


class TestBitrate:
    def test_known_value(self):
        # 30 frames at 30 fps = 1 second; 1_000_000 bits -> 1000 kbps.
        assert bitrate_kbps(1_000_000, 30, 30.0) == pytest.approx(1000.0)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            bitrate_kbps(-1, 30, 30.0)

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            bitrate_kbps(100, 0, 30.0)


class TestEstimateEntropy:
    def _clip(self, motion, detail):
        return generate_scene(
            SceneSpec(
                width=64, height=48, n_frames=5, seed=9,
                motion_magnitude=motion, texture_detail=detail,
                noise_level=0.05 + 0.2 * motion, name="e",
            )
        )

    def test_complex_scores_higher(self):
        calm = estimate_entropy(self._clip(0.05, 0.1))
        busy = estimate_entropy(self._clip(0.9, 0.9))
        assert busy > calm * 2

    def test_nonnegative(self):
        flat = FrameSequence.from_lumas([_plane(), _plane()], fps=30)
        assert estimate_entropy(flat) == pytest.approx(0.0, abs=1e-9)

    def test_single_frame_supported(self):
        clip = FrameSequence.from_lumas([_plane(7)], fps=30)
        assert estimate_entropy(clip) >= 0.0

    def test_catalog_ordering_preserved(self):
        # The synthetic stand-ins must realize the published complexity
        # ordering at least coarsely: desktop << cricket << hall.
        from repro.video.vbench import load_video

        e = {
            name: estimate_entropy(load_video(name, width=64, height=48, n_frames=5))
            for name in ("desktop", "cricket", "hall")
        }
        assert e["desktop"] < e["cricket"] < e["hall"]
