"""Unit tests for repro.video.synthetic."""

import numpy as np
import pytest

from repro.video.synthetic import SceneSpec, generate_scene


def _spec(**kw):
    base = dict(width=48, height=32, n_frames=4, seed=5, name="t")
    base.update(kw)
    return SceneSpec(**base)


class TestSceneSpec:
    def test_validation_ranges(self):
        with pytest.raises(ValueError):
            _spec(texture_detail=1.5)
        with pytest.raises(ValueError):
            _spec(motion_magnitude=-0.1)
        with pytest.raises(ValueError):
            _spec(scene_cut_period=-1)
        with pytest.raises(ValueError):
            _spec(n_frames=0)

    def test_scaled_preserves_knobs(self):
        spec = _spec(texture_detail=0.7, motion_magnitude=0.2)
        scaled = spec.scaled(96, 64, 8)
        assert scaled.width == 96 and scaled.height == 64 and scaled.n_frames == 8
        assert scaled.texture_detail == 0.7
        assert scaled.motion_magnitude == 0.2


class TestGenerateScene:
    def test_geometry(self):
        clip = generate_scene(_spec())
        assert len(clip) == 4
        assert clip.resolution == (48, 32)
        assert clip.frames[0].luma.dtype == np.uint8

    def test_deterministic(self):
        a = generate_scene(_spec()).lumas()
        b = generate_scene(_spec()).lumas()
        assert np.array_equal(a, b)

    def test_seed_changes_content(self):
        a = generate_scene(_spec(seed=1)).lumas()
        b = generate_scene(_spec(seed=2)).lumas()
        assert not np.array_equal(a, b)

    def test_zero_motion_zero_noise_is_static(self):
        clip = generate_scene(
            _spec(motion_magnitude=0.0, motion_irregularity=0.0, noise_level=0.0)
        )
        lumas = clip.lumas()
        assert np.array_equal(lumas[0], lumas[-1])

    def test_motion_changes_frames(self):
        clip = generate_scene(_spec(motion_magnitude=0.8, noise_level=0.0))
        lumas = clip.lumas()
        assert not np.array_equal(lumas[0], lumas[1])

    def test_higher_motion_bigger_frame_diff(self):
        slow = generate_scene(_spec(motion_magnitude=0.05, noise_level=0.0)).lumas()
        fast = generate_scene(_spec(motion_magnitude=0.9, noise_level=0.0)).lumas()
        d_slow = np.abs(np.diff(slow.astype(float), axis=0)).mean()
        d_fast = np.abs(np.diff(fast.astype(float), axis=0)).mean()
        assert d_fast > d_slow

    def test_texture_detail_raises_gradient_energy(self):
        smooth = generate_scene(_spec(texture_detail=0.0, noise_level=0.0)).lumas()
        rough = generate_scene(_spec(texture_detail=1.0, noise_level=0.0)).lumas()
        g = lambda a: np.abs(np.diff(a.astype(float), axis=2)).mean()
        assert g(rough) > g(smooth)

    def test_scene_cut_creates_discontinuity(self):
        spec = _spec(
            n_frames=6, scene_cut_period=3,
            motion_magnitude=0.0, motion_irregularity=0.0, noise_level=0.0,
        )
        lumas = generate_scene(spec).lumas().astype(float)
        diff_within = np.abs(lumas[1] - lumas[0]).mean()
        diff_at_cut = np.abs(lumas[3] - lumas[2]).mean()
        assert diff_at_cut > diff_within + 5.0

    def test_no_sprites_supported(self):
        clip = generate_scene(_spec(n_sprites=0))
        assert len(clip) == 4
