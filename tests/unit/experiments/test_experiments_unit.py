"""Unit tests for the experiments harness (runner, report, tables)."""

import numpy as np
import pytest

from repro.experiments.report import ascii_heatmap, series_table
from repro.experiments.runner import (
    ExperimentScale,
    FULL,
    MEDIUM,
    QUICK,
    SweepRunner,
    shared_runner,
)
from repro.experiments.tables import tab2, tab3, tab4


@pytest.fixture(scope="module")
def micro_scale():
    """A scale small enough for unit testing."""
    return ExperimentScale(
        name="micro",
        width=48,
        height=32,
        n_frames=4,
        crf_values=(10, 40),
        refs_values=(1, 2),
        sweep_video="cricket",
        videos=("desktop", "holi"),
        data_capacity_scale=16.0,
        fig8_combos=1,
    )


class TestScales:
    def test_quick_defaults(self):
        assert QUICK.name == "quick"
        assert len(QUICK.crf_values) >= 5
        assert len(QUICK.videos) == 16

    def test_full_matches_paper_grid(self):
        assert FULL.crf_values == tuple(range(1, 52))
        assert FULL.refs_values == tuple(range(1, 17))
        assert len(FULL.crf_values) * len(FULL.refs_values) == 816
        assert FULL.fig8_combos == 32

    def test_medium_between(self):
        assert len(QUICK.crf_values) < len(MEDIUM.crf_values) < len(FULL.crf_values)

    def test_with_updates(self):
        scale = QUICK.with_updates(n_frames=6)
        assert scale.n_frames == 6 and QUICK.n_frames != 6

    def test_with_updates_rejects_unknown_fields(self):
        with pytest.raises(ValueError) as exc:
            QUICK.with_updates(n_frame=6)  # typo for n_frames
        msg = str(exc.value)
        assert "n_frame" in msg
        assert "valid fields" in msg and "n_frames" in msg

    def test_with_updates_reports_all_unknown_fields(self):
        with pytest.raises(ValueError, match="bogus.*nope"):
            QUICK.with_updates(nope=1, bogus=2)


class TestSweepRunner:
    def test_profile_memoized(self, micro_scale):
        runner = SweepRunner(micro_scale)
        a = runner.profile("desktop", crf=23, refs=1)
        b = runner.profile("desktop", crf=23, refs=1)
        assert a is b  # cached object identity

    def test_records_carry_parameters(self, micro_scale):
        runner = SweepRunner(micro_scale)
        rec = runner.profile("holi", crf=30, refs=2)
        assert rec.video == "holi" and rec.crf == 30 and rec.refs == 2
        row = rec.as_row()
        assert row["crf"] == 30
        assert "backend_bound" in row

    def test_crf_refs_sweep_shape(self, micro_scale):
        runner = SweepRunner(micro_scale)
        records = runner.crf_refs_sweep()
        assert len(records) == 4  # 2 crf x 2 refs
        assert {(r.crf, r.refs) for r in records} == {
            (10, 1), (10, 2), (40, 1), (40, 2),
        }

    def test_video_sweep_covers_catalog(self, micro_scale):
        runner = SweepRunner(micro_scale)
        records = runner.video_sweep()
        assert {r.video for r in records} == {"desktop", "holi"}

    def test_shared_runner_caches_per_scale(self, micro_scale):
        a = shared_runner(micro_scale)
        b = shared_runner(micro_scale)
        assert a is b


class TestReportRendering:
    def test_heatmap_structure(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = ascii_heatmap(
            grid, row_labels=["r1", "r2"], col_labels=["c1", "c2"], title="T"
        )
        assert "T" in out
        assert "min=1.0" in out and "max=4.0" in out
        assert "r1" in out and "c2" in out

    def test_heatmap_shades_span(self):
        grid = np.array([[0.0, 10.0]])
        out = ascii_heatmap(grid, row_labels=["r"], col_labels=["a", "b"], title="t")
        lines = out.splitlines()
        assert " " in lines[-1] or "." in lines[-1]
        assert "@" in lines[-1]

    def test_heatmap_constant_grid(self):
        grid = np.full((2, 2), 5.0)
        out = ascii_heatmap(grid, row_labels=["a", "b"], col_labels=["x", "y"], title="t")
        assert "min=5.0" in out

    def test_heatmap_shape_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(
                np.zeros((2, 2)), row_labels=["a"], col_labels=["x", "y"], title="t"
            )
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3), row_labels=["a"], col_labels=["x"], title="t")

    def test_series_table(self):
        out = series_table("x", [1, 2], {"a": [0.5, 1.5], "b": [2.0, 3.0]})
        assert "x" in out and "a" in out and "b" in out
        assert "0.50" in out and "3.00" in out


class TestStaticTables:
    def test_tab2_matches_paper(self):
        text = tab2()
        assert "ultrafast" in text and "placebo" in text
        assert "tesa" in text  # placebo me
        assert "trellis" in text

    def test_tab3_lists_four_tasks(self):
        text = tab3()
        for video in ("desktop", "holi", "presentation", "game2"):
            assert video in text

    def test_tab4_lists_five_configs(self):
        text = tab4()
        for cfg in ("baseline", "fe_op", "be_op1", "be_op2", "bs_op"):
            assert cfg in text
        assert "Tage".lower() in text.lower()
