"""Unit tests for the figure result classes at micro scale."""

import pytest

from repro.experiments import fig6_presets, fig7_videos, fig9_scheduler
from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="module")
def micro_scale():
    return ExperimentScale(
        name="micro-fig",
        width=48,
        height=32,
        n_frames=5,
        crf_values=(23,),
        refs_values=(1,),
        sweep_video="cricket",
        videos=("desktop", "cricket", "hall"),
        data_capacity_scale=16.0,
        fig8_combos=1,
    )


class TestFig6Result:
    def test_series_and_render(self, micro_scale):
        result = fig6_presets.run(micro_scale)
        assert len(result.presets) == 10
        times = result.series("time_seconds")
        assert len(times) == 10
        assert all(t > 0 for t in times)
        text = result.render()
        assert "ultrafast" in text and "(d) resource stalls" in text

    def test_counters_keyed_by_preset(self, micro_scale):
        result = fig6_presets.run(micro_scale)
        assert set(result.counters) == set(result.presets)


class TestFig7Result:
    def test_paper_ordering(self, micro_scale):
        result = fig7_videos.run(micro_scale)
        # Grouped by resolution then entropy: desktop(720p) before
        # cricket(720p); hall(1080p) last.
        assert result.videos.index("desktop") < result.videos.index("cricket")
        assert result.videos[-1] == "hall"

    def test_entropies_match_catalog(self, micro_scale):
        result = fig7_videos.run(micro_scale)
        assert result.entropies() == [0.2, 3.4, 7.7]

    def test_correlation_requires_three_points(self):
        from repro.experiments.fig7_videos import entropy_correlation

        with pytest.raises(ValueError):
            entropy_correlation([1.0, 2.0], [3.0, 4.0])

    def test_render_includes_correlations(self, micro_scale):
        text = fig7_videos.run(micro_scale).render()
        assert "entropy correlations" in text


class TestFig9Result:
    def test_speedups_and_render(self, micro_scale):
        result = fig9_scheduler.run(micro_scale)
        speedups = result.speedups
        assert set(speedups) == {"random", "smart", "best"}
        assert speedups["best"] >= speedups["smart"]
        text = result.render()
        assert "scheduler comparison" in text
        assert "paper: +3.72" in text
