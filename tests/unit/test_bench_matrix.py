"""Matrix specs: parsing with line context, expansion, precedence, runs."""

from __future__ import annotations

import json

import pytest

from repro.api import Settings
from repro.bench import (
    MATRIX_SCHEMA,
    MatrixSpec,
    SpecError,
    load_matrix,
    load_spec,
    resolve_cell_settings,
    run_matrix,
    write_matrix,
)
from repro.obs import render_matrix

ENV_VARS = ("REPRO_KERNELS", "REPRO_JOBS", "REPRO_LOADTEST_MIX")


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    yield
    Settings.reset()


def _encode_spec(**kwargs):
    base = dict(
        name="t",
        leg="encode",
        axes=(("kernels", ("reference", "vectorized")),
              ("clip", ("cricket", "landscape"))),
        params={"crf": 23},
    )
    base.update(kwargs)
    return MatrixSpec(**base)


class TestSpecModel:
    def test_expansion_is_the_cross_product(self):
        spec = _encode_spec()
        cells = spec.expand()
        assert spec.n_cells() == len(cells) == 4
        assert cells[0].cell_id == "kernels=reference/clip=cricket"
        assert cells[0].values == {"kernels": "reference", "clip": "cricket"}
        # Declaration order drives both cell ids and iteration order.
        assert [c.cell_id for c in cells] == [
            "kernels=reference/clip=cricket",
            "kernels=reference/clip=landscape",
            "kernels=vectorized/clip=cricket",
            "kernels=vectorized/clip=landscape",
        ]

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(SpecError, match="double-count"):
            _encode_spec(axes=(("clip", ("cricket", "cricket")),))

    def test_rejects_unknown_axis_for_leg(self):
        with pytest.raises(SpecError, match="unknown axis 'rate'"):
            _encode_spec(axes=(("clip", ("cricket",)), ("rate", (4,))))

    def test_rejects_unknown_leg(self):
        with pytest.raises(SpecError, match="unknown leg"):
            _encode_spec(leg="teleport")

    def test_rejects_missing_required_key(self):
        with pytest.raises(SpecError, match="needs clip"):
            _encode_spec(axes=(("kernels", ("reference",)),), params={})

    def test_rejects_settings_shadowed_by_axis(self):
        with pytest.raises(SpecError, match="shadowed"):
            _encode_spec(settings={"kernels": "reference"})

    def test_rejects_param_colliding_with_axis(self):
        with pytest.raises(SpecError, match="collides"):
            _encode_spec(params={"clip": "cricket"},
                         axes=(("clip", ("cricket",)),))


class TestLoadSpec:
    def test_yaml_roundtrip(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text(
            "name: demo\n"
            "leg: encode\n"
            "axes:\n"
            "  kernels: [reference, vectorized]\n"
            "  clip: [cricket]\n"
            "params:\n"
            "  crf: 23\n"
        )
        spec = load_spec(path)
        assert spec.name == "demo"
        assert spec.n_cells() == 2
        assert spec.params == {"crf": 23}
        assert spec.source == str(path)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "name": "demo",
            "leg": "encode",
            "axes": {"clip": ["cricket", "landscape"]},
        }))
        assert load_spec(path).n_cells() == 2

    def test_yaml_error_carries_line(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text(
            "name: demo\n"
            "leg: encode\n"
            "axes:\n"
            "  clip: [cricket]\n"
            "  rate: [4, 16]\n"
        )
        with pytest.raises(SpecError) as exc:
            load_spec(path)
        assert exc.value.line == 5
        assert f"{path}:5:" in str(exc.value)

    def test_json_syntax_error_carries_line(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{\n  "name": "demo",\n  oops\n}\n')
        with pytest.raises(SpecError) as exc:
            load_spec(path)
        assert exc.value.line == 3

    def test_unknown_top_level_key_points_at_its_line(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text(
            "name: demo\n"
            "leg: encode\n"
            "cells: 4\n"
            "axes:\n"
            "  clip: [cricket]\n"
        )
        with pytest.raises(SpecError) as exc:
            load_spec(path)
        assert "unknown top-level key 'cells'" in str(exc.value)
        assert exc.value.line == 3

    def test_missing_file_is_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(tmp_path / "nope.yaml")

    def test_non_mapping_spec_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("[1, 2]")
        with pytest.raises(SpecError, match="must be a mapping"):
            load_spec(path)

    def test_shipped_example_specs_validate(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples" / "bench"
        for name in ("kernel_workload.yaml", "loadtest_rates.yaml",
                     "fleet_objectives.json"):
            spec = load_spec(examples / name)
            assert spec.n_cells() >= 4


class TestPrecedence:
    def test_spec_settings_below_env(self, monkeypatch):
        spec = _encode_spec(settings={"jobs": 2})
        cell = spec.expand()[0]
        assert resolve_cell_settings(spec, cell).jobs == 2
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_cell_settings(spec, cell).jobs == 3

    def test_env_below_cli(self, monkeypatch):
        spec = _encode_spec(settings={"jobs": 2})
        cell = spec.expand()[0]
        monkeypatch.setenv("REPRO_JOBS", "3")
        resolved = resolve_cell_settings(spec, cell, {"jobs": 5})
        assert resolved.jobs == 5

    def test_axis_pin_beats_everything(self, monkeypatch):
        # An exported REPRO_KERNELS must not collapse the kernels axis.
        monkeypatch.setenv("REPRO_KERNELS", "vectorized")
        spec = _encode_spec()
        ref_cell, *_rest, vec_cell = spec.expand()
        assert resolve_cell_settings(spec, ref_cell).kernels == "reference"
        assert resolve_cell_settings(spec, vec_cell).kernels == "vectorized"

    def test_none_cli_overrides_fall_through(self):
        spec = _encode_spec(settings={"jobs": 2})
        cell = spec.expand()[0]
        assert resolve_cell_settings(spec, cell, {"jobs": None}).jobs == 2


class TestRunMatrix:
    def test_encode_matrix_matches_direct_api_calls(self):
        from repro.api import encode

        spec = MatrixSpec(
            name="equiv",
            leg="encode",
            axes=(("kernels", ("reference", "vectorized")),
                  ("clip", ("cricket",))),
            params={"crf": 23},
        )
        payload = run_matrix(spec, quick=True)
        assert payload["schema"] == MATRIX_SCHEMA
        assert [c["status"] for c in payload["cells"]] == ["ok", "ok"]
        # Quality/size metrics are deterministic per backend, so the
        # matrix cells must match the equivalent flag-driven calls.
        for cell in payload["cells"]:
            Settings(kernels=cell["values"]["kernels"]).apply()
            try:
                direct = encode("cricket", crf=23, width=48, height=32,
                                n_frames=4)
            finally:
                Settings.reset()
            assert cell["metrics"]["psnr_db"] == pytest.approx(
                direct.psnr_db)
            assert cell["metrics"]["bitrate_kbps"] == pytest.approx(
                direct.bitrate_kbps)
            assert cell["metrics"]["encode_s"] > 0

    def test_failed_cell_is_isolated(self):
        spec = MatrixSpec(
            name="partial",
            leg="encode",
            axes=(("clip", ("cricket", "no-such-clip")),),
        )
        payload = run_matrix(spec, quick=True)
        by_id = {c["id"]: c for c in payload["cells"]}
        assert by_id["clip=cricket"]["status"] == "ok"
        failed = by_id["clip=no-such-clip"]
        assert failed["status"] == "failed"
        assert failed["error"] and "no-such-clip" in failed["error"]

    def test_run_does_not_leak_settings(self):
        from repro.codec import kernels as codec_kernels

        spec = MatrixSpec(
            name="leak",
            leg="encode",
            axes=(("kernels", ("reference",)), ("clip", ("cricket",))),
        )
        run_matrix(spec, quick=True)
        assert codec_kernels.active_backend() == codec_kernels.DEFAULT_BACKEND

    def test_payload_provenance_and_roundtrip(self, tmp_path):
        spec = MatrixSpec(
            name="prov", leg="encode", axes=(("clip", ("cricket",)),),
        )
        payload = run_matrix(spec, quick=True)
        assert isinstance(payload["rev"], str)
        assert isinstance(payload["dirty"], bool)
        assert payload["timestamp"] > 0
        path = write_matrix(payload, tmp_path / "matrix.json")
        assert load_matrix(path) == json.loads(path.read_text())
        assert load_matrix(path)["name"] == "prov"

    def test_load_matrix_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match=MATRIX_SCHEMA):
            load_matrix(path)


class TestRenderMatrix:
    def test_render_lists_cells_and_axes(self):
        spec = MatrixSpec(
            name="render", leg="encode",
            axes=(("kernels", ("reference", "vectorized")),
                  ("clip", ("cricket",))),
        )
        payload = run_matrix(spec, quick=True)
        text = render_matrix(payload)
        assert "matrix: render" in text
        assert "2 cells, 2 ok" in text
        assert "kernels" in text and "clip" in text
        assert "psnr_db" in text

    def test_render_flags_failures(self):
        spec = MatrixSpec(
            name="bad", leg="encode", axes=(("clip", ("no-such-clip",)),),
        )
        payload = run_matrix(spec, quick=True)
        text = render_matrix(payload)
        assert "1 failed" in text
        assert "FAILED" in text
