"""The ``batched`` backend's folded entropy kernel: one bulk bit append
per block batch, bit-identical to the per-block reference path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import kernels
from repro.codec.backend_batched import encode_blocks_folded
from repro.codec.entropy import BitReader, BitWriter, decode_block, encode_block


def _per_block_reference(blocks: np.ndarray) -> tuple[bytes, list[int]]:
    writer = BitWriter()
    widths = [encode_block(writer, block) for block in blocks]
    return writer.getvalue(), widths


def _folded(blocks: np.ndarray) -> tuple[bytes, list[int]]:
    writer = BitWriter()
    widths = encode_blocks_folded(writer, blocks)
    return writer.getvalue(), widths


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_folded_matches_per_block_encoding(seed):
    rng = np.random.default_rng(seed)
    blocks = rng.integers(-32, 33, size=(24, 4, 4)).astype(np.int32)
    ref_bytes, ref_widths = _per_block_reference(blocks)
    out_bytes, out_widths = _folded(blocks)
    assert out_bytes == ref_bytes
    assert out_widths == ref_widths


def test_folded_handles_zero_blocks_in_batch():
    rng = np.random.default_rng(3)
    blocks = rng.integers(-4, 5, size=(6, 4, 4)).astype(np.int32)
    blocks[0] = 0
    blocks[3] = 0
    assert _folded(blocks) == _per_block_reference(blocks)


def test_folded_all_zero_batch():
    blocks = np.zeros((5, 4, 4), dtype=np.int32)
    out_bytes, out_widths = _folded(blocks)
    assert (out_bytes, out_widths) == _per_block_reference(blocks)
    assert len(out_widths) == 5


def test_folded_empty_batch_appends_nothing():
    blocks = np.zeros((0, 4, 4), dtype=np.int32)
    out_bytes, out_widths = _folded(blocks)
    assert out_widths == []
    assert out_bytes == b""


def test_folded_large_magnitudes():
    # Levels wide enough to need long exp-Golomb codewords.
    rng = np.random.default_rng(4)
    blocks = rng.integers(-5000, 5001, size=(8, 4, 4)).astype(np.int32)
    assert _folded(blocks) == _per_block_reference(blocks)


def test_folded_stream_decodes_back_to_blocks():
    rng = np.random.default_rng(5)
    blocks = rng.integers(-9, 10, size=(10, 4, 4)).astype(np.int32)
    data, _ = _folded(blocks)
    reader = BitReader(data)
    for block in blocks:
        assert np.array_equal(decode_block(reader), block)


def test_registration_record():
    info = kernels.backend_info("batched")
    assert info.base == "vectorized"
    assert info.available
    assert {"vectorized", "batched"} <= set(info.capabilities)
    assert info.impls["entropy.encode_blocks"] is encode_blocks_folded


def test_dispatch_uses_fold_under_batched_scope():
    rng = np.random.default_rng(6)
    blocks = rng.integers(-4, 5, size=(12, 4, 4)).astype(np.int32)
    from repro.codec.entropy import encode_blocks

    class CountingWriter(BitWriter):
        def __init__(self):
            super().__init__()
            self.appends = 0

        def append_bits(self, value, nbits):
            self.appends += 1
            return super().append_bits(value, nbits)

    with kernels.backend_scope("batched"):
        batched_writer = CountingWriter()
        encode_blocks(batched_writer, blocks)
    with kernels.backend_scope("vectorized"):
        vector_writer = CountingWriter()
        encode_blocks(vector_writer, blocks)
    assert batched_writer.getvalue() == vector_writer.getvalue()
    # The fold is the point: one bulk append versus one per block.
    assert batched_writer.appends == 1
    assert vector_writer.appends == len(blocks)
