"""Unit tests for repro.codec.ratecontrol."""

import pytest

from repro.codec.options import EncoderOptions
from repro.codec.ratecontrol import FirstPassStats, RateController
from repro.codec.types import FrameType


def _rc(**opts):
    options = EncoderOptions(**opts)
    first_pass = None
    if options.rc_mode == "2pass-abr":
        first_pass = FirstPassStats()
        for cost in (1000, 4000, 2000, 1000):
            first_pass.add(cost)
    return RateController(
        options, fps=30.0, n_mbs_per_frame=6, first_pass=first_pass
    )


class TestCqp:
    def test_constant_qp_with_type_offsets(self):
        rc = _rc(rc_mode="cqp", qp=30)
        assert rc.frame_qp(FrameType.I, 1.0) == 27
        assert rc.frame_qp(FrameType.P, 1.0) == 30
        assert rc.frame_qp(FrameType.B, 1.0) == 32

    def test_feedback_has_no_effect(self):
        rc = _rc(rc_mode="cqp", qp=30)
        rc.frame_qp(FrameType.P, 1.0)
        rc.update(10**9)
        assert rc.frame_qp(FrameType.P, 1.0) == 30


class TestCrf:
    def test_base_follows_crf(self):
        assert _rc(rc_mode="crf", crf=18).frame_qp(FrameType.P, 1.0) == 18
        assert _rc(rc_mode="crf", crf=40).frame_qp(FrameType.P, 1.0) == 40

    def test_i_frames_get_lower_qp(self):
        rc = _rc(rc_mode="crf", crf=23)
        assert rc.frame_qp(FrameType.I, 1.0) < rc.frame_qp(FrameType.P, 1.0)


class TestAbr:
    def test_overshoot_raises_qp(self):
        rc = _rc(rc_mode="abr", bitrate_kbps=100.0)
        q0 = rc.frame_qp(FrameType.P, 1.0)
        for _ in range(5):
            rc.update(10**6)  # massively over budget
        assert rc.frame_qp(FrameType.P, 1.0) > q0

    def test_undershoot_lowers_qp(self):
        rc = _rc(rc_mode="abr", bitrate_kbps=10000.0)
        q0 = rc.frame_qp(FrameType.P, 1.0)
        for _ in range(5):
            rc.update(10)  # way under budget
        assert rc.frame_qp(FrameType.P, 1.0) < q0

    def test_qp_stays_in_range(self):
        rc = _rc(rc_mode="abr", bitrate_kbps=1.0)
        for _ in range(20):
            rc.update(10**7)
        assert 0 <= rc.frame_qp(FrameType.P, 1.0) <= 51

    def test_achieved_bitrate_tracks(self):
        rc = _rc(rc_mode="abr", bitrate_kbps=100.0)
        rc.frame_qp(FrameType.P, 1.0)
        rc.update(100_000)  # 100k bits in 1/30 s = 3000 kbps
        assert rc.achieved_bitrate_kbps == pytest.approx(3000.0)


class TestTwoPass:
    def test_requires_first_pass(self):
        with pytest.raises(ValueError, match="requires FirstPassStats"):
            RateController(
                EncoderOptions(rc_mode="2pass-abr"), fps=30, n_mbs_per_frame=4
            )

    def test_complex_frames_get_lower_qp(self):
        rc = _rc(rc_mode="2pass-abr", bitrate_kbps=1000.0)
        q_simple = rc.frame_qp(FrameType.P, 1.0)  # cost 1000 (below mean)
        rc.update(1000)
        q_complex = rc.frame_qp(FrameType.P, 1.0)  # cost 4000 (above mean)
        assert q_complex < q_simple


class TestCbrMacroblockLevel:
    def test_mb_qp_rises_when_over_budget(self):
        rc = _rc(rc_mode="cbr", bitrate_kbps=100.0)
        base = rc.frame_qp(FrameType.P, 1.0)
        before = rc.mb_qp(base, 10.0, 10.0)
        rc.note_mb_bits(10**6)  # blow the frame budget immediately
        after = rc.mb_qp(base, 10.0, 10.0)
        assert after > before

    def test_other_modes_ignore_mb_budget(self):
        rc = _rc(rc_mode="crf", crf=23, aq_mode=0)
        base = rc.frame_qp(FrameType.P, 1.0)
        rc.note_mb_bits(10**6)
        assert rc.mb_qp(base, 10.0, 10.0) == base


class TestVbv:
    def test_pressure_raises_qp_when_buffer_full(self):
        rc = _rc(
            rc_mode="vbv", crf=23,
            vbv_maxrate_kbps=100.0, vbv_bufsize_kbits=10.0,
        )
        q0 = rc.frame_qp(FrameType.P, 1.0)
        for _ in range(10):
            rc.update(50_000)  # far above maxrate per frame
        assert rc.frame_qp(FrameType.P, 1.0) > q0

    def test_disabled_without_buffer_params(self):
        rc = _rc(rc_mode="vbv", crf=23)
        q0 = rc.frame_qp(FrameType.P, 1.0)
        rc.update(10**7)
        assert rc.frame_qp(FrameType.P, 1.0) == q0


class TestAdaptiveQuant:
    def test_flat_blocks_get_lower_qp(self):
        rc = _rc(rc_mode="crf", crf=23, aq_mode=1)
        base = rc.frame_qp(FrameType.P, 1.0)
        flat = rc.mb_qp(base, mb_variance=1.0, mean_variance=100.0)
        busy = rc.mb_qp(base, mb_variance=10000.0, mean_variance=100.0)
        assert flat < base <= busy + 1

    def test_aq_off_keeps_base(self):
        rc = _rc(rc_mode="crf", crf=23, aq_mode=0)
        base = rc.frame_qp(FrameType.P, 1.0)
        assert rc.mb_qp(base, 1.0, 100.0) == base

    def test_mb_qp_in_range(self):
        rc = _rc(rc_mode="crf", crf=1, aq_mode=1)
        base = rc.frame_qp(FrameType.I, 1.0)
        assert 0 <= rc.mb_qp(base, 0.001, 1e6) <= 51
