"""Unit tests for repro.codec.deblock."""

import numpy as np
import pytest

from repro.codec.deblock import deblock_plane, deblock_thresholds


class TestThresholds:
    def test_grow_with_qp(self):
        a_lo, b_lo = deblock_thresholds(10)
        a_hi, b_hi = deblock_thresholds(40)
        assert a_hi > a_lo
        assert b_hi > b_lo

    def test_nonnegative(self):
        for qp in (0, 5, 23, 51):
            alpha, beta = deblock_thresholds(qp)
            assert alpha >= 0 and beta >= 0

    def test_offset_shifts(self):
        base = deblock_thresholds(30, offset=0)
        shifted = deblock_thresholds(30, offset=6)
        assert shifted[0] > base[0]

    def test_qp_validated(self):
        with pytest.raises(ValueError):
            deblock_thresholds(60)


class TestDeblockPlane:
    def _blocky(self):
        """A plane with small 4-aligned steps (coding artifacts)."""
        plane = np.full((32, 32), 100, dtype=np.uint8)
        plane[:, 4:8] = 104
        plane[:, 8:12] = 100
        return plane

    def test_smooths_artifact_edges(self):
        plane = self._blocky()
        out, _ = deblock_plane(plane, qp=30)
        # The step at column 4 must shrink.
        before = abs(int(plane[0, 4]) - int(plane[0, 3]))
        after = abs(int(out[0, 4]) - int(out[0, 3]))
        assert after < before

    def test_preserves_real_edges(self):
        plane = np.full((32, 32), 20, dtype=np.uint8)
        plane[:, 16:] = 220  # a huge step is real content, not an artifact
        out, _ = deblock_plane(plane, qp=23)
        assert out[0, 15] == 20 and out[0, 16] == 220

    def test_flat_plane_unchanged(self):
        plane = np.full((32, 32), 77, dtype=np.uint8)
        out, _ = deblock_plane(plane, qp=30)
        assert np.array_equal(out, plane)

    def test_higher_qp_filters_more(self):
        plane = np.full((32, 32), 100, dtype=np.uint8)
        plane[:, 8:] = 112  # medium step at a block boundary
        out_lo, _ = deblock_plane(plane, qp=5)
        out_hi, _ = deblock_plane(plane, qp=45)
        diff_lo = np.abs(out_lo.astype(int) - plane.astype(int)).sum()
        diff_hi = np.abs(out_hi.astype(int) - plane.astype(int)).sum()
        assert diff_hi > diff_lo

    def test_edge_count_positive(self):
        _, n_edges = deblock_plane(self._blocky(), qp=23)
        assert n_edges > 0

    def test_output_dtype(self):
        out, _ = deblock_plane(self._blocky(), qp=23)
        assert out.dtype == np.uint8
