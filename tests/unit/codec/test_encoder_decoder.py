"""Unit tests for repro.codec.encoder and repro.codec.decoder."""

import numpy as np
import pytest

from repro.codec.decoder import decode
from repro.codec.encoder import EncodeResult, Encoder, LoopOptimizations, encode
from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType, MBMode


def _roundtrip_exact(result: EncodeResult, video):
    decoded = decode(result.stream.bitstream)
    recon = np.stack(
        [
            f.recon[: video.height, : video.width]
            for f in result.stream.frames_in_display_order()
        ]
    )
    got = np.stack([f.luma for f in decoded.video])
    return np.array_equal(recon, got)


class TestEncodeBasics:
    def test_produces_result(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        assert result.stream.n_frames == len(tiny_video)
        assert result.total_bits > 0
        assert result.bitrate_kbps > 0
        assert 15 < result.psnr_db <= 100

    def test_first_frame_is_idr(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        display = result.stream.frames_in_display_order()
        assert display[0].frame_type is FrameType.I

    def test_deterministic(self, tiny_video, default_options):
        a = encode(tiny_video, default_options)
        b = encode(tiny_video, default_options)
        assert a.stream.bitstream == b.stream.bitstream

    def test_default_options_used_when_none(self, tiny_video):
        result = encode(tiny_video)
        assert result.options.crf == 23

    def test_frame_stats_populated(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        assert len(result.frame_stats) == len(tiny_video)
        for stats in result.frame_stats:
            total = stats.skip_mbs + stats.intra_mbs + stats.inter_mbs
            assert total == result.stream.frames[0].mb_count


class TestQualityKnobs:
    def test_lower_crf_higher_quality_and_bitrate(self, tiny_video):
        lo = encode(tiny_video, EncoderOptions(crf=8, refs=1, bframes=0))
        hi = encode(tiny_video, EncoderOptions(crf=45, refs=1, bframes=0))
        assert lo.psnr_db > hi.psnr_db
        assert lo.bitrate_kbps > hi.bitrate_kbps

    def test_crf_0_near_lossless(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=0, refs=1, bframes=0))
        assert result.psnr_db > 45

    def test_static_video_mostly_skips(self, static_video):
        result = encode(static_video, EncoderOptions(crf=30, refs=1, bframes=0))
        p_frames = [s for s in result.frame_stats if s.frame_type is FrameType.P]
        assert p_frames
        assert all(s.skip_mbs == s.skip_mbs + s.inter_mbs - s.inter_mbs for s in p_frames)
        total_skip = sum(s.skip_mbs for s in p_frames)
        total_mb = len(p_frames) * result.stream.frames[0].mb_count
        assert total_skip / total_mb > 0.8

    def test_busy_video_needs_more_bits(self, static_video, busy_video):
        opts = EncoderOptions(crf=23, refs=1, bframes=0)
        calm = encode(static_video, opts)
        busy = encode(busy_video, opts)
        assert busy.bitrate_kbps > calm.bitrate_kbps * 2


class TestModesExercised:
    def test_b_frames_appear_with_bframes(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=23, bframes=3, b_adapt=0, scenecut=0))
        types = {f.frame_type for f in result.stream.frames}
        assert FrameType.B in types

    def test_no_b_frames_when_disabled(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=23, bframes=0))
        types = {f.frame_type for f in result.stream.frames}
        assert FrameType.B not in types

    def test_intra_modes_on_idr(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        idr = result.stream.frames_in_display_order()[0]
        assert all(mb.mode.is_intra for mb in idr.macroblocks)

    def test_inter_modes_on_p_frames(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=23, refs=1, bframes=0))
        p = result.stream.frames_in_display_order()[1]
        assert any(
            mb.mode.is_inter or mb.mode is MBMode.SKIP for mb in p.macroblocks
        )


class TestTwoPass:
    def test_two_pass_collects_first_pass(self, tiny_video):
        result = encode(
            tiny_video,
            EncoderOptions(rc_mode="2pass-abr", bitrate_kbps=300.0, refs=1, bframes=0),
        )
        assert result.first_pass is not None
        assert len(result.first_pass.frame_costs) == len(tiny_video)

    def test_two_pass_hits_rate_better_than_wild_guess(self, tiny_video):
        target = 400.0
        result = encode(
            tiny_video,
            EncoderOptions(rc_mode="2pass-abr", bitrate_kbps=target, refs=1, bframes=0),
        )
        # Loose envelope: within 4x of target on a 5-frame clip.
        assert target / 4 < result.bitrate_kbps < target * 4


class TestDecoderRoundTrip:
    def test_exact_reconstruction_default(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        assert _roundtrip_exact(result, tiny_video)

    def test_exact_with_bframes(self, tiny_video):
        opts = EncoderOptions(crf=20, refs=2, bframes=2, b_adapt=0, scenecut=0)
        result = encode(tiny_video, opts)
        assert _roundtrip_exact(result, tiny_video)

    def test_exact_without_deblock(self, tiny_video):
        opts = EncoderOptions(crf=28, refs=1, deblock=(0, 0), bframes=0)
        result = encode(tiny_video, opts)
        assert _roundtrip_exact(result, tiny_video)

    def test_exact_with_esa_and_partitions(self, tiny_video):
        opts = EncoderOptions(
            crf=23, refs=1, me="esa", merange=8, partitions="all", bframes=0
        )
        result = encode(tiny_video, opts)
        assert _roundtrip_exact(result, tiny_video)

    def test_decoder_metadata(self, tiny_video, default_options):
        result = encode(tiny_video, default_options)
        decoded = decode(result.stream.bitstream)
        assert decoded.video.fps == pytest.approx(tiny_video.fps)
        assert len(decoded.frame_types) == len(tiny_video)
        assert decoded.frame_types[0] is FrameType.I

    def test_corrupt_header_rejected(self):
        with pytest.raises((ValueError, EOFError)):
            decode(b"\x00\x00\x00")


class TestLoopOptimizations:
    def test_flags_do_not_change_output(self, tiny_video, default_options):
        plain = encode(tiny_video, default_options)
        tiled = encode(
            tiny_video,
            default_options,
            loop_opts=LoopOptimizations(
                tile_transform=True, fuse_deblock=True, interchange_interp=True
            ),
        )
        # Loop transforms are semantics-preserving: identical bitstream.
        assert plain.stream.bitstream == tiled.stream.bitstream

    def test_any_enabled_property(self):
        assert not LoopOptimizations().any_enabled
        assert LoopOptimizations(fuse_deblock=True).any_enabled


class TestEncoderReuse:
    def test_encoder_instance_reusable(self, tiny_video, default_options):
        enc = Encoder(default_options)
        a = enc.encode(tiny_video)
        b = enc.encode(tiny_video)
        assert a.stream.bitstream == b.stream.bitstream
