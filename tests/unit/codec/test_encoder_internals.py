"""Unit tests for encoder-internal behaviours (MV prediction, skip
detection, adaptive quantization, reference management)."""

import numpy as np
import pytest

from repro.codec.encoder import Encoder, encode
from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType, MBMode, MotionVector
from repro.video.frame import FrameSequence
from repro.video.synthetic import SceneSpec, generate_scene


class TestMvPrediction:
    def _ctx(self, grid):
        class Ctx:
            mv_grid = grid

        return Ctx()

    def test_no_neighbors_zero(self):
        grid = [[None, None], [None, None]]
        mv = Encoder._predict_mv(self._ctx(grid), 0, 0)
        assert (mv.dx, mv.dy) == (0, 0)

    def test_single_neighbor_copied(self):
        grid = [[MotionVector(8, -4), None], [None, None]]
        mv = Encoder._predict_mv(self._ctx(grid), 0, 1)
        assert (mv.dx, mv.dy) == (8, -4)

    def test_median_of_three(self):
        # left=(0,0), top=(8,8), topright=(16,16) -> median (8,8).
        grid = [
            [None, MotionVector(8, 8), MotionVector(16, 16)],
            [MotionVector(0, 0), None, None],
        ]
        mv = Encoder._predict_mv(self._ctx(grid), 1, 1)
        assert (mv.dx, mv.dy) == (8, 8)

    def test_intra_neighbors_skipped(self):
        # Intra macroblocks leave None in the grid and must not count.
        grid = [
            [None, None, None],
            [MotionVector(4, 4), None, None],
        ]
        mv = Encoder._predict_mv(self._ctx(grid), 1, 1)
        assert (mv.dx, mv.dy) == (4, 4)


class TestSkipDetection:
    def _static_clip(self, n=4):
        spec = SceneSpec(
            width=48, height=32, n_frames=1, seed=12,
            texture_detail=0.4, noise_level=0.0, name="skiptest",
        )
        frame = generate_scene(spec).frames[0]
        return FrameSequence(frames=[frame] * n, fps=30, name="static")

    def test_static_frames_all_skip(self):
        result = encode(
            self._static_clip(), EncoderOptions(crf=26, refs=1, bframes=0)
        )
        for coded in result.stream.frames_in_display_order()[1:]:
            modes = {mb.mode for mb in coded.macroblocks}
            assert modes == {MBMode.SKIP}

    def test_skip_frames_nearly_free(self):
        result = encode(
            self._static_clip(), EncoderOptions(crf=26, refs=1, bframes=0)
        )
        frames = result.stream.frames_in_display_order()
        assert frames[1].bits < frames[0].bits / 20

    def test_higher_crf_more_skips(self, tiny_video):
        lo = encode(tiny_video, EncoderOptions(crf=10, refs=1, bframes=0))
        hi = encode(tiny_video, EncoderOptions(crf=45, refs=1, bframes=0))
        skips = lambda r: sum(s.skip_mbs for s in r.frame_stats)
        assert skips(hi) >= skips(lo)


class TestAdaptiveQuantInEncoder:
    def test_aq_varies_mb_qp(self):
        # A frame with one flat half and one busy half.
        flat = np.full((32, 24), 90, dtype=np.uint8)
        busy = np.random.default_rng(5).integers(0, 256, (32, 24)).astype(np.uint8)
        frame = np.concatenate([flat, busy], axis=1)
        video = FrameSequence.from_lumas([frame], fps=30)
        result = encode(video, EncoderOptions(crf=23, aq_mode=1, bframes=0))
        qps = [mb.qp for mb in result.stream.frames[0].macroblocks]
        assert len(set(qps)) > 1  # per-MB adaptation happened
        # Flat-half MBs (first columns) get lower QP than busy-half MBs.
        n_mb_x = 48 // 16
        flat_qps = [mb.qp for mb in result.stream.frames[0].macroblocks
                    if mb.mb_x == 0]
        busy_qps = [mb.qp for mb in result.stream.frames[0].macroblocks
                    if mb.mb_x == n_mb_x - 1]
        assert np.mean(flat_qps) < np.mean(busy_qps)

    def test_aq_off_uniform_qp(self):
        frame = np.random.default_rng(6).integers(0, 256, (32, 48)).astype(np.uint8)
        video = FrameSequence.from_lumas([frame], fps=30)
        result = encode(video, EncoderOptions(crf=23, aq_mode=0, bframes=0))
        qps = {mb.qp for mb in result.stream.frames[0].macroblocks}
        assert len(qps) == 1


class TestReferenceManagement:
    def test_ref_indices_within_refs(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=20, refs=2, bframes=0))
        for frame in result.stream.frames:
            for mb in frame.macroblocks:
                for mv in mb.mvs:
                    assert 0 <= mv.ref < 2

    def test_b_frames_not_referenced(self, tiny_video):
        """B frames never enter the DPB: later frames' ref indices address
        only anchors, so decode must stay exact even with many Bs."""
        from repro.codec.decoder import decode

        opts = EncoderOptions(crf=24, refs=3, bframes=3, b_adapt=0, scenecut=0)
        result = encode(tiny_video, opts)
        decoded = decode(result.stream.bitstream)
        recon = np.stack(
            [f.recon[: tiny_video.height, : tiny_video.width]
             for f in result.stream.frames_in_display_order()]
        )
        assert np.array_equal(
            recon, np.stack([f.luma for f in decoded.video])
        )

    def test_frame_types_recorded_in_stats(self, tiny_video):
        result = encode(
            tiny_video, EncoderOptions(crf=23, refs=1, bframes=2, b_adapt=0,
                                       scenecut=0)
        )
        stat_types = [s.frame_type for s in result.frame_stats]
        assert stat_types[0] is FrameType.I
        assert FrameType.B in stat_types
