"""Unit tests for repro.codec.types."""

import numpy as np

from repro.codec.types import (
    CodedFrame,
    CodedMacroblock,
    CodedStream,
    FrameType,
    MBMode,
    MotionVector,
)


class TestMBMode:
    def test_intra_classification(self):
        assert MBMode.INTRA_16X16.is_intra
        assert MBMode.INTRA_4X4.is_intra
        assert MBMode.INTRA_8X8.is_intra
        assert not MBMode.INTER_16X16.is_intra
        assert not MBMode.SKIP.is_intra

    def test_inter_classification(self):
        assert MBMode.INTER_16X16.is_inter
        assert MBMode.INTER_8X8.is_inter
        assert MBMode.BI.is_inter
        assert not MBMode.SKIP.is_inter
        assert not MBMode.INTRA_16X16.is_inter

    def test_skip_is_neither(self):
        assert not MBMode.SKIP.is_intra
        assert not MBMode.SKIP.is_inter


class TestMotionVector:
    def test_addition(self):
        mv = MotionVector(4, -8, 1) + MotionVector(2, 3)
        assert (mv.dx, mv.dy) == (6, -5)
        assert mv.ref == 1  # left operand's ref preserved

    def test_full_pel_floor_division(self):
        assert MotionVector(9, -9).full_pel == (2, -3)
        assert MotionVector(4, 8).full_pel == (1, 2)
        assert MotionVector(0, 0).full_pel == (0, 0)


class TestCodedRecords:
    def _mb(self, levels=None):
        coeffs = (
            levels
            if levels is not None
            else np.zeros((16, 4, 4), dtype=np.int32)
        )
        return CodedMacroblock(
            mb_x=0, mb_y=0, mode=MBMode.INTER_16X16, qp=23, coeffs=coeffs
        )

    def test_nonzero_coeffs(self):
        levels = np.zeros((16, 4, 4), dtype=np.int32)
        levels[0, 0, 0] = 3
        levels[5, 2, 1] = -1
        assert self._mb(levels).nonzero_coeffs == 2
        assert self._mb().nonzero_coeffs == 0

    def test_frame_mb_count(self):
        frame = CodedFrame(
            index=0,
            frame_type=FrameType.I,
            qp=23,
            macroblocks=[self._mb(), self._mb()],
            recon=np.zeros((16, 32), dtype=np.uint8),
        )
        assert frame.mb_count == 2


class TestCodedStream:
    def _stream(self):
        frames = [
            CodedFrame(
                index=i,
                frame_type=FrameType.P,
                qp=23,
                macroblocks=[],
                recon=np.zeros((16, 16), dtype=np.uint8),
                bits=100 * (i + 1),
            )
            for i in (2, 0, 1)  # decode order != display order
        ]
        return CodedStream(width=16, height=16, fps=30.0, frames=frames)

    def test_total_bits(self):
        assert self._stream().total_bits == 100 * (3 + 1 + 2)

    def test_display_order_sorting(self):
        ordered = self._stream().frames_in_display_order()
        assert [f.index for f in ordered] == [0, 1, 2]

    def test_n_frames(self):
        assert self._stream().n_frames == 3
