"""Unit tests for repro.codec.mbdecision."""

import numpy as np
import pytest

from repro.codec.entropy import se_bits, ue_bits
from repro.codec.mbdecision import (
    InterCandidate,
    choose_inter_ref,
    mv_bits,
    search_partitions,
)
from repro.codec.motion import PaddedReference
from repro.codec.options import EncoderOptions
from repro.codec.types import MBMode, MotionVector


def _scene(dy=2, dx=3, seed=0):
    rng = np.random.default_rng(seed)
    coarse = rng.random((13, 13)) * 255
    plane = np.kron(coarse, np.ones((8, 8)))[:96, :96].astype(np.uint8)
    ref = PaddedReference.from_plane(plane, pad=40)
    cur = ref.block(32 + dy, 32 + dx).copy()
    return cur, ref


class TestMvBits:
    def test_zero_residual_cheapest(self):
        pred = MotionVector(4, -8)
        same = MotionVector(4, -8, 0)
        far = MotionVector(40, -80, 0)
        assert mv_bits(same, pred) < mv_bits(far, pred)

    def test_matches_component_costs(self):
        mv = MotionVector(12, -4, 2)
        pred = MotionVector(4, 0)
        expected = se_bits(8) + se_bits(-4) + ue_bits(2)
        assert mv_bits(mv, pred) == expected


class TestChooseInterRef:
    def test_single_ref(self):
        cur, ref = _scene()
        options = EncoderOptions(crf=23, refs=1, me="hex", merange=8)
        best, ref_idx, points, _ = choose_inter_ref(
            cur, [ref], 32, 32, MotionVector(0, 0), options, 23
        )
        assert ref_idx == 0
        assert best.cost == 0.0
        assert points >= 1

    def test_prefers_better_reference(self):
        cur, good_ref = _scene(seed=1)
        # A second, unrelated reference plane.
        rng = np.random.default_rng(99)
        bad_plane = rng.integers(0, 256, (96, 96)).astype(np.uint8)
        bad_ref = PaddedReference.from_plane(bad_plane, pad=40)
        options = EncoderOptions(crf=23, refs=2, me="hex", merange=8)
        _best, ref_idx, _points, _ = choose_inter_ref(
            cur, [bad_ref, good_ref], 32, 32, MotionVector(0, 0), options, 23
        )
        assert ref_idx == 1  # found the matching reference despite penalty

    def test_more_refs_more_points(self):
        cur, ref = _scene(seed=2)
        options = EncoderOptions(crf=23, refs=1, me="hex", merange=8)
        _b1, _r1, p1, _ = choose_inter_ref(
            cur, [ref], 32, 32, MotionVector(0, 0), options, 23
        )
        _b2, _r2, p2, _ = choose_inter_ref(
            cur, [ref, ref, ref], 32, 32, MotionVector(0, 0), options, 23
        )
        assert p2 > p1  # "refs expands the encoding search space"


class TestSearchPartitions:
    def test_disallowed_by_options(self):
        cur, ref = _scene()
        opts = EncoderOptions(partitions="none")
        assert search_partitions(
            cur, ref, 32, 32, MotionVector(0, 0), MotionVector(0, 0), opts, size=8
        ) is None

    def test_p8x8_produces_four_mvs(self):
        cur, ref = _scene(seed=3)
        opts = EncoderOptions(partitions="-p4x4")
        cand = search_partitions(
            cur, ref, 32, 32, MotionVector(8, 12), MotionVector(0, 0), opts, size=8
        )
        assert cand is not None
        assert cand.mode is MBMode.INTER_8X8
        assert len(cand.mvs) == 4
        assert cand.prediction.shape == (16, 16)

    def test_p4x4_requires_all_partitions(self):
        cur, ref = _scene()
        assert search_partitions(
            cur, ref, 32, 32, MotionVector(0, 0), MotionVector(0, 0),
            EncoderOptions(partitions="-p4x4"), size=4,
        ) is None
        cand = search_partitions(
            cur, ref, 32, 32, MotionVector(0, 0), MotionVector(0, 0),
            EncoderOptions(partitions="all"), size=4,
        )
        assert cand is not None
        assert cand.mode is MBMode.INTER_4X4
        assert len(cand.mvs) == 16

    def test_partitions_never_worse_than_parent_distortion(self):
        """Per-partition refinement starts at the parent MV, so the summed
        partition SAD cannot exceed the parent SAD at that MV."""
        cur, ref = _scene(dy=1, dx=1, seed=4)
        parent = MotionVector(0, 0)
        opts = EncoderOptions(partitions="all")
        cand = search_partitions(
            cur, ref, 32, 32, parent, MotionVector(0, 0), opts, size=8
        )
        assert cand is not None
        parent_sad = float(
            np.sum(np.abs(cur.astype(int) - ref.block(32, 32).astype(int)))
        )
        assert cand.distortion <= parent_sad + 1e-9


class TestInterCandidate:
    def test_rd_cost_monotone_in_rate(self):
        pred = np.zeros((16, 16))
        cheap = InterCandidate(
            MBMode.INTER_16X16, [MotionVector(0, 0)], pred, 100.0, 10, 1, []
        )
        pricey = InterCandidate(
            MBMode.INTER_16X16, [MotionVector(0, 0)], pred, 100.0, 50, 1, []
        )
        assert cheap.rd_cost(23) < pricey.rd_cost(23)
