"""Unit tests for repro.codec.transform."""

import numpy as np
import pytest

from repro.codec.transform import (
    ZIGZAG_4X4,
    blockify_16x16,
    forward_4x4,
    hadamard_sad,
    inverse_4x4,
    satd_4x4,
    unblockify_16x16,
)


class TestForwardInverse:
    def test_roundtrip_exact(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-255, 256, (8, 4, 4)).astype(np.float64)
        back = inverse_4x4(forward_4x4(blocks))
        assert np.allclose(back, blocks, atol=1e-9)

    def test_orthonormal_energy_preserved(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(0, 50, (5, 4, 4))
        coeffs = forward_4x4(blocks)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(blocks**2))

    def test_dc_of_constant_block(self):
        block = np.full((1, 4, 4), 10.0)
        coeffs = forward_4x4(block)
        # All energy in the DC position; DC = 4 * value for orthonormal T.
        assert coeffs[0, 0, 0] == pytest.approx(40.0)
        assert np.sum(np.abs(coeffs)) == pytest.approx(40.0)

    def test_accepts_single_block(self):
        out = forward_4x4(np.ones((4, 4)))
        assert out.shape == (1, 4, 4)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            forward_4x4(np.ones((3, 5, 5)))
        with pytest.raises(ValueError):
            inverse_4x4(np.ones((3, 3)))


class TestBlockify:
    def test_roundtrip(self):
        mb = np.arange(256).reshape(16, 16)
        assert np.array_equal(unblockify_16x16(blockify_16x16(mb)), mb)

    def test_raster_order(self):
        mb = np.zeros((16, 16))
        mb[0:4, 4:8] = 7  # second block in the top row
        blocks = blockify_16x16(mb)
        assert np.all(blocks[1] == 7)
        assert np.all(blocks[0] == 0)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            blockify_16x16(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            unblockify_16x16(np.zeros((4, 4, 4)))


class TestSatd:
    def test_zero_for_zero(self):
        assert satd_4x4(np.zeros((4, 4))) == 0.0

    def test_positive_for_nonzero(self):
        assert satd_4x4(np.ones((4, 4))) > 0

    def test_hadamard_sad_identical_blocks(self):
        a = np.random.default_rng(2).integers(0, 256, (16, 16)).astype(np.uint8)
        assert hadamard_sad(a, a) == 0.0

    def test_hadamard_sad_monotone_in_distortion(self):
        a = np.full((16, 16), 100, dtype=np.uint8)
        b = np.full((16, 16), 110, dtype=np.uint8)
        c = np.full((16, 16), 150, dtype=np.uint8)
        assert hadamard_sad(a, c) > hadamard_sad(a, b)

    def test_hadamard_sad_shape_check(self):
        with pytest.raises(ValueError):
            hadamard_sad(np.zeros((8, 8)), np.zeros((8, 8)))


class TestZigzag:
    def test_covers_all_positions_once(self):
        pairs = set(zip(ZIGZAG_4X4[0].tolist(), ZIGZAG_4X4[1].tolist()))
        assert len(pairs) == 16
        assert pairs == {(r, c) for r in range(4) for c in range(4)}

    def test_starts_at_dc(self):
        assert (ZIGZAG_4X4[0][0], ZIGZAG_4X4[1][0]) == (0, 0)

    def test_frequency_monotone_on_antidiagonals(self):
        # The sum r+c (frequency band) must be non-decreasing.
        sums = ZIGZAG_4X4[0] + ZIGZAG_4X4[1]
        assert np.all(np.diff(sums) >= -1)
        assert sums[-1] == 6
