"""Unit tests for repro.codec.entropy."""

import numpy as np
import pytest

from repro.codec.entropy import (
    BitReader,
    BitWriter,
    block_bits,
    decode_block,
    encode_block,
    read_se,
    read_ue,
    se_bits,
    ue_bits,
    write_se,
    write_ue,
)


class TestBitIO:
    def test_bit_roundtrip(self):
        w = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0, 4)
        assert w.getvalue() == bytes([0b10110000])

    def test_bit_count_tracks(self):
        w = BitWriter()
        w.write_bits(0, 13)
        assert w.bit_count == 13

    def test_reader_eof(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)


class TestExpGolomb:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 2**16])
    def test_ue_roundtrip(self, value):
        w = BitWriter()
        write_ue(w, value)
        assert read_ue(BitReader(w.getvalue())) == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 63, -64, 1000, -1000])
    def test_se_roundtrip(self, value):
        w = BitWriter()
        write_se(w, value)
        assert read_se(BitReader(w.getvalue())) == value

    def test_ue_rejects_negative(self):
        with pytest.raises(ValueError):
            write_ue(BitWriter(), -1)

    def test_ue_bits_matches_actual(self):
        for v in (0, 1, 5, 31, 32, 255):
            w = BitWriter()
            write_ue(w, v)
            assert w.bit_count == ue_bits(v)

    def test_se_bits_matches_actual(self):
        for v in (-17, -1, 0, 1, 2, 100):
            w = BitWriter()
            write_se(w, v)
            assert w.bit_count == se_bits(v)

    def test_ue_code_lengths(self):
        assert ue_bits(0) == 1  # '1'
        assert ue_bits(1) == 3  # '010'
        assert ue_bits(2) == 3
        assert ue_bits(3) == 5

    def test_smaller_values_never_longer(self):
        lengths = [ue_bits(v) for v in range(64)]
        assert lengths == sorted(lengths)

    def test_malformed_stream_rejected(self):
        # 80 zero bits: leading-zero run exceeds the sanity bound.
        r = BitReader(b"\x00" * 10)
        with pytest.raises(ValueError, match="malformed"):
            read_ue(r)

    def test_sequence_roundtrip(self):
        w = BitWriter()
        values = [(write_ue, 7), (write_se, -3), (write_ue, 0), (write_se, 12)]
        for fn, v in values:
            fn(w, v)
        r = BitReader(w.getvalue())
        assert read_ue(r) == 7
        assert read_se(r) == -3
        assert read_ue(r) == 0
        assert read_se(r) == 12


class TestBlockCoding:
    def _roundtrip(self, block):
        w = BitWriter()
        encode_block(w, block)
        return decode_block(BitReader(w.getvalue()))

    def test_zero_block(self):
        block = np.zeros((4, 4), dtype=np.int32)
        assert np.array_equal(self._roundtrip(block), block)

    def test_dense_block(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-30, 31, (4, 4)).astype(np.int32)
        assert np.array_equal(self._roundtrip(block), block)

    def test_sparse_block(self):
        block = np.zeros((4, 4), dtype=np.int32)
        block[0, 0] = 5
        block[3, 3] = -2
        assert np.array_equal(self._roundtrip(block), block)

    def test_zero_block_costs_one_bit(self):
        w = BitWriter()
        bits = encode_block(w, np.zeros((4, 4), dtype=np.int32))
        assert bits == 1  # ue(0)

    def test_block_bits_matches_encoder(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            block = (rng.integers(0, 4, (4, 4)) * rng.integers(-8, 9, (4, 4))).astype(
                np.int32
            )
            w = BitWriter()
            actual = encode_block(w, block)
            assert block_bits(block) == actual

    def test_sparser_blocks_cheaper(self):
        dense = np.full((4, 4), 3, dtype=np.int32)
        sparse = np.zeros((4, 4), dtype=np.int32)
        sparse[0, 0] = 3
        assert block_bits(sparse) < block_bits(dense)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            encode_block(BitWriter(), np.zeros((8, 8), dtype=np.int32))

    def test_corrupt_nnz_rejected(self):
        w = BitWriter()
        write_ue(w, 17)  # claims 17 nonzero coefficients in a 16-coeff block
        with pytest.raises(ValueError, match="corrupt"):
            decode_block(BitReader(w.getvalue()))

    def test_corrupt_run_overflow_rejected(self):
        w = BitWriter()
        write_ue(w, 2)
        write_ue(w, 15)  # first coeff at the last position
        write_se(w, 1)
        write_ue(w, 0)  # second coeff would overflow
        write_se(w, 1)
        with pytest.raises(ValueError, match="overflow"):
            decode_block(BitReader(w.getvalue()))
