"""Unit tests for repro.codec.motion."""

import numpy as np
import pytest

from repro.codec.motion import (
    MotionSearchResult,
    PaddedReference,
    fetch_prediction,
    motion_search,
    subpel_refine,
)


def _ref_with_block(block, at_y, at_x, h=96, w=96, fill=0):
    plane = np.full((h, w), fill, dtype=np.uint8)
    plane[at_y : at_y + 16, at_x : at_x + 16] = block
    return PaddedReference.from_plane(plane, pad=40)


def _textured_block(seed=0):
    return np.random.default_rng(seed).integers(0, 256, (16, 16)).astype(np.uint8)


class TestPaddedReference:
    def test_block_fetch_matches_plane(self):
        plane = np.arange(32 * 32, dtype=np.uint8).reshape(32, 32)
        ref = PaddedReference.from_plane(plane, pad=8)
        assert np.array_equal(ref.block(4, 4), plane[4:20, 4:20])

    def test_negative_coordinates_edge_padded(self):
        plane = np.full((32, 32), 50, dtype=np.uint8)
        plane[0, :] = 99
        ref = PaddedReference.from_plane(plane, pad=8)
        block = ref.block(-4, 0)
        assert np.all(block[:5, :] == 99)  # replicated top edge

    def test_half_pel_interpolates(self):
        plane = np.zeros((32, 32), dtype=np.uint8)
        plane[:, 16:] = 100
        ref = PaddedReference.from_plane(plane, pad=8)
        # Fetch at x=15.5: the column straddling the step edge averages.
        block = ref.half_pel_block(0, 15 * 4 + 2, size=4)
        assert block[0, 0] == pytest.approx(50.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            PaddedReference.from_plane(np.zeros((4, 4, 4), np.uint8), pad=4)


def _translated_scene(dy, dx, seed=0):
    """A smooth textured plane and the block it shows at (32+dy, 32+dx).

    Smoothness gives the SAD landscape a gradient, which is what local
    pattern searches (dia/hex/umh) rely on — exactly like real video.
    """
    rng = np.random.default_rng(seed)
    coarse = rng.random((13, 13)) * 255
    up = np.kron(coarse, np.ones((8, 8)))[:96, :96]
    plane = up.astype(np.uint8)
    ref = PaddedReference.from_plane(plane, pad=40)
    cur = ref.block(32 + dy, 32 + dx).copy()
    return cur, ref


class TestIntegerSearch:
    @pytest.mark.parametrize("method", ["dia", "hex", "umh", "esa"])
    def test_finds_exact_match_nearby(self, method):
        cur, ref = _translated_scene(dy=4, dx=6)
        result = motion_search(cur, ref, 32, 32, method=method, merange=16)
        assert result.cost == 0.0
        assert (result.mv_x // 4, result.mv_y // 4) == (6, 4)

    def test_esa_finds_distant_match_patterns_may_miss(self):
        block = _textured_block(1)
        ref = _ref_with_block(block, at_y=32 + 14, at_x=32 - 13, fill=128)
        result = motion_search(block, ref, 32, 32, method="esa", merange=16)
        assert result.cost == 0.0
        assert (result.mv_x // 4, result.mv_y // 4) == (-13, 14)

    def test_tesa_runs_and_finds_match(self):
        block = _textured_block(2)
        ref = _ref_with_block(block, at_y=34, at_x=34, fill=100)
        result = motion_search(block, ref, 32, 32, method="tesa", merange=8)
        assert (result.mv_x // 4, result.mv_y // 4) == (2, 2)

    def test_esa_evaluates_full_window(self):
        block = _textured_block(3)
        ref = _ref_with_block(block, at_y=32, at_x=32)
        result = motion_search(block, ref, 32, 32, method="esa", merange=8)
        assert result.n_points >= (2 * 8 + 1) ** 2

    def test_pattern_search_cheaper_than_esa(self):
        block = _textured_block(4)
        ref = _ref_with_block(block, at_y=33, at_x=33)
        dia = motion_search(block, ref, 32, 32, method="dia", merange=16)
        esa = motion_search(block, ref, 32, 32, method="esa", merange=16)
        assert dia.n_points < esa.n_points / 5

    def test_umh_evaluates_more_than_hex(self):
        block = _textured_block(5)
        ref = _ref_with_block(block, at_y=40, at_x=40, fill=77)
        hex_r = motion_search(block, ref, 32, 32, method="hex", merange=16)
        umh_r = motion_search(block, ref, 32, 32, method="umh", merange=16)
        assert umh_r.n_points > hex_r.n_points

    def test_pred_mv_seeds_search(self):
        block = _textured_block(6)
        ref = _ref_with_block(block, at_y=32 + 12, at_x=32 + 12, fill=128)
        seeded = motion_search(
            block, ref, 32, 32, method="dia", merange=16, pred_mv=(12, 12)
        )
        assert seeded.cost == 0.0

    def test_merange_clamps(self):
        block = _textured_block(7)
        ref = _ref_with_block(block, at_y=32, at_x=32)
        result = motion_search(
            block, ref, 32, 32, method="hex", merange=4, pred_mv=(100, -100)
        )
        assert abs(result.mv_x // 4) <= 4 and abs(result.mv_y // 4) <= 4

    def test_unknown_method(self):
        block = _textured_block()
        ref = _ref_with_block(block, 32, 32)
        with pytest.raises(ValueError, match="unknown"):
            motion_search(block, ref, 32, 32, method="spiral")

    def test_improvements_tracked(self):
        block = _textured_block(8)
        ref = _ref_with_block(block, at_y=35, at_x=35, fill=60)
        result = motion_search(block, ref, 32, 32, method="hex", merange=16)
        assert len(result.improvements) == len(result.positions)
        assert result.improvements[0] is True  # first candidate always "best"

    def test_wrong_block_shape(self):
        ref = _ref_with_block(_textured_block(), 32, 32)
        with pytest.raises(ValueError):
            motion_search(np.zeros((8, 8), np.uint8), ref, 32, 32)


class TestSubpelRefine:
    def _setup(self):
        # A smooth gradient makes fractional positions strictly better.
        y, x = np.mgrid[0:96, 0:96]
        plane = ((x * 2.0) % 256).astype(np.uint8)
        ref = PaddedReference.from_plane(plane, pad=40)
        cur = ref.half_pel_block(32 * 4 + 2, 32 * 4 + 2)  # true offset (0.5, 0.5)
        cur = np.clip(np.round(cur), 0, 255).astype(np.uint8)
        return cur, ref

    def test_subme_below_two_is_noop(self):
        cur, ref = self._setup()
        start = MotionSearchResult(0, 0, 100.0, 1)
        out = subpel_refine(cur, ref, 32, 32, start, subme=1)
        assert out is start

    def test_half_pel_improves_cost(self):
        cur, ref = self._setup()
        full = motion_search(cur, ref, 32, 32, method="hex", merange=4)
        refined = subpel_refine(cur, ref, 32, 32, full, subme=4)
        assert refined.cost <= full.cost
        # The chosen MV should have a fractional component.
        assert refined.mv_x % 4 != 0 or refined.mv_y % 4 != 0

    def test_higher_subme_more_evaluations(self):
        cur, ref = self._setup()
        full = motion_search(cur, ref, 32, 32, method="hex", merange=4)
        r2 = subpel_refine(cur, ref, 32, 32, full, subme=2)
        r4 = subpel_refine(cur, ref, 32, 32, full, subme=4)
        assert r4.n_points >= r2.n_points


class TestFetchPrediction:
    def test_full_pel_matches_block(self):
        plane = np.arange(64 * 64, dtype=np.uint64).astype(np.uint8).reshape(64, 64)
        ref = PaddedReference.from_plane(plane, pad=24)
        pred = fetch_prediction(ref, 16, 16, 8, -4)
        assert np.array_equal(pred, ref.block(15, 18).astype(np.float64))

    def test_subpel_uses_interpolation(self):
        plane = np.zeros((64, 64), dtype=np.uint8)
        plane[:, 32:] = 100
        ref = PaddedReference.from_plane(plane, pad=24)
        pred = fetch_prediction(ref, 16, 28, 2, 0)  # x = 28.5
        assert 0 < pred[0, 3] < 100  # interpolated at the edge
