"""Unit tests for repro.codec.options and repro.codec.presets."""

import pytest

from repro.codec.options import EncoderOptions, ME_METHODS, RC_MODES
from repro.codec.presets import PRESET_NAMES, PRESET_REFS, PRESETS, preset_options


class TestEncoderOptions:
    def test_defaults_match_paper(self):
        opts = EncoderOptions()
        assert opts.crf == 23
        assert opts.refs == 3
        assert opts.preset_name == "medium"

    @pytest.mark.parametrize("field,value", [
        ("crf", 52), ("crf", -1), ("refs", 0), ("refs", 17),
        ("subme", 12), ("trellis", 3), ("merange", 2),
        ("bframes", 17), ("scenecut", 101), ("aq_mode", 2),
    ])
    def test_range_validation(self, field, value):
        with pytest.raises(ValueError):
            EncoderOptions(**{field: value})

    def test_invalid_me_method(self):
        with pytest.raises(ValueError):
            EncoderOptions(me="zigzag")

    def test_invalid_rc_mode(self):
        with pytest.raises(ValueError):
            EncoderOptions(rc_mode="vbr")

    def test_bitrate_required_for_abr(self):
        with pytest.raises(ValueError):
            EncoderOptions(rc_mode="abr", bitrate_kbps=0)

    def test_with_updates_validates(self):
        opts = EncoderOptions()
        new = opts.with_updates(crf=40)
        assert new.crf == 40 and opts.crf == 23
        with pytest.raises(ValueError):
            opts.with_updates(crf=99)

    def test_deblock_enabled_flag(self):
        assert EncoderOptions(deblock=(1, 0)).deblock_enabled
        assert not EncoderOptions(deblock=(0, 0)).deblock_enabled

    @pytest.mark.parametrize("partitions,expected", [
        ("none", ()),
        ("i8x8,i4x4", ("i4x4",)),
        ("-p4x4", ("i4x4", "p8x8")),
        ("all", ("i4x4", "p8x8", "p4x4")),
    ])
    def test_partition_candidates(self, partitions, expected):
        assert EncoderOptions(partitions=partitions).partition_candidates == expected

    def test_describe_mentions_key_params(self):
        desc = EncoderOptions(crf=30, refs=5).describe()
        assert "crf=30" in desc and "refs=5" in desc

    def test_constants(self):
        assert len(RC_MODES) == 6  # the paper's six rate-control modes
        assert set(ME_METHODS) == {"dia", "hex", "umh", "esa", "tesa"}


class TestPresets:
    def test_ten_presets(self):
        assert len(PRESET_NAMES) == 10
        assert PRESET_NAMES[0] == "ultrafast"
        assert PRESET_NAMES[-1] == "placebo"

    def test_table_ii_spot_values(self):
        assert PRESETS["ultrafast"]["me"] == "dia"
        assert PRESETS["ultrafast"]["scenecut"] == 0
        assert PRESETS["ultrafast"]["bframes"] == 0
        assert PRESETS["medium"]["subme"] == 7
        assert PRESETS["medium"]["trellis"] == 1
        assert PRESETS["placebo"]["me"] == "tesa"
        assert PRESETS["placebo"]["bframes"] == 16
        assert PRESETS["veryslow"]["merange"] == 24
        assert PRESETS["slower"]["b_adapt"] == 2

    def test_table_ii_refs_row(self):
        assert PRESET_REFS == {
            "ultrafast": 1, "superfast": 1, "veryfast": 1, "faster": 2,
            "fast": 2, "medium": 3, "slow": 5, "slower": 8,
            "veryslow": 16, "placebo": 16,
        }

    def test_subme_increases_monotonically(self):
        submes = [PRESETS[p]["subme"] for p in PRESET_NAMES]
        assert submes == sorted(submes)

    def test_preset_options_builds_valid(self):
        for name in PRESET_NAMES:
            opts = preset_options(name)
            assert opts.preset_name == name
            assert opts.crf == 23

    def test_preset_options_refs_default_from_table(self):
        assert preset_options("veryslow").refs == 16

    def test_preset_options_refs_override(self):
        # The paper pins refs=3 for its preset sweep.
        assert preset_options("veryslow", refs=3).refs == 3

    def test_preset_options_extra_overrides(self):
        opts = preset_options("fast", rc_mode="cqp", qp=30)
        assert opts.rc_mode == "cqp" and opts.qp == 30

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            preset_options("turbo")
