"""Unit tests for repro.codec.quant."""

import numpy as np
import pytest

from repro.codec.quant import (
    dequantize,
    qstep,
    quantize,
    rd_lambda,
    trellis_quantize,
)


class TestQstep:
    def test_doubles_every_six_qp(self):
        assert qstep(18) == pytest.approx(2 * qstep(12))
        assert qstep(51) == pytest.approx(qstep(45) * 2)

    def test_base_value(self):
        assert qstep(0) == pytest.approx(0.625)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            qstep(-1)
        with pytest.raises(ValueError):
            qstep(52)


class TestLambda:
    def test_increases_with_qp(self):
        assert rd_lambda(30) > rd_lambda(20) > rd_lambda(10)

    def test_known_anchor(self):
        # lambda(12) = 0.85 by construction.
        assert rd_lambda(12) == pytest.approx(0.85)


class TestQuantize:
    def test_zero_stays_zero(self):
        assert np.all(quantize(np.zeros((2, 4, 4)), 23) == 0)

    def test_deadzone_collapses_small_values(self):
        step = qstep(23)
        coeffs = np.full((1, 4, 4), step * 0.5)  # below deadzone+1 threshold
        assert np.all(quantize(coeffs, 23) == 0)

    def test_large_values_quantize_proportionally(self):
        step = qstep(20)
        coeffs = np.full((1, 4, 4), step * 10.2)
        levels = quantize(coeffs, 20)
        assert np.all(levels == 10)

    def test_sign_preserved(self):
        coeffs = np.array([[[-50.0, 50, -5, 5]] * 4])
        levels = quantize(coeffs.reshape(1, 4, 4), 10)
        assert levels[0, 0, 0] < 0 < levels[0, 0, 1]

    def test_higher_qp_more_zeros(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(0, 20, (4, 4, 4))
        low = np.count_nonzero(quantize(coeffs, 10))
        high = np.count_nonzero(quantize(coeffs, 40))
        assert high < low

    def test_deadzone_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((1, 4, 4)), 23, deadzone=0.9)

    def test_int32_output(self):
        assert quantize(np.zeros((1, 4, 4)), 23).dtype == np.int32


class TestDequantize:
    def test_inverse_scale(self):
        levels = np.array([[[3] * 4] * 4])
        out = dequantize(levels, 23)
        assert np.all(out == pytest.approx(3 * qstep(23)))

    def test_quantize_dequantize_error_bounded(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(0, 100, (8, 4, 4))
        qp = 23
        recon = dequantize(quantize(coeffs, qp), qp)
        # Dead-zone quantizer error is bounded by one full step.
        assert np.max(np.abs(recon - coeffs)) <= qstep(qp) + 1e-9


class TestTrellis:
    def test_level_zero_is_plain_quant(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(0, 30, (4, 4, 4))
        assert np.array_equal(
            trellis_quantize(coeffs, 23, level=0), quantize(coeffs, 23)
        )

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            trellis_quantize(np.zeros((1, 4, 4)), 23, level=3)

    def test_never_increases_magnitude_vs_round(self):
        rng = np.random.default_rng(3)
        coeffs = rng.normal(0, 25, (6, 4, 4))
        rounded = quantize(coeffs, 28, deadzone=0.5)  # the trellis start point
        for level in (1, 2):
            rd = trellis_quantize(coeffs, 28, level=level)
            assert np.all(np.abs(rd) <= np.abs(rounded))

    def test_zeroes_marginal_coefficients(self):
        # A coefficient that round-to-nearest keeps at level 1 but whose
        # distortion saving is below the rate cost should be RD-zeroed.
        qp = 35
        step = qstep(qp)
        coeffs = np.zeros((1, 4, 4))
        coeffs[0, 3, 3] = step * 0.55  # marginal high-frequency coefficient
        rounded = quantize(coeffs, qp, deadzone=0.5)
        assert rounded[0, 3, 3] != 0
        rd = trellis_quantize(coeffs, qp, level=1)
        assert rd[0, 3, 3] == 0

    def test_keeps_solid_level_one(self):
        # A coefficient close to a full step is worth its 3 bits.
        qp = 35
        coeffs = np.zeros((1, 4, 4))
        coeffs[0, 0, 1] = qstep(qp) * 0.95
        rd = trellis_quantize(coeffs, qp, level=1)
        assert rd[0, 0, 1] == 1

    def test_keeps_strong_coefficients(self):
        qp = 20
        coeffs = np.zeros((1, 4, 4))
        coeffs[0, 0, 0] = qstep(qp) * 40
        rd = trellis_quantize(coeffs, qp, level=2)
        assert rd[0, 0, 0] != 0

    def test_all_zero_input_fast_path(self):
        out = trellis_quantize(np.zeros((2, 4, 4)), 30, level=2)
        assert np.all(out == 0)

    def test_level2_at_least_as_sparse_as_level1(self):
        rng = np.random.default_rng(4)
        coeffs = rng.normal(0, 15, (8, 4, 4))
        n1 = np.abs(trellis_quantize(coeffs, 30, level=1)).sum()
        n2 = np.abs(trellis_quantize(coeffs, 30, level=2)).sum()
        assert n2 <= n1
