"""Unit tests for repro.codec.chroma (the 4:2:0 coding layer)."""

import numpy as np
import pytest

from repro.codec.chroma import (
    chroma_qp,
    decode_chroma_plane,
    encode_chroma_plane,
)
from repro.codec.decoder import decode
from repro.codec.encoder import encode
from repro.codec.entropy import BitReader, BitWriter
from repro.codec.options import EncoderOptions


def _plane(seed=0, shape=(24, 32)):
    rng = np.random.default_rng(seed)
    smooth = rng.random((shape[0] // 4 + 1, shape[1] // 4 + 1)) * 60 + 100
    up = np.kron(smooth, np.ones((4, 4)))[: shape[0], : shape[1]]
    return up.astype(np.uint8)


class TestChromaQp:
    def test_identity_below_30(self):
        for qp in (0, 15, 30):
            assert chroma_qp(qp) == qp

    def test_compressed_above_30(self):
        assert chroma_qp(36) < 36
        assert chroma_qp(51) <= 39

    def test_monotone(self):
        values = [chroma_qp(qp) for qp in range(52)]
        assert values == sorted(values)


class TestPlaneRoundTrip:
    def _roundtrip(self, plane, prev, qp):
        w = BitWriter()
        recon = encode_chroma_plane(w, plane, prev, qp)
        decoded = decode_chroma_plane(BitReader(w.getvalue()), plane.shape, prev, qp)
        return recon, decoded

    def test_intra_only_roundtrip(self):
        plane = _plane()
        recon, decoded = self._roundtrip(plane, None, 23)
        assert np.array_equal(recon, decoded)

    def test_temporal_roundtrip(self):
        prev_plane = _plane(1)
        w = BitWriter()
        prev_recon = encode_chroma_plane(w, prev_plane, None, 23)
        cur = np.clip(prev_plane.astype(int) + 3, 0, 255).astype(np.uint8)
        recon, decoded = self._roundtrip(cur, prev_recon, 23)
        assert np.array_equal(recon, decoded)

    def test_quality_scales_with_qp(self):
        plane = _plane(2)
        recon_lo, _ = self._roundtrip(plane, None, 5)
        recon_hi, _ = self._roundtrip(plane, None, 45)
        err_lo = np.abs(recon_lo.astype(int) - plane.astype(int)).mean()
        err_hi = np.abs(recon_hi.astype(int) - plane.astype(int)).mean()
        assert err_lo < err_hi

    def test_static_chroma_codes_cheaply(self):
        plane = _plane(3)
        w1 = BitWriter()
        recon = encode_chroma_plane(w1, plane, None, 23)
        w2 = BitWriter()
        encode_chroma_plane(w2, recon, recon, 23)  # identical to its reference
        assert w2.bit_count < w1.bit_count / 2

    def test_odd_dimensions_padded(self):
        plane = _plane(4, shape=(19, 27))
        recon, decoded = self._roundtrip(plane, None, 23)
        assert recon.shape[0] % 8 == 0 and recon.shape[1] % 8 == 0
        assert np.array_equal(recon, decoded)

    def test_temporal_block_without_reference_rejected(self):
        w = BitWriter()
        from repro.codec.entropy import write_ue

        write_ue(w, 0)  # temporal mode with no reference available
        with pytest.raises(ValueError, match="temporal chroma"):
            decode_chroma_plane(BitReader(w.getvalue()), (8, 8), None, 23)


class TestFullPipelineChroma:
    def test_encode_decode_chroma_exact(self, tiny_video):
        opts = EncoderOptions(crf=23, refs=2, bframes=1, chroma=True)
        result = encode(tiny_video, opts)
        decoded = decode(result.stream.bitstream)
        ch, cw = (tiny_video.height + 1) // 2, (tiny_video.width + 1) // 2
        for coded in result.stream.frames:
            assert coded.chroma_recon is not None
            frame = decoded.video[coded.index]
            assert frame.chroma is not None
            for i in range(2):
                assert np.array_equal(
                    coded.chroma_recon[i][:ch, :cw], frame.chroma[i]
                )

    def test_chroma_off_by_default(self, tiny_video):
        result = encode(tiny_video, EncoderOptions(crf=23, refs=1, bframes=0))
        assert result.stream.frames[0].chroma_recon is None
        decoded = decode(result.stream.bitstream)
        assert decoded.video[0].chroma is None

    def test_chroma_adds_bits(self, tiny_video):
        base = encode(tiny_video, EncoderOptions(crf=23, refs=1, bframes=0))
        with_c = encode(
            tiny_video, EncoderOptions(crf=23, refs=1, bframes=0, chroma=True)
        )
        assert with_c.total_bits > base.total_bits

    def test_chroma_reconstruction_reasonable(self, tiny_video):
        result = encode(
            tiny_video, EncoderOptions(crf=20, refs=1, bframes=0, chroma=True)
        )
        decoded = decode(result.stream.bitstream)
        src = tiny_video.frames[0].chroma
        out = decoded.video[0].chroma
        assert src is not None and out is not None
        mse = float(np.mean((src[0].astype(float) - out[0].astype(float)) ** 2))
        assert mse < 50.0  # visually close at crf 20
