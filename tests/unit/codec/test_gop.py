"""Unit tests for repro.codec.gop."""

import numpy as np
import pytest

from repro.codec.gop import plan_gop, scene_change_score
from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType
from repro.video.frame import FrameSequence
from repro.video.synthetic import SceneSpec, generate_scene


def _clip(n=8, cut_period=0, motion=0.3, seed=2):
    return generate_scene(
        SceneSpec(
            width=48, height=32, n_frames=n, scene_cut_period=cut_period,
            motion_magnitude=motion, texture_detail=0.5, noise_level=0.05,
            seed=seed, name="gop",
        )
    )


class TestSceneChangeScore:
    def test_identical_frames_near_zero(self):
        frame = _clip(2).frames[0].luma
        assert scene_change_score(frame, frame) < 0.05

    def test_unrelated_frames_high_score(self):
        a = generate_scene(SceneSpec(width=48, height=32, n_frames=1, seed=1)).frames[0].luma
        b = generate_scene(SceneSpec(width=48, height=32, n_frames=1, seed=99)).frames[0].luma
        assert scene_change_score(a, b) > 0.6  # above the default threshold
        assert scene_change_score(a, b) > scene_change_score(a, a)

    def test_smooth_motion_below_cut_threshold(self):
        clip = _clip(4, motion=0.4)
        for i in range(1, 4):
            s = scene_change_score(clip[i].luma, clip[i - 1].luma)
            assert 0.0 <= s < 0.6


class TestPlanGop:
    def test_first_frame_is_idr(self):
        plan = plan_gop(_clip(), EncoderOptions())
        assert plan.frame_types[0] is FrameType.I

    def test_no_bframes_all_p(self):
        plan = plan_gop(_clip(), EncoderOptions(bframes=0, scenecut=0))
        assert plan.frame_types[0] is FrameType.I
        assert all(t is FrameType.P for t in plan.frame_types[1:])

    def test_fixed_pattern_b_adapt_0(self):
        plan = plan_gop(_clip(9), EncoderOptions(bframes=2, b_adapt=0, scenecut=0))
        # After the IDR, groups of (B, B, P) repeat.
        types = [t.value for t in plan.frame_types]
        assert types[0] == "I"
        assert "B" in types
        # No run of B longer than bframes.
        runs = "".join(types).split("P")
        assert all(run.count("B") <= 2 for run in runs)

    def test_keyint_forces_periodic_idr(self):
        plan = plan_gop(_clip(8), EncoderOptions(keyint=3, scenecut=0, bframes=0))
        i_positions = [i for i, t in enumerate(plan.frame_types) if t is FrameType.I]
        assert i_positions == [0, 3, 6]

    def test_scenecut_inserts_idr(self):
        # Static except for a hard cut, so the cut is unambiguous.
        calm = _clip(3, motion=0.0, seed=5)
        other = _clip(3, motion=0.0, seed=77)
        clip = FrameSequence(
            frames=list(calm.frames) + list(other.frames), fps=30, name="cut"
        )
        plan = plan_gop(clip, EncoderOptions(scenecut=40, bframes=0))
        assert plan.frame_types[3] is FrameType.I
        assert 3 in plan.scene_cuts

    def test_scenecut_zero_disables_detection(self):
        calm = _clip(3, motion=0.0, seed=5)
        other = _clip(3, motion=0.0, seed=77)
        clip = FrameSequence(
            frames=list(calm.frames) + list(other.frames), fps=30, name="cut"
        )
        plan = plan_gop(clip, EncoderOptions(scenecut=0, bframes=0))
        assert plan.frame_types[3] is FrameType.P
        assert plan.scene_cuts == ()

    def test_decode_order_anchors_before_their_bs(self):
        plan = plan_gop(_clip(8), EncoderOptions(bframes=2, b_adapt=0, scenecut=0))
        decoded = set()
        for idx in plan.decode_order:
            ftype = plan.frame_types[idx]
            if ftype is FrameType.B:
                # Some later anchor must already be decoded (or none exists
                # after it in display order — trailing Bs).
                future_anchors = [
                    j for j, t in enumerate(plan.frame_types)
                    if j > idx and t is not FrameType.B
                ]
                if future_anchors:
                    assert any(j in decoded for j in future_anchors)
            decoded.add(idx)

    def test_decode_order_is_permutation(self):
        plan = plan_gop(_clip(7), EncoderOptions(bframes=3))
        assert sorted(plan.decode_order) == list(range(7))

    def test_b_adapt_2_prefers_bs_on_static_content(self):
        static = _clip(8, motion=0.0, seed=4)
        plan = plan_gop(static, EncoderOptions(bframes=3, b_adapt=2, scenecut=0))
        n_b = sum(1 for t in plan.frame_types if t is FrameType.B)
        assert n_b >= 3

    def test_plan_length(self):
        plan = plan_gop(_clip(6), EncoderOptions())
        assert len(plan) == 6
