"""Backend-registry semantics: selection precedence, capability
dispatch, availability fallback, and the deprecated shims."""

from __future__ import annotations

import warnings

import pytest

from repro.codec import kernels


@pytest.fixture(autouse=True)
def _reset_backend(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels.select_backend(None)
    yield
    kernels.select_backend(None)


def test_default_backend_is_vectorized():
    assert kernels.active_backend() == "vectorized"
    assert kernels.is_vectorized()


def test_builtin_backends_registered_in_order():
    assert kernels.KERNEL_BACKENDS[:3] == ("reference", "vectorized", "batched")
    assert "numba" in kernels.KERNEL_BACKENDS
    assert tuple(b.name for b in kernels.all_backends()) == kernels.KERNEL_BACKENDS


def test_available_backends_always_run():
    available = kernels.available_backends()
    assert "reference" in available
    assert "vectorized" in available
    assert "batched" in available
    for name in available:
        assert kernels.backend_info(name).available


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "reference")
    assert kernels.active_backend() == "reference"
    assert not kernels.is_vectorized()
    monkeypatch.setenv("REPRO_KERNELS", "  Vectorized  ")
    assert kernels.active_backend() == "vectorized"


def test_env_var_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "simd")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.active_backend()


def test_select_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "vectorized")
    kernels.select_backend("reference")
    assert kernels.active_backend() == "reference"
    kernels.select_backend(None)
    assert kernels.active_backend() == "vectorized"


def test_select_backend_rejects_unknown_eagerly():
    with pytest.raises(ValueError, match="reference, vectorized"):
        kernels.select_backend("scalar")
    # The failed call must not have clobbered the selection.
    assert kernels.active_backend() == kernels.DEFAULT_BACKEND


def test_backend_scope_nesting_innermost_wins():
    kernels.select_backend("vectorized")
    with kernels.backend_scope("reference"):
        assert kernels.active_backend() == "reference"
        with kernels.backend_scope("batched"):
            assert kernels.active_backend() == "batched"
        assert kernels.active_backend() == "reference"
    assert kernels.active_backend() == "vectorized"


def test_backend_scope_restores_on_error():
    with pytest.raises(RuntimeError):
        with kernels.backend_scope("reference"):
            raise RuntimeError("boom")
    assert kernels.active_backend() == "vectorized"


def test_backend_scope_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        with kernels.backend_scope("fast"):
            pass  # pragma: no cover


def test_capabilities_accumulate_up_the_chain():
    with kernels.backend_scope("batched"):
        assert kernels.is_vectorized()
        assert kernels.has_capability("batched")
        assert not kernels.has_capability("jit")
    with kernels.backend_scope("reference"):
        assert not kernels.has_capability("batched")


def test_impl_walks_base_chain():
    with kernels.backend_scope("reference"):
        assert kernels.impl("entropy.encode_blocks") is None
    with kernels.backend_scope("vectorized"):
        assert kernels.impl("entropy.encode_blocks") is None
    with kernels.backend_scope("batched"):
        override = kernels.impl("entropy.encode_blocks")
        assert callable(override)
        # Kernels nobody overrides fall through to the inline twins.
        assert kernels.impl("deblock.deblock_plane") is None


def test_register_backend_requires_known_base():
    with pytest.raises(ValueError, match="unknown base"):
        kernels.register_backend("turbo", base="warp")


def test_unavailable_backend_requires_base():
    with pytest.raises(ValueError, match="must declare a base"):
        kernels.register_backend("gpu", unavailable_reason="no CUDA")


def test_unavailable_backend_degrades_to_base(monkeypatch):
    kernels.register_backend(
        "flaky",
        base="vectorized",
        capabilities=("vectorized",),
        unavailable_reason="dependency missing (test)",
    )
    try:
        monkeypatch.setattr(kernels, "_warned", set())
        with kernels.backend_scope("flaky"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert kernels.active_backend() == "vectorized"
                assert kernels.active_backend() == "vectorized"
        degraded = [w for w in caught if "flaky" in str(w.message)]
        assert len(degraded) == 1  # warn once, not per dispatch
        assert "falling back to 'vectorized'" in str(degraded[0].message)
        assert "flaky" not in kernels.available_backends()
        assert "flaky" in kernels.KERNEL_BACKENDS
    finally:
        kernels._REGISTRY.pop("flaky", None)
        kernels._impl_cache.clear()
        kernels._resolve_cache.clear()
        kernels._selection_cache.clear()
        kernels.KERNEL_BACKENDS = tuple(kernels._REGISTRY)


def test_numba_row_reports_availability():
    info = kernels.backend_info("numba")
    assert info.base == "batched"
    assert "jit" in info.capabilities
    if not info.available:
        assert "numba" in info.unavailable_reason


def test_deprecated_shims_warn_once_and_still_work(monkeypatch):
    monkeypatch.setattr(kernels, "_warned", set())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        kernels.set_backend("reference")
        assert kernels.active_backend() == "reference"
        kernels.set_backend(None)
        with kernels.use_backend("reference") as name:
            assert name == "reference"
            assert kernels.active_backend() == "reference"
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    messages = sorted(str(w.message) for w in deprecations)
    assert len(messages) == 2  # one per shim despite repeated calls
    assert "select_backend" in messages[0]
    assert "backend_scope" in messages[1]


def test_use_backend_restores_on_error():
    with pytest.raises(RuntimeError):
        with kernels.use_backend("reference"):
            raise RuntimeError("boom")
    assert kernels.active_backend() == "vectorized"
