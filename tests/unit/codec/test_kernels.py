"""Backend-switch semantics: env var, set_backend, use_backend nesting."""

from __future__ import annotations

import pytest

from repro.codec import kernels


@pytest.fixture(autouse=True)
def _reset_backend(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


def test_default_backend_is_vectorized():
    assert kernels.active_backend() == "vectorized"
    assert kernels.is_vectorized()


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "reference")
    assert kernels.active_backend() == "reference"
    assert not kernels.is_vectorized()
    monkeypatch.setenv("REPRO_KERNELS", "  Vectorized  ")
    assert kernels.active_backend() == "vectorized"


def test_env_var_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "simd")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.active_backend()


def test_set_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "vectorized")
    kernels.set_backend("reference")
    assert kernels.active_backend() == "reference"
    kernels.set_backend(None)
    assert kernels.active_backend() == "vectorized"


def test_set_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.set_backend("scalar")


def test_use_backend_nesting_innermost_wins():
    kernels.set_backend("vectorized")
    with kernels.use_backend("reference"):
        assert kernels.active_backend() == "reference"
        with kernels.use_backend("vectorized"):
            assert kernels.active_backend() == "vectorized"
        assert kernels.active_backend() == "reference"
    assert kernels.active_backend() == "vectorized"


def test_use_backend_restores_on_error():
    with pytest.raises(RuntimeError):
        with kernels.use_backend("reference"):
            raise RuntimeError("boom")
    assert kernels.active_backend() == "vectorized"


def test_use_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        with kernels.use_backend("fast"):
            pass  # pragma: no cover
