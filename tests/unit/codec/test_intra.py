"""Unit tests for repro.codec.intra."""

import numpy as np
import pytest

from repro.codec.intra import (
    best_intra_16x16,
    predict_16x16,
    predict_4x4_blocks,
)
from repro.codec.types import IntraMode


def _recon_with_mb_context(top_row=None, left_col=None):
    """A 48x48 recon plane with controllable neighbors of the MB at (16,16)."""
    recon = np.full((48, 48), 128, dtype=np.uint8)
    if top_row is not None:
        recon[15, 16:32] = top_row
    if left_col is not None:
        recon[16:32, 15] = left_col
    return recon


class TestPredict16x16:
    def test_dc_without_neighbors_is_128(self):
        recon = np.zeros((32, 32), dtype=np.uint8)
        pred = predict_16x16(recon, 0, 0, IntraMode.DC)
        assert np.all(pred == 128)

    def test_dc_averages_neighbors(self):
        recon = _recon_with_mb_context(
            top_row=np.full(16, 100, np.uint8), left_col=np.full(16, 200, np.uint8)
        )
        pred = predict_16x16(recon, 16, 16, IntraMode.DC)
        assert np.all(pred == 150)

    def test_vertical_copies_top_row(self):
        top = np.arange(16, dtype=np.uint8) * 10
        recon = _recon_with_mb_context(top_row=top)
        pred = predict_16x16(recon, 16, 16, IntraMode.VERTICAL)
        assert np.array_equal(pred[0], top)
        assert np.array_equal(pred[15], top)

    def test_horizontal_copies_left_col(self):
        left = (np.arange(16, dtype=np.uint8) * 9) % 200
        recon = _recon_with_mb_context(left_col=left)
        pred = predict_16x16(recon, 16, 16, IntraMode.HORIZONTAL)
        assert np.array_equal(pred[:, 0], left)
        assert np.array_equal(pred[:, 15], left)

    def test_vertical_falls_back_without_top(self):
        recon = np.full((32, 32), 90, dtype=np.uint8)
        pred = predict_16x16(recon, 0, 16, IntraMode.VERTICAL)
        assert pred.shape == (16, 16)  # DC fallback, no crash

    def test_plane_follows_gradient(self):
        # Build a linear ramp; plane prediction should continue it.
        recon = np.zeros((48, 48), dtype=np.uint8)
        y, x = np.mgrid[0:48, 0:48]
        recon[:, :] = np.clip(2 * x + y, 0, 255).astype(np.uint8)
        pred = predict_16x16(recon, 16, 16, IntraMode.PLANE)
        # Gradient direction preserved: right side brighter, bottom brighter.
        assert pred[:, 15].mean() > pred[:, 0].mean()
        assert pred[15, :].mean() > pred[0, :].mean()

    def test_output_dtype_and_range(self):
        recon = np.full((32, 32), 255, dtype=np.uint8)
        for mode in IntraMode:
            pred = predict_16x16(recon, 16, 16, mode)
            assert pred.dtype == np.uint8


class TestBestIntra16x16:
    def test_picks_perfect_mode(self):
        top = np.arange(16, dtype=np.uint8) * 3 + 10
        recon = _recon_with_mb_context(top_row=top)
        source = np.tile(top, (16, 1))  # exactly the vertical prediction
        best = best_intra_16x16(source, recon, 16, 16)
        assert best.mode is IntraMode.VERTICAL
        assert best.sad == 0.0

    def test_tries_all_modes(self):
        recon = _recon_with_mb_context(top_row=np.full(16, 10, np.uint8))
        source = np.full((16, 16), 10, dtype=np.uint8)
        best = best_intra_16x16(source, recon, 16, 16)
        assert best.n_modes_tried == len(IntraMode)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            best_intra_16x16(np.zeros((8, 8), np.uint8), np.zeros((32, 32), np.uint8), 0, 0)


class TestPredict4x4:
    def test_flat_source_predicts_well(self):
        recon = np.full((48, 48), 50, dtype=np.uint8)
        source = np.full((16, 16), 50, dtype=np.uint8)
        pred, sad, tried = predict_4x4_blocks(source, recon, 16, 16)
        assert sad == 0.0
        assert np.all(pred == 50)

    def test_counts_modes_tried(self):
        recon = np.full((48, 48), 70, dtype=np.uint8)
        source = np.random.default_rng(0).integers(0, 256, (16, 16)).astype(np.uint8)
        _pred, _sad, tried = predict_4x4_blocks(source, recon, 16, 16)
        # 16 blocks x up to 3 modes each, at least DC everywhere.
        assert 16 <= tried <= 48

    def test_beats_16x16_on_structured_content(self):
        # Content with a sharp internal edge favors finer prediction.
        recon = np.full((48, 48), 128, dtype=np.uint8)
        source = np.full((16, 16), 20, dtype=np.uint8)
        source[:, 8:] = 220
        _p4, sad4, _ = predict_4x4_blocks(source, recon, 16, 16)
        best16 = best_intra_16x16(source, recon, 16, 16)
        assert sad4 < best16.sad

    def test_shape_check(self):
        with pytest.raises(ValueError):
            predict_4x4_blocks(
                np.zeros((8, 8), np.uint8), np.zeros((32, 32), np.uint8), 0, 0
            )
