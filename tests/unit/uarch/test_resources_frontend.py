"""Unit tests for repro.uarch.resources, frontend, icache, topdown, core."""

import pytest

from repro.trace.events import TraceStream
from repro.trace.kernels import build_program
from repro.trace.program import InstrMix
from repro.uarch.branch import BranchStats
from repro.uarch.config import MicroarchConfig
from repro.uarch.configs import baseline_config, config_by_name
from repro.uarch.core import run_core_model
from repro.uarch.frontend import FrontendStalls, compute_frontend_stalls, mite_instruction_fraction
from repro.uarch.icache import AnalyticICache
from repro.uarch.resources import MissProfile, achievable_mlp, compute_resource_stalls
from repro.uarch.topdown import TopdownBreakdown


class TestResourceStalls:
    def _profile(self, **kw):
        return MissProfile(**kw)

    def test_no_misses_no_stalls(self):
        stalls = compute_resource_stalls(self._profile(), baseline_config())
        assert stalls.rob == 0 and stalls.rs == 0 and stalls.sb == 0

    def test_memory_misses_stall_rob(self):
        profile = self._profile(load_l1=1000, load_l2=1000, load_l3=1000, load_mem=1000)
        stalls = compute_resource_stalls(profile, baseline_config())
        assert stalls.rob > 0

    def test_bigger_rob_fewer_stalls(self):
        profile = self._profile(load_l1=1000, load_l2=500, load_l3=100, load_mem=50)
        base = compute_resource_stalls(profile, baseline_config())
        big = compute_resource_stalls(profile, config_by_name("be_op2"))
        assert big.rob < base.rob

    def test_issue_at_dispatch_cuts_rs_stalls(self):
        profile = self._profile(load_l1=1000, load_l2=800, load_l3=400, load_mem=200)
        base = compute_resource_stalls(profile, baseline_config())
        fast = compute_resource_stalls(
            profile, baseline_config().with_updates(issue_at_dispatch=True)
        )
        assert fast.rs < base.rs

    def test_store_misses_stall_sb(self):
        profile = self._profile(store_l1=1000, store_l2=1000, store_l3=500, store_mem=500)
        stalls = compute_resource_stalls(profile, baseline_config())
        assert stalls.sb > 0

    def test_any_dominated_by_rob(self):
        profile = self._profile(load_l1=500, load_l2=400, load_l3=300, load_mem=200)
        stalls = compute_resource_stalls(profile, baseline_config())
        assert stalls.any >= stalls.rob

    def test_l4_absorbs_latency(self):
        profile = self._profile(load_l1=1000, load_l2=1000, load_l3=1000, load_mem=0)
        base = compute_resource_stalls(profile, baseline_config())
        # be_op1 has an L4: the 1000 L3 misses hit L4 at 60 instead of 160.
        profile_l4 = self._profile(
            load_l1=1000, load_l2=1000, load_l3=1000, load_l4=0, load_mem=0
        )
        with_l4 = compute_resource_stalls(profile_l4, config_by_name("be_op1"))
        assert with_l4.rob < base.rob

    def test_achievable_mlp_scales_with_rob(self):
        assert achievable_mlp(32) == 1.0
        assert achievable_mlp(128) == 4.0
        assert achievable_mlp(10_000) == 10.0


class TestAnalyticICache:
    def _icache(self, l1_lines=512, itlb=128):
        return AnalyticICache(
            build_program(),
            l1i_lines=l1_lines,
            l2i_lines=4096,
            l3i_lines=131072,
            itlb_entries=itlb,
        )

    def test_first_invocation_compulsory(self):
        ic = self._icache()
        ic.invoke("me_sad")
        assert ic.stats.l1i_misses > 0

    def test_back_to_back_reuse_cheap(self):
        ic = self._icache()
        ic.invoke("me_sad")
        after_first = ic.stats.l1i_misses
        ic.invoke("me_sad")  # zero intervening code
        assert ic.stats.l1i_misses == pytest.approx(after_first)

    def test_interleaving_causes_misses(self):
        ic = self._icache(l1_lines=64)  # small L1i
        ic.invoke("me_sad")
        for k in ("dct4", "quant", "idct4", "entropy_coeff", "trellis"):
            ic.invoke(k)
        before = ic.stats.l1i_misses
        ic.invoke("me_sad")  # much intervening code
        assert ic.stats.l1i_misses > before

    def test_bigger_l1i_fewer_misses(self):
        def run(lines):
            ic = self._icache(l1_lines=lines)
            for _ in range(20):
                for k in ("me_sad", "dct4", "quant", "entropy_coeff", "deblock"):
                    ic.invoke(k)
            return ic.stats.l1i_misses

        assert run(1024) < run(64)

    def test_l2i_sees_fewer_misses_than_l1i(self):
        ic = self._icache(l1_lines=64)
        for _ in range(10):
            for k in ("me_sad", "dct4", "quant", "entropy_coeff", "deblock"):
                ic.invoke(k)
        assert ic.stats.l2i_misses <= ic.stats.l1i_misses
        assert ic.stats.l3i_misses <= ic.stats.l2i_misses

    def test_weight_scales(self):
        a = self._icache()
        a.invoke("dct4", weight=1.0)
        b = self._icache()
        b.invoke("dct4", weight=3.0)
        assert b.stats.l1i_misses == pytest.approx(3 * a.stats.l1i_misses)

    def test_itlb_misses_counted(self):
        ic = self._icache(itlb=4)
        for _ in range(5):
            for k in ("me_sad", "trellis", "entropy_coeff", "mode_decide", "deblock"):
                ic.invoke(k)
        assert ic.stats.itlb_misses > 0


class TestFrontend:
    def _stream(self):
        stream = TraceStream()
        stream.add_instr("me_sad", InstrMix(alu=6000, load=4000, branch=1000))
        return stream

    def test_icache_misses_cost_cycles(self):
        prog = build_program()
        stalls = compute_frontend_stalls(
            stream=self._stream(), program=prog, config=baseline_config(),
            l1i_misses=100, l2i_misses=10, l3i_misses=0, itlb_misses=5,
        )
        assert stalls.icache > 0
        assert stalls.itlb == 5 * baseline_config().itlb_miss_penalty
        assert stalls.total == stalls.icache + stalls.itlb + stalls.decode

    def test_mite_fraction_depends_on_dsb_size(self):
        prog = build_program()
        stream = self._stream()
        big_frac = mite_instruction_fraction(stream, prog, dsb_lines=4)
        small_frac = mite_instruction_fraction(stream, prog, dsb_lines=10_000)
        assert big_frac == 1.0  # me_sad footprint exceeds a 4-line DSB
        assert small_frac == 0.0

    def test_empty_stream(self):
        prog = build_program()
        assert mite_instruction_fraction(TraceStream(), prog, 48) == 0.0


class TestTopdown:
    def test_categories_sum_to_100(self):
        td = TopdownBreakdown.from_cycles(
            width=4, uops=1000, base_cycles=250,
            fe_cycles=50, bs_cycles=25, mem_cycles=100, core_cycles=25,
        )
        total = td.retiring + td.bad_speculation + td.frontend_bound + td.backend_bound
        assert total == pytest.approx(100.0)
        assert td.memory_bound + td.core_bound == pytest.approx(td.backend_bound)

    def test_pure_retirement(self):
        td = TopdownBreakdown.from_cycles(
            width=4, uops=1000, base_cycles=250,
            fe_cycles=0, bs_cycles=0, mem_cycles=0, core_cycles=0,
        )
        assert td.retiring == pytest.approx(100.0)

    def test_validation_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            TopdownBreakdown(
                retiring=50, bad_speculation=10, frontend_bound=10,
                backend_bound=20, memory_bound=10, core_bound=10,
            )

    def test_dispatch_slack_charged_to_core(self):
        # Fewer uops than slots in base cycles -> unused dispatch slots.
        td = TopdownBreakdown.from_cycles(
            width=4, uops=500, base_cycles=250,  # 1000 slots, 500 uops
            fe_cycles=0, bs_cycles=0, mem_cycles=0, core_cycles=0,
        )
        assert td.core_bound == pytest.approx(50.0)
        assert td.retiring == pytest.approx(50.0)


class TestCoreModel:
    def _run(self, config=None, **miss_kw):
        stream = TraceStream()
        stream.add_instr(
            "me_sad", InstrMix(alu=50_000, mul=5_000, load=30_000, store=10_000, branch=8_000)
        )
        return run_core_model(
            stream=stream,
            config=config or baseline_config(),
            frontend=FrontendStalls(icache=100.0),
            branch=BranchStats(total_branches=8000, mispredicts=40),
            misses=MissProfile(**miss_kw),
        )

    def test_cycles_at_least_base(self):
        report = self._run()
        assert report.cycles >= report.base_cycles

    def test_mispredicts_add_bs_cycles(self):
        report = self._run()
        assert report.bs_cycles == pytest.approx(
            40 * baseline_config().branch_mispredict_penalty
        )

    def test_memory_misses_raise_backend(self):
        calm = self._run()
        stormy = self._run(load_l1=20_000, load_l2=10_000, load_l3=5_000, load_mem=2_000)
        assert stormy.mem_cycles > calm.mem_cycles
        assert stormy.topdown.backend_bound > calm.topdown.backend_bound

    def test_fe_discounted_under_backend_pressure(self):
        calm = self._run()
        stormy = self._run(load_l1=20_000, load_l2=10_000, load_l3=5_000, load_mem=2_000)
        # Same raw front-end stalls, but more of them overlap BE stalls.
        assert stormy.fe_cycles < calm.fe_cycles
