"""Unit tests for the cloud instance-type catalogue (repro.uarch.instances).

Pins the registry's calibration-bearing invariants — ISA split, physical
core counts, the Arm per-core price advantage that drives the cited
papers' throughput/$ ordering — plus the mechanics: clock scaling
against the reference frequency, µarch override application in
``build_config``, and eager validation of malformed profiles.
"""

from __future__ import annotations

import pytest

from repro.uarch.config import CacheParams
from repro.uarch.configs import config_by_name
from repro.uarch.instances import (
    INSTANCE_NAMES,
    INSTANCE_TYPES,
    REFERENCE_CLOCK_GHZ,
    InstanceType,
    instance_by_name,
)


class TestRegistry:
    def test_catalogue_covers_both_isas(self):
        assert set(INSTANCE_NAMES) == {
            "c5.xlarge", "m5.xlarge", "c6g.xlarge", "m6g.xlarge",
            "a1.xlarge",
        }
        isas = {t.isa for t in INSTANCE_TYPES.values()}
        assert isas == {"x86", "arm"}

    def test_physical_core_counts_drive_the_price_ordering(self):
        # x86 xlarge = 2 physical cores (4 SMT vCPUs); Arm xlarge = 4
        # full cores — the structural fact behind the Arm throughput/$
        # win in "Where to Encode: x86 vs Arm EC2".
        for t in INSTANCE_TYPES.values():
            assert t.cores == (2 if t.isa == "x86" else 4)
        cheapest_x86 = min(
            t.rate_per_core_hour
            for t in INSTANCE_TYPES.values() if t.isa == "x86"
        )
        priciest_arm = max(
            t.rate_per_core_hour
            for t in INSTANCE_TYPES.values() if t.isa == "arm"
        )
        assert priciest_arm < cheapest_x86

    def test_rate_per_core_hour(self):
        c5 = instance_by_name("c5.xlarge")
        assert c5.rate_per_core_hour == pytest.approx(0.170 / 2)

    def test_clock_scale_is_relative_to_reference(self):
        c5 = instance_by_name("c5.xlarge")
        assert c5.clock_scale() == pytest.approx(3.4 / REFERENCE_CLOCK_GHZ)
        a1 = instance_by_name("a1.xlarge")
        assert a1.clock_scale() < 1.0 < c5.clock_scale()

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown instance type"):
            instance_by_name("t4g.nano")

    def test_describe_is_one_catalogue_row(self):
        row = instance_by_name("m6g.xlarge").describe()
        assert row["instance"] == "m6g.xlarge"
        assert row["isa"] == "arm"
        assert row["cores"] == 4
        assert row["rate_per_core_hour"] == pytest.approx(0.154 / 4)


class TestBuildConfig:
    def test_overrides_are_applied_on_top_of_base_config(self):
        c6g = instance_by_name("c6g.xlarge")
        base = config_by_name(c6g.config_name)
        built = c6g.build_config()
        assert built.branch_predictor == "tage"
        assert built.l1d.size_bytes == 64 * 1024
        assert built.l2.size_bytes == 1024 * 1024
        # Untouched dimensions stay inherited from the Table IV base.
        assert built.dispatch_width == base.dispatch_width
        assert built.rob_size == base.rob_size

    def test_no_override_instance_matches_base_config(self):
        m5 = instance_by_name("m5.xlarge")
        assert m5.uarch_overrides == {}
        assert m5.build_config() == config_by_name("be_op1")

    def test_data_capacity_scale_passes_through(self):
        a1 = instance_by_name("a1.xlarge")
        built = a1.build_config(data_capacity_scale=48.0)
        assert built.data_capacity_scale == 48.0
        assert built.dispatch_width == 3
        assert built.rob_size == 96


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="test.xlarge", isa="arm", config_name="baseline",
            clock_ghz=2.0, cores=2, rate_per_hour=0.1,
        )
        base.update(overrides)
        return base

    def test_accepts_well_formed_profile(self):
        t = InstanceType(**self._kwargs())
        assert t.cycle_scale == 1.0

    @pytest.mark.parametrize(
        "bad, match",
        [
            (dict(isa="riscv"), "isa must be x86 or arm"),
            (dict(config_name="nope"), "unknown base config"),
            (dict(clock_ghz=0.0), "clock_ghz must be > 0"),
            (dict(cores=0), "cores must be >= 1"),
            (dict(rate_per_hour=-1.0), "rate_per_hour must be > 0"),
            (dict(cycle_scale=0.0), "cycle_scale must be > 0"),
        ],
    )
    def test_rejects_malformed_profiles(self, bad, match):
        with pytest.raises(ValueError, match=match):
            InstanceType(**self._kwargs(**bad))

    def test_override_field_names_are_validated_eagerly(self):
        t = InstanceType(**self._kwargs(
            uarch_overrides={"l2": CacheParams(512 * 1024, 8, latency=10)}
        ))
        assert t.build_config().l2.size_bytes == 512 * 1024
        bad = InstanceType(**self._kwargs(
            uarch_overrides={"no_such_knob": 1}
        ))
        with pytest.raises(TypeError):
            bad.build_config()
