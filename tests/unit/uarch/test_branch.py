"""Unit tests for repro.uarch.branch."""

import numpy as np
import pytest

from repro.uarch.branch import BranchModel, BranchStats, two_level_mispredicts


class TestTwoLevelAnalytic:
    def test_empty_sequence(self):
        assert two_level_mispredicts(np.array([], dtype=bool), 6) == 0.0

    def test_constant_sequence_only_warmup(self):
        outcomes = np.ones(1000, dtype=bool)
        m = two_level_mispredicts(outcomes, 6)
        # One pattern, zero minority, 1 training + 3 warmup.
        assert m == pytest.approx(1 + 3.0)

    def test_alternating_sequence_learned(self):
        outcomes = np.tile([True, False], 500).astype(bool)
        m = two_level_mispredicts(outcomes, 6)
        # Two patterns, each fully predictable after training.
        assert m <= 6.0

    def test_short_period_learned_long_period_not(self):
        rng = np.random.default_rng(0)
        pattern = rng.random(4) < 0.5  # period 4 < history 6
        periodic = np.tile(pattern, 250)
        m_periodic = two_level_mispredicts(periodic, 6)
        random = rng.random(1000) < 0.5
        m_random = two_level_mispredicts(random.astype(bool), 6)
        assert m_periodic < m_random / 5

    def test_random_sequence_near_half(self):
        rng = np.random.default_rng(1)
        outcomes = (rng.random(4000) < 0.5).astype(bool)
        m = two_level_mispredicts(outcomes, 6)
        # Random outcomes with uniform-pattern conditioning: minority
        # counts approach 50% of occurrences.
        assert 0.35 * 4000 < m < 0.55 * 4000

    def test_biased_sequence_scales_with_minority(self):
        rng = np.random.default_rng(2)
        outcomes = (rng.random(4000) < 0.05).astype(bool)
        m = two_level_mispredicts(outcomes, 6)
        assert m < 0.12 * 4000

    def test_degenerate_history_bimodal(self):
        outcomes = np.array([True] * 70 + [False] * 30, dtype=bool)
        assert two_level_mispredicts(outcomes, 0) == pytest.approx(31.0)

    def test_sequence_shorter_than_history(self):
        assert two_level_mispredicts(np.ones(3, dtype=bool), 6) == 1.5

    def test_longer_history_never_worse_steady_state(self):
        rng = np.random.default_rng(3)
        pattern = rng.random(12) < 0.5
        outcomes = np.tile(pattern, 200)
        m_short = two_level_mispredicts(outcomes, 4)
        m_long = two_level_mispredicts(outcomes, 16)
        assert m_long <= m_short


class TestBranchModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BranchModel("perceptron")

    def test_static_predicts_not_taken(self):
        model = BranchModel("static")
        model.record("s", np.array([True] * 80 + [False] * 20))
        stats = model.evaluate(total_branches=100)
        assert stats.mispredicts == pytest.approx(80.0)

    def test_static_with_hints_predicts_majority(self):
        model = BranchModel("static")
        model.record("s", np.array([True] * 80 + [False] * 20))
        stats = model.evaluate(total_branches=100, branch_hints=True)
        assert stats.mispredicts == pytest.approx(20.0)

    def test_tage_beats_pentium_m_on_long_patterns(self):
        rng = np.random.default_rng(4)
        pattern = rng.random(20) < 0.5  # period 20 > PM history 6
        outcomes = np.tile(pattern, 100).astype(bool)
        pm = BranchModel("pentium_m")
        pm.record("s", outcomes)
        tage = BranchModel("tage")
        tage.record("s", outcomes)
        n = outcomes.size
        m_pm = pm.evaluate(total_branches=n).mispredicts
        m_tage = tage.evaluate(total_branches=n).mispredicts
        assert m_tage < m_pm / 2

    def test_loop_branch_base_rate(self):
        model = BranchModel("pentium_m")
        stats = model.evaluate(total_branches=1_000_000)
        assert stats.mispredicts == pytest.approx(3000.0)  # 0.3% base rate

    def test_tage_base_rate_lower(self):
        pm = BranchModel("pentium_m").evaluate(total_branches=1e6).mispredicts
        tage = BranchModel("tage").evaluate(total_branches=1e6).mispredicts
        assert tage < pm

    def test_sites_accumulate_across_events(self):
        model = BranchModel("pentium_m")
        model.record("k:a", np.array([True, False]))
        model.record("k:a", np.array([True, False]))
        model.record("k:b", np.array([True]))
        stats = model.evaluate(total_branches=5)
        assert stats.total_branches == 5

    def test_weighted_sequences_scale(self):
        rng = np.random.default_rng(5)
        outcomes = (rng.random(500) < 0.5).astype(bool)
        light = BranchModel("pentium_m")
        light.record("s", outcomes, weight=1.0)
        heavy = BranchModel("pentium_m")
        heavy.record("s", outcomes, weight=4.0)
        m1 = light.evaluate(total_branches=500).mispredicts
        m4 = heavy.evaluate(total_branches=2000).mispredicts
        assert m4 > m1 * 2

    def test_stats_helpers(self):
        stats = BranchStats(total_branches=2000, mispredicts=10)
        assert stats.mispredict_rate == pytest.approx(0.005)
        assert stats.mpki(1_000_000) == pytest.approx(0.01)
        assert BranchStats().mispredict_rate == 0.0
