"""Unit tests for repro.uarch.cache."""

import numpy as np
import pytest

from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.config import CacheParams


def _cache(size=1024, assoc=2, line=64, name="test"):
    return Cache(CacheParams(size, assoc, line_bytes=line), name)


class TestCacheGeometry:
    def test_n_sets(self):
        params = CacheParams(1024, 2, line_bytes=64)  # 16 lines, 2-way -> 8 sets
        assert params.n_sets == 8

    def test_too_small_for_assoc_rejected(self):
        with pytest.raises(ValueError):
            CacheParams(64, 8, line_bytes=64)

    def test_scaled_preserves_min(self):
        params = CacheParams(1024, 8, line_bytes=64)
        scaled = params.scaled(1000.0)
        assert scaled.size_bytes == 8 * 64  # clamped to assoc * line

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheParams(1024, 2, line_bytes=48))


class TestLruBehaviour:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert c.access_line(5) is False  # compulsory miss
        assert c.access_line(5) is True  # now resident

    def test_capacity_eviction_lru_order(self):
        c = _cache(size=2 * 64, assoc=2, line=64)  # one set, 2 ways
        c.access_line(0)
        c.access_line(1)
        c.access_line(2)  # evicts 0 (LRU)
        assert c.access_line(1) is True
        assert c.access_line(0) is False  # was evicted

    def test_touch_refreshes_lru(self):
        c = _cache(size=2 * 64, assoc=2, line=64)
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)  # refresh 0; 1 becomes LRU
        c.access_line(2)  # evicts 1
        assert c.access_line(0) is True
        assert c.access_line(1) is False

    def test_set_isolation(self):
        c = _cache(size=4 * 64, assoc=1, line=64)  # 4 direct-mapped sets
        c.access_line(0)  # set 0
        c.access_line(1)  # set 1
        assert c.access_line(0) is True  # set 1 traffic didn't evict set 0

    def test_stats_weighting(self):
        c = _cache()
        c.access_line(1, weight=3.0)
        c.access_line(1, weight=3.0)
        assert c.stats.accesses == 6.0
        assert c.stats.misses == 3.0
        assert c.stats.hits == 3.0

    def test_mpki(self):
        c = _cache()
        c.access_line(1)
        assert c.stats.mpki(1000) == pytest.approx(1.0)
        assert c.stats.mpki(0) == 0.0

    def test_reset_stats(self):
        c = _cache()
        c.access_line(1)
        c.reset_stats()
        assert c.stats.accesses == 0


class TestHierarchy:
    def _hier(self):
        l1 = _cache(size=2 * 64, assoc=2, name="l1")
        l2 = _cache(size=8 * 64, assoc=4, name="l2")
        return CacheHierarchy([l1, l2]), l1, l2

    def test_miss_propagates(self):
        hier, l1, l2 = self._hier()
        hier.access(np.array([0], dtype=np.uint64))
        assert l1.stats.misses == 1
        assert l2.stats.misses == 1
        assert hier.mem_accesses == 1

    def test_l1_hit_does_not_touch_l2(self):
        hier, l1, l2 = self._hier()
        addr = np.array([0], dtype=np.uint64)
        hier.access(addr)
        hier.access(addr)
        assert l2.stats.accesses == 1  # only the initial miss

    def test_l2_catches_l1_evictions(self):
        hier, l1, l2 = self._hier()
        # Touch 3 lines in L1's single set (2-way): line 0 evicted from L1
        # but stays in L2.
        for line in (0, 1, 2):
            hier.access(np.array([line * 64], dtype=np.uint64))
        mem_before = hier.mem_accesses
        hier.access(np.array([0], dtype=np.uint64))
        assert hier.mem_accesses == mem_before  # L2 hit, no memory access

    def test_consecutive_same_line_collapsed_as_hits(self):
        hier, l1, _ = self._hier()
        addrs = np.array([0, 8, 16, 63], dtype=np.uint64)  # all in line 0
        hier.access(addrs)
        assert l1.stats.accesses == 4.0
        assert l1.stats.misses == 1.0

    def test_empty_batch_noop(self):
        hier, l1, _ = self._hier()
        hier.access(np.array([], dtype=np.uint64))
        assert l1.stats.accesses == 0

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_stats_snapshot(self):
        hier, _, _ = self._hier()
        hier.access(np.array([0, 64], dtype=np.uint64))
        stats = hier.stats()
        assert stats.levels["l1"].accesses == 2
        assert stats.mem_accesses == 2
