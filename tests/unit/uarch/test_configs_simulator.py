"""Unit tests for repro.uarch.config, configs, tlb, and simulator."""

import numpy as np
import pytest

from repro.trace.kernels import build_program
from repro.trace.recorder import RecordingTracer
from repro.uarch.config import CacheParams, MicroarchConfig
from repro.uarch.configs import CONFIG_NAMES, CONFIGS, baseline_config, config_by_name
from repro.uarch.simulator import Simulator, simulate
from repro.uarch.tlb import Tlb


class TestMicroarchConfig:
    def test_baseline_matches_table_iv(self):
        cfg = baseline_config()
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l1i.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.l3.size_bytes == 8 * 1024 * 1024
        assert cfg.l4 is None
        assert cfg.itlb_entries == 128
        assert cfg.rob_size == 128
        assert cfg.rs_size == 36
        assert not cfg.issue_at_dispatch
        assert cfg.branch_predictor == "pentium_m"

    def test_fe_op_deltas(self):
        cfg = CONFIGS["fe_op"]
        assert cfg.l1i.size_bytes == 64 * 1024
        assert cfg.itlb_entries == 256
        assert cfg.l1d == baseline_config().l1d  # everything else unchanged

    def test_be_op1_deltas(self):
        cfg = CONFIGS["be_op1"]
        assert cfg.l1d.size_bytes == 64 * 1024
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.l3.size_bytes == 4 * 1024 * 1024
        assert cfg.l4 is not None and cfg.l4.size_bytes == 16 * 1024 * 1024

    def test_be_op2_deltas(self):
        cfg = CONFIGS["be_op2"]
        assert cfg.rob_size == 256
        assert cfg.rs_size == 72
        assert cfg.issue_at_dispatch

    def test_bs_op_delta(self):
        assert CONFIGS["bs_op"].branch_predictor == "tage"

    def test_config_by_name_scaling(self):
        cfg = config_by_name("baseline", data_capacity_scale=16.0)
        assert cfg.effective_l1d().size_bytes == 2048
        assert cfg.effective_l2_data().size_bytes == 16 * 1024

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            config_by_name("turbo")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            MicroarchConfig(data_capacity_scale=0.5)

    def test_describe_table_iv_row(self):
        desc = CONFIGS["be_op1"].describe()
        assert desc["L1d"] == "64K"
        assert desc["L4"] == "16M"
        assert CONFIGS["baseline"].describe()["L4"] == "none"

    def test_all_five_configs(self):
        assert CONFIG_NAMES == ("baseline", "fe_op", "be_op1", "be_op2", "bs_op")


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=16)
        addr = np.array([0x5000], dtype=np.uint64)
        tlb.access(addr)
        tlb.access(addr)
        assert tlb.misses == 1
        assert tlb.accesses == 2

    def test_lru_eviction(self):
        tlb = Tlb(entries=2)
        for page in (0, 1, 2):  # page 0 evicted
            tlb.access(np.array([page * 4096], dtype=np.uint64))
        tlb.access(np.array([0], dtype=np.uint64))
        assert tlb.misses == 4

    def test_consecutive_same_page_collapsed(self):
        tlb = Tlb(entries=4)
        tlb.access(np.array([0, 64, 128], dtype=np.uint64))  # same page
        assert tlb.accesses == 3
        assert tlb.misses == 1

    def test_mpki(self):
        tlb = Tlb(entries=4)
        tlb.access(np.array([0], dtype=np.uint64))
        assert tlb.mpki(1000) == pytest.approx(1.0)


class TestSimulator:
    def _trace(self, video_fixture):
        from repro.codec.encoder import encode
        from repro.codec.options import EncoderOptions

        program = build_program()
        tracer = RecordingTracer(program)
        encode(video_fixture, EncoderOptions(crf=23, refs=2, bframes=1), tracer=tracer)
        return tracer.stream, program

    def test_report_structure(self, tiny_video):
        stream, program = self._trace(tiny_video)
        report = simulate(stream, program, config_by_name("baseline", data_capacity_scale=16.0))
        assert report.cycles > 0
        assert report.instructions == stream.total_instructions
        assert 0 < report.ipc < 8
        td = report.topdown
        total = td.retiring + td.bad_speculation + td.frontend_bound + td.backend_bound
        assert total == pytest.approx(100.0)
        for key in ("l1d", "l2d", "l3d", "l1i", "branch"):
            assert report.mpki[key] >= 0
        assert report.seconds == pytest.approx(report.cycles / 3.5e9)

    def test_deterministic(self, tiny_video):
        stream, program = self._trace(tiny_video)
        cfg = config_by_name("baseline", data_capacity_scale=16.0)
        a = simulate(stream, program, cfg)
        b = simulate(stream, program, cfg)
        assert a.cycles == b.cycles
        assert a.mpki == b.mpki

    def test_fe_op_improves_frontend(self, tiny_video):
        stream, program = self._trace(tiny_video)
        base = simulate(stream, program, config_by_name("baseline", data_capacity_scale=16.0))
        fe = simulate(stream, program, config_by_name("fe_op", data_capacity_scale=16.0))
        assert fe.mpki["l1i"] < base.mpki["l1i"]
        assert fe.core.fe_cycles <= base.core.fe_cycles

    def test_be_op1_improves_caches(self, tiny_video):
        stream, program = self._trace(tiny_video)
        base = simulate(stream, program, config_by_name("baseline", data_capacity_scale=16.0))
        be = simulate(stream, program, config_by_name("be_op1", data_capacity_scale=16.0))
        assert be.mpki["l1d"] <= base.mpki["l1d"]
        assert be.cycles < base.cycles

    def test_bs_op_improves_branches(self, tiny_video):
        stream, program = self._trace(tiny_video)
        base = simulate(stream, program, config_by_name("baseline", data_capacity_scale=16.0))
        bs = simulate(stream, program, config_by_name("bs_op", data_capacity_scale=16.0))
        assert bs.mpki["branch"] < base.mpki["branch"]

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            Simulator(baseline_config(), freq_hz=0)


class TestFrontendAttribution:
    def test_fe_second_level_fractions(self, tiny_video):
        """Paper §IV-A1: FE-bound slots are mostly decode (MITE/DSB)
        supply plus i-cache misses; the fractions must sum to one."""
        from repro.codec.encoder import encode
        from repro.codec.options import EncoderOptions

        program = build_program()
        tracer = RecordingTracer(program)
        encode(tiny_video, EncoderOptions(crf=23, refs=2, bframes=1), tracer=tracer)
        report = simulate(
            tracer.stream, program,
            config_by_name("baseline", data_capacity_scale=16.0),
        )
        fracs = [
            report.extra["fe_icache_frac"],
            report.extra["fe_itlb_frac"],
            report.extra["fe_decode_frac"],
        ]
        assert all(0.0 <= f <= 1.0 for f in fracs)
        assert sum(fracs) == pytest.approx(1.0)
        # Decode (MITE/DSB) is a substantial FE component, as the paper
        # found (exact share varies with clip size and cache scaling).
        assert report.extra["fe_decode_frac"] > 0.1

    def test_vtune_report_shows_attribution(self, tiny_video):
        from repro.codec.encoder import encode
        from repro.codec.options import EncoderOptions
        from repro.profiling.vtune import topdown_report

        program = build_program()
        tracer = RecordingTracer(program)
        encode(tiny_video, EncoderOptions(crf=23, refs=1, bframes=0), tracer=tracer)
        report = simulate(
            tracer.stream, program,
            config_by_name("baseline", data_capacity_scale=16.0),
        )
        text = topdown_report(report)
        assert "MITE-DSB" in text
