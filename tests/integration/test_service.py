"""End-to-end serving-mode tests: the paper's §V case study replayed
through the long-lived job service.

The headline check mirrors the paper's serving-mode claim: over a Table
III job mix on the Table IV fleet, smart placement achieves strictly
better mean speedup (and no worse mean latency) than the random-
placement control.
"""

import json

import pytest

from repro import resilience
from repro.api import ServiceConfig, serve, table3_requests
from repro.cli import main

QUICK = dict(width=48, height=32, n_frames=4)


@pytest.fixture(autouse=True)
def clean_resilience():
    resilience.reset()
    yield
    resilience.reset()


class TestServingModeMargin:
    @pytest.fixture(scope="class")
    def report(self):
        return serve(table3_requests(8), ServiceConfig(**QUICK))

    def test_all_jobs_complete(self, report):
        assert report.jobs_total == 8
        assert report.completed == 8
        assert report.failed == 0
        assert report.control.completed == 8

    def test_smart_strictly_beats_random_control(self, report):
        assert report.mean_speedup_pct > report.control.mean_speedup_pct
        assert report.margin_vs_control_pp > 0

    def test_smart_latency_no_worse_than_random(self, report):
        assert (report.mean_latency_cycles
                <= report.control.mean_latency_cycles)

    def test_margin_lands_in_run_json(self, tmp_path, capsys):
        from repro.obs import load_run

        out = tmp_path / "tel"
        report = serve(
            table3_requests(4), ServiceConfig(**QUICK), telemetry_dir=out
        )
        art = load_run(out / "run.json")
        assert art["experiment"] == "serve"
        metrics = art["metrics"]
        assert metrics["service.jobs_completed"] == 8.0  # primary + control
        assert metrics["service.smart.mean_speedup_pct"] == pytest.approx(
            report.mean_speedup_pct
        )
        assert metrics["service.random.mean_speedup_pct"] == pytest.approx(
            report.control.mean_speedup_pct
        )
        assert metrics["service.margin_vs_control_pp"] == pytest.approx(
            report.margin_vs_control_pp
        )
        assert metrics["service.margin_vs_control_pp"] > 0


class TestServeCli:
    def test_submit_then_serve_round_trip(self, tmp_path, capsys):
        spool = tmp_path / "spool.jsonl"
        for clip, crf in (("desktop", 30), ("holi", 10),
                          ("presentation", 35), ("game2", 15)):
            assert main(["submit", clip, "--crf", str(crf),
                         "--spool", str(spool)]) == 0
        assert len(spool.read_text().splitlines()) == 4

        out = tmp_path / "out"
        code = main(["serve", "--spool", str(spool), "--quick",
                     "--no-control", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "4/4 jobs completed" in captured.out

        doc = json.loads((out / "jobs.json").read_text())
        assert doc["policy"] == "smart"
        assert doc["completed"] == 4
        assert all(j["state"] == "done" for j in doc["jobs"])

    def test_mix_with_injected_worker_crash(self, tmp_path, capsys):
        out = tmp_path / "tel"
        code = main([
            "serve", "--mix", "table3", "--count", "8", "--quick",
            "--no-control",
            "--fault-plan", "service.worker,at=3,raise=RuntimeError",
            "--telemetry", str(out),
        ])
        assert code == 0
        doc = json.loads((out / "jobs.json").read_text())
        assert doc["completed"] == 8
        assert doc["worker_crashes"] == 1
        run = json.loads((out / "run.json").read_text())
        assert run["metrics"]["service.worker_crashes"] == 1.0

    def test_serve_rejects_bad_fleet(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--mix", "table3", "--quick",
                  "--fleet", "warp_drive"])

    def test_serve_without_spool_errors(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_checkpoint_resume_across_invocations(self, tmp_path, capsys):
        ckpt = tmp_path / "ck.json"
        spool = tmp_path / "spool.jsonl"
        assert main(["submit", "cricket", "--spool", str(spool)]) == 0
        assert main(["serve", "--spool", str(spool), "--quick",
                     "--no-control", "--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        # A resumed service sees the finished job and re-runs nothing.
        assert main(["serve", "--spool", str(spool), "--quick",
                     "--no-control", "--checkpoint", str(ckpt),
                     "--resume"]) == 0
