"""Integration: zero-copy shared-memory frame transport.

The transport contract (ISSUE 10): publishing decoded clips into
``multiprocessing.shared_memory`` is an optimization, never a
correctness dependency. A parallel sweep reading shared planes must
produce payloads byte-identical to a serial run's and to a parallel run
with the transport disabled — including when shared memory is broken
(publish falls back, visibly) and when a worker is killed mid-sweep
(retries re-attach the same segment).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import resilience
from repro.experiments import parallel, runner as runner_mod, transport
from repro.experiments.cache import record_to_payload
from repro.experiments.runner import QUICK, SweepFailure, SweepRunner
from repro.obs import telemetry_session
from repro.resilience import RetryPolicy
from repro.video.frame import Frame, FrameSequence
from repro.video.vbench import load_video

#: QUICK proxy geometry with a trimmed grid — four cells are enough to
#: fan out across two workers and hit the publish/attach/release path.
SCALE = QUICK.with_updates(
    name="quick-shm",
    width=48,
    height=32,
    n_frames=4,
    crf_values=(23, 40),
    refs_values=(1, 2),
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _clean_transport_state(monkeypatch):
    """Every test starts with no published segments, an empty decoded-clip
    cache (so publishing is not skipped), and default transport config."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    for reset in (_reset_state,):
        reset()
    yield
    _reset_state()


def _reset_state():
    transport.release_all()
    transport.configure(None)
    transport._ATTACHED.clear()
    transport._DECODE_CACHE.clear()
    runner_mod._VIDEO_CACHE.clear()
    parallel.configure(jobs=None, cache_dir=None)
    resilience.reset()


def _payloads(records):
    return [record_to_payload(r) for r in records]


@pytest.fixture(scope="module")
def serial_payloads():
    """Ground truth: the sweep computed serially, no transport involved."""
    records = SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()
    payloads = _payloads(records)
    runner_mod._VIDEO_CACHE.clear()
    return payloads


# --- segment round-trip ------------------------------------------------------


def _chroma_video(n_frames: int = 3, height: int = 32, width: int = 48):
    rng = np.random.default_rng(7)
    ch, cw = (height + 1) // 2, (width + 1) // 2
    frames = [
        Frame(
            luma=rng.integers(0, 256, size=(height, width), dtype=np.uint8),
            chroma=(
                rng.integers(0, 256, size=(ch, cw), dtype=np.uint8),
                rng.integers(0, 256, size=(ch, cw), dtype=np.uint8),
            ),
        )
        for _ in range(n_frames)
    ]
    return FrameSequence(frames=frames, fps=30.0, name="synthetic-chroma")


def _as_disowned_worker(key):
    """Make this process look like a forked worker for ``key``'s segment.

    Returns a restore callback: attached views must be dropped *before*
    the segment is released, or closing the mapping raises BufferError.
    """
    seg = transport._SEGMENTS[key]
    seg.owner_pid = -1

    def restore():
        transport._ATTACHED.clear()
        seg.owner_pid = os.getpid()

    return restore


class TestSegmentRoundTrip:
    @staticmethod
    def _check_shared_luma(key, video):
        # All shared views live only inside this frame, so release() can
        # close the mapping after it returns.
        shared = transport.fetch(key)
        assert shared is not None
        assert shared is transport.fetch(key)  # attach once, then cache
        assert shared.name == video.name
        assert shared.fps == video.fps
        assert len(shared.frames) == len(video.frames)
        for mine, theirs in zip(video.frames, shared.frames):
            assert np.array_equal(mine.luma, theirs.luma)
            assert not theirs.luma.flags.writeable

    def test_luma_only_clip_round_trips(self):
        key = ("desktop", SCALE.width, SCALE.height, SCALE.n_frames)
        video = load_video(
            "desktop",
            width=SCALE.width,
            height=SCALE.height,
            n_frames=SCALE.n_frames,
        )
        assert transport.publish_video(key, video) is True
        assert transport.publish_video(key, video) is True  # idempotent
        assert transport.transport_stats()["published"] == 1

        # The publisher keeps its own decoded copy: fetch is a no-op here.
        assert transport.fetch(key) is None

        restore = _as_disowned_worker(key)
        try:
            self._check_shared_luma(key, video)
        finally:
            restore()

        transport.release([key])
        assert key not in transport._SEGMENTS
        assert transport.transport_stats()["published"] == 0

    @staticmethod
    def _check_shared_chroma(key, video):
        shared = transport.fetch(key)
        assert shared is not None
        for mine, theirs in zip(video.frames, shared.frames):
            assert theirs.chroma is not None
            for plane_mine, plane_theirs in zip(mine.chroma, theirs.chroma):
                assert np.array_equal(plane_mine, plane_theirs)
                assert not plane_theirs.flags.writeable

    def test_chroma_planes_round_trip(self):
        video = _chroma_video()
        key = ("synthetic-chroma", 48, 32, 3)
        assert transport.publish_video(key, video) is True
        restore = _as_disowned_worker(key)
        try:
            self._check_shared_chroma(key, video)
        finally:
            restore()
        transport.release([key])
        assert transport.transport_stats()["published"] == 0

    def test_cached_video_decodes_once(self):
        a = transport.cached_video(
            "desktop", width=48, height=32, n_frames=4
        )
        b = transport.cached_video(
            "desktop", width=48, height=32, n_frames=4
        )
        assert a is b
        direct = load_video("desktop", width=48, height=32, n_frames=4)
        for mine, theirs in zip(direct.frames, a.frames):
            assert np.array_equal(mine.luma, theirs.luma)


# --- sweep equivalence -------------------------------------------------------


class TestSweepEquivalence:
    def test_parallel_shm_matches_serial(self, serial_payloads):
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert _payloads(records) == serial_payloads
        # The shared path actually ran: the parent published the clip ...
        assert "sweep.shm_clips" in tel.metrics.as_dict()
        # ... without caching a private decoded copy (workers would then
        # inherit it copy-on-write and never touch the segment) ...
        key = (SCALE.sweep_video, SCALE.width, SCALE.height, SCALE.n_frames)
        assert key not in runner_mod._VIDEO_CACHE
        # ... and released the segment once the pool drained.
        assert transport.transport_stats()["published"] == 0

    def test_parallel_without_shm_matches_serial(self, serial_payloads):
        transport.configure(False)
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert _payloads(records) == serial_payloads
        assert "sweep.shm_clips" not in tel.metrics.as_dict()
        assert transport.transport_stats()["published"] == 0

    def test_env_var_disables_publishing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert transport.enabled() is False
        runner = SweepRunner(SCALE, jobs=2, cache=False)
        assert runner._publish_shared_videos([]) == ()


# --- fallback when shared memory is broken -----------------------------------


class _BrokenSharedMemory:
    def __init__(self, *args, **kwargs):
        raise OSError("shm_open: no space left on device")


class TestPublishFallback:
    def test_publish_failure_warns_once_and_returns_false(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", _BrokenSharedMemory
        )
        monkeypatch.setattr(transport, "_warned", set())
        video = _chroma_video()
        key = ("synthetic-chroma", 48, 32, 3)
        with pytest.warns(UserWarning, match="falling back to per-worker"):
            assert transport.publish_video(key, video) is False
        assert "falling back to per-worker" in capsys.readouterr().err
        # Second failure is silent: warn once per process, not per clip.
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert transport.publish_video(key, video) is False
        assert not [w for w in caught if issubclass(w.category, UserWarning)]
        assert transport.transport_stats()["published"] == 0

    def test_sweep_still_identical_when_publish_fails(
        self, monkeypatch, serial_payloads
    ):
        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", _BrokenSharedMemory
        )
        monkeypatch.setattr(transport, "_warned", set())
        with pytest.warns(UserWarning, match="falling back"):
            records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert _payloads(records) == serial_payloads
        # The fallback cached the decode so workers share it copy-on-write.
        key = (SCALE.sweep_video, SCALE.width, SCALE.height, SCALE.n_frames)
        assert key in runner_mod._VIDEO_CACHE


# --- chaos: transport under worker kills -------------------------------------


class TestWorkerKill:
    def test_transient_worker_faults_retry_to_identical(self, serial_payloads):
        # The injected exception fires at most once per worker process
        # (max=1); retries land on a clean worker that re-attaches the
        # same shared segment and produces the same bytes.
        resilience.configure(retry=FAST_RETRY)
        resilience.install_plan("worker.task,match=2,max=1,raise=InjectedFault")
        records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert _payloads(records) == serial_payloads
        assert transport.transport_stats()["published"] == 0

    def test_segments_released_after_worker_kill(self, serial_payloads):
        # A kill plan without max= murders every retry of its cell, so the
        # sweep ends in SweepFailure — the transport must still release
        # its segments (the engine's finally path), and a chaos-free rerun
        # over shared memory must match the serial ground truth.
        resilience.configure(retry=FAST_RETRY)
        resilience.install_plan("worker.task,match=2,kill")
        with pytest.raises(SweepFailure) as excinfo:
            SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert len(excinfo.value.failures) == 1
        assert transport.transport_stats()["published"] == 0

        resilience.configure(fault_plan=False)  # chaos off
        records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert _payloads(records) == serial_payloads
        assert transport.transport_stats()["published"] == 0
