"""End-to-end observability tests: traces, stage latencies, SLOs.

Drives ``repro serve`` (through the facade and the CLI) under a
telemetry session and asserts the PR's acceptance scenario: an 8-job
run produces a ``run.json`` with complete per-job span trees in the
Chrome-trace export, per-config stage-latency histograms, and an
evaluated ``slo`` section; ``repro slo check`` exits 0 on the clean run
and non-zero when an injected worker crash pushes the requeue rate over
budget. A smaller fan-out test pins the cross-process span adoption the
sweep engine performs.
"""

import json
from pathlib import Path

import pytest

from repro import resilience
from repro.api import ServiceConfig, serve, table3_requests
from repro.cli import main
from repro.obs import load_run, read_events_jsonl
from repro.obs.metrics import parse_label_key

QUICK = dict(width=48, height=32, n_frames=4)

SPEC = Path(__file__).resolve().parents[2] / "examples" / "slo" / "serve.json"


@pytest.fixture(autouse=True)
def clean_resilience():
    resilience.reset()
    yield
    resilience.reset()


class TestServeObservability:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serve-obs")
        serve(
            table3_requests(8),
            ServiceConfig(**QUICK),
            control=False,
            telemetry_dir=out,
            slo_spec=SPEC,
            metrics_out=out / "metrics",
            metrics_interval=0,      # exit flush only: deterministic
        )
        return out

    def test_run_json_has_trace_id_and_slo(self, run_dir):
        art = load_run(run_dir / "run.json")
        assert art["trace_id"]
        assert art["slo"]["ok"] is True
        assert art["slo"]["breached"] == []
        kinds = {o["kind"] for o in art["slo"]["objectives"]}
        assert kinds == {"latency", "error_rate", "deadline_miss_rate"}

    def test_per_config_stage_latency_histograms(self, run_dir):
        art = load_run(run_dir / "run.json")
        stages: dict[str, set[str]] = {}
        for key, snap in art["metrics"].items():
            name, labels = parse_label_key(key)
            if name != "service.stage_latency_s":
                continue
            assert isinstance(snap, dict) and snap["count"] >= 1
            assert {"stage", "config", "policy"} <= set(labels)
            stages.setdefault(labels["stage"], set()).add(labels["config"])
        assert {"queue_wait", "placement", "encode", "e2e"} <= set(stages)
        # Every fleet config completed jobs, so each appears per stage.
        assert stages["encode"] == {"fe_op", "be_op1", "be_op2", "bs_op"}

    def test_chrome_trace_has_one_lane_per_job(self, run_dir):
        trace = json.loads((run_dir / "trace.json").read_text())
        lanes = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "thread_name"
        }
        assert lanes == {f"job {i}" for i in range(1, 9)}

    def test_every_job_has_complete_span_tree(self, run_dir):
        """submit → job → encode, linked parent→child, for all 8 jobs."""
        records = read_events_jsonl(run_dir / "events.jsonl")
        by_id = {r["span_id"]: r for r in records}
        for job_id in range(1, 9):
            spans = {r["name"]: r for r in records
                     if (r.get("attrs") or {}).get("job") == job_id}
            assert {"service.submit", "service.job",
                    "worker.encode"} <= set(spans)
            encode = spans["worker.encode"]
            assert by_id[encode["parent_id"]]["name"] == "service.job"

    def test_metrics_out_snapshot_written(self, run_dir):
        prom = (run_dir / "metrics" / "metrics.prom").read_text()
        assert "repro_service_stage_latency_s_bucket" in prom
        assert 'stage="encode"' in prom
        slo_doc = json.loads((run_dir / "metrics" / "slo.json").read_text())
        assert slo_doc["ok"] is True

    def test_slo_check_exits_zero(self, run_dir, capsys):
        code = main(["slo", "check", str(run_dir / "run.json"),
                     "--spec", str(SPEC)])
        assert code == 0

    def test_timeline_renders_for_every_job(self, run_dir, capsys):
        for job_id in (1, 8):
            assert main(["report", str(run_dir / "run.json"),
                         "--timeline", str(job_id)]) == 0
            out = capsys.readouterr().out
            assert f"timeline for job {job_id}" in out
            assert "worker.encode" in out


class TestSloBreachGate:
    def test_injected_crash_breaches_requeue_budget(self, tmp_path, capsys):
        out = tmp_path / "crash"
        code = main([
            "serve", "--mix", "table3", "--count", "8", "--quick",
            "--no-control",
            "--telemetry", str(out),
            "--slo", str(SPEC),
            "--fault-plan", "service.worker,at=2,raise=RuntimeError",
        ])
        assert code == 0                      # the job itself re-placed OK
        capsys.readouterr()
        art = load_run(out / "run.json")
        assert art["slo"]["ok"] is False
        assert "requeue-rate" in art["slo"]["breached"]
        gate = main(["slo", "check", str(out / "run.json"),
                     "--spec", str(SPEC)])
        assert gate == 2


class TestFanOutTracePropagation:
    def test_worker_spans_adopted_under_fan_out(self):
        """A 2-process fan-out ships span trees back: the parent's
        artifact contains worker.task spans parented (transitively)
        under parallel.fan_out, on the parent's time axis."""
        from repro.experiments.runner import QUICK, SweepRunner
        from repro.obs import session as obs

        scale = QUICK.with_updates(
            name="quick-trace", crf_values=(1, 23), refs_values=(1, 4)
        )
        with obs.telemetry_session() as tel:
            records = SweepRunner(scale, jobs=2, cache=False).crf_refs_sweep()
            assert len(records) == 4
            spans = {s.name: s for s in tel.spans.finished}
        assert "parallel.fan_out" in spans
        tasks = [s for s in tel.spans.finished if s.name == "worker.task"]
        assert len(tasks) == 4
        fan_out = spans["parallel.fan_out"]
        for task in tasks:
            assert task.parent_id == fan_out.span_id
            assert task.depth == fan_out.depth + 1
            # Shared monotonic clock: adopted spans sit inside the
            # fan_out interval.
            assert fan_out.start_ns <= task.start_ns <= fan_out.end_ns
