"""Integration: encode→decode round trips across the full option surface."""

import numpy as np
import pytest

from repro.codec.decoder import decode
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions
from repro.codec.presets import PRESET_NAMES, preset_options


def _assert_exact(result, video):
    decoded = decode(result.stream.bitstream)
    recon = np.stack(
        [
            f.recon[: video.height, : video.width]
            for f in result.stream.frames_in_display_order()
        ]
    )
    got = np.stack([f.luma for f in decoded.video])
    assert np.array_equal(recon, got), "decoder diverged from encoder recon"


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_roundtrip_every_preset(preset, tiny_video):
    opts = preset_options(preset, crf=26, refs=2)
    result = encode(tiny_video, opts)
    _assert_exact(result, tiny_video)


@pytest.mark.parametrize("rc_mode", ["cqp", "crf", "abr", "cbr", "vbv", "2pass-abr"])
def test_roundtrip_every_rc_mode(rc_mode, tiny_video):
    opts = EncoderOptions(
        rc_mode=rc_mode,
        crf=25,
        qp=28,
        refs=1,
        bframes=1,
        bitrate_kbps=400.0,
        vbv_maxrate_kbps=500.0 if rc_mode == "vbv" else 0.0,
        vbv_bufsize_kbits=40.0 if rc_mode == "vbv" else 0.0,
    )
    result = encode(tiny_video, opts)
    _assert_exact(result, tiny_video)


@pytest.mark.parametrize("me", ["dia", "hex", "umh", "esa", "tesa"])
def test_roundtrip_every_motion_method(me, tiny_video):
    opts = EncoderOptions(crf=24, refs=1, me=me, merange=8, bframes=0)
    result = encode(tiny_video, opts)
    _assert_exact(result, tiny_video)


@pytest.mark.parametrize("crf", [0, 13, 37, 51])
def test_roundtrip_crf_extremes(crf, tiny_video):
    result = encode(tiny_video, EncoderOptions(crf=crf, refs=2, bframes=1))
    _assert_exact(result, tiny_video)


def test_roundtrip_max_refs(tiny_video):
    result = encode(tiny_video, EncoderOptions(crf=23, refs=16, bframes=0))
    _assert_exact(result, tiny_video)


def test_roundtrip_busy_content_with_scenecuts(busy_video):
    result = encode(busy_video, EncoderOptions(crf=23, refs=2, bframes=2))
    _assert_exact(result, busy_video)


def test_roundtrip_odd_dimensions():
    """Non-MB-aligned frames pad internally and crop back."""
    from repro.video.synthetic import SceneSpec, generate_scene

    clip = generate_scene(
        SceneSpec(width=52, height=38, n_frames=3, seed=6, name="odd")
    )
    result = encode(clip, EncoderOptions(crf=25, refs=1, bframes=0))
    decoded = decode(result.stream.bitstream)
    assert decoded.video.resolution == (52, 38)
    _assert_exact(result, clip)


def test_transcode_chain_stays_decodable(tiny_video):
    """Transcode the transcode: generation loss accrues but streams decode."""
    first = encode(tiny_video, EncoderOptions(crf=20, refs=1, bframes=0))
    middle = decode(first.stream.bitstream).video
    second = encode(middle, EncoderOptions(crf=30, refs=1, bframes=0))
    final = decode(second.stream.bitstream).video
    assert len(final) == len(tiny_video)
    # Generation loss: second encode's PSNR vs original is no better than
    # the first's.
    from repro.video.metrics import psnr_sequence

    assert psnr_sequence(tiny_video, final) <= first.psnr_db + 1.0
