"""Integration: the paper's Figure 2 speed/quality/size triangle.

Verifies every arrow of the figure: raising crf actively degrades quality
and passively shrinks size and speeds up encoding; raising refs actively
shrinks size and passively slows encoding while leaving quality alone.
"Time" is simulated transcode time (deterministic), as in the µarch
experiments.
"""

import pytest

from repro.codec.options import EncoderOptions
from repro.profiling.perf import profile_transcode
from repro.video.synthetic import SceneSpec, generate_scene


@pytest.fixture(scope="module")
def clip():
    # Moderate motion, moderate texture, enough frames for refs to matter.
    return generate_scene(
        SceneSpec(
            width=64, height=48, n_frames=10, seed=21,
            texture_detail=0.6, motion_magnitude=0.5, noise_level=0.1,
            name="triangle",
        )
    )


@pytest.fixture(scope="module")
def sweep(clip):
    results = {}
    for crf in (10, 23, 40):
        for refs in (1, 4):
            opts = EncoderOptions(crf=crf, refs=refs, bframes=0, scenecut=0)
            results[(crf, refs)] = profile_transcode(
                clip, opts, data_capacity_scale=16.0
            ).counters
    return results


class TestCrfArrows:
    def test_crf_actively_degrades_quality(self, sweep):
        assert sweep[(10, 1)].psnr_db > sweep[(23, 1)].psnr_db > sweep[(40, 1)].psnr_db

    def test_crf_passively_shrinks_size(self, sweep):
        assert (
            sweep[(10, 1)].bitrate_kbps
            > sweep[(23, 1)].bitrate_kbps
            > sweep[(40, 1)].bitrate_kbps
        )

    def test_crf_passively_speeds_up(self, sweep):
        assert sweep[(40, 1)].time_seconds < sweep[(10, 1)].time_seconds


class TestRefsArrows:
    def test_refs_actively_shrinks_size(self, sweep):
        # More reference frames => better compression at every crf.
        for crf in (10, 23):
            assert sweep[(crf, 4)].bitrate_kbps <= sweep[(crf, 1)].bitrate_kbps * 1.02

    def test_refs_passively_slows_down(self, sweep):
        assert sweep[(23, 4)].time_seconds > sweep[(23, 1)].time_seconds

    def test_refs_leaves_quality_roughly_alone(self, sweep):
        # "refs has no impact on transcoded video quality" (paper §III-A);
        # allow a small RD-induced wobble.
        for crf in (10, 23, 40):
            assert sweep[(crf, 4)].psnr_db == pytest.approx(
                sweep[(crf, 1)].psnr_db, abs=1.5
            )


class TestDiminishingReturns:
    def test_low_crf_benefits_more_from_refs(self, sweep):
        """Paper: 'low crf benefits more from increasing refs'."""
        def saving(crf):
            base = sweep[(crf, 1)].bitrate_kbps
            more = sweep[(crf, 4)].bitrate_kbps
            return (base - more) / base if base > 0 else 0.0

        assert saving(10) >= saving(40) - 0.02
