"""Golden-trend regression layer: the paper's directional claims, frozen.

Each assertion pins one of the paper's headline directions at a small,
fixed proxy scale, so a future encoder or simulator edit that silently
*inverts* a trend fails loudly here even if every unit test still
passes:

- §IV-A1 (Fig 3): raising crf pushes work from speculation to the
  memory subsystem — back-end bound rises, bad speculation falls, and
  the front-end bound stays a small fraction throughout;
- §IV-A (Fig 4B): transcode time grows with refs but with an elbow —
  the marginal cost of extra reference frames shrinks;
- §IV-B (Fig 6): the preset ladder orders transcode time, ultrafast
  fastest through placebo slowest;
- §IV-D (Fig 8): AutoFDO and Graphite recompiles both speed the
  encoder up (paper: 4.66% / 4.42% average).

The fixed scale (not QUICK) keeps this module self-contained: changing
QUICK's knobs must not silently change what these goldens measure.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_compiler
from repro.experiments.runner import ExperimentScale, SweepRunner

#: Frozen golden scale — do not derive from QUICK (see module docstring).
GOLDEN_SCALE = ExperimentScale(
    name="golden",
    width=64,
    height=48,
    n_frames=8,
    crf_values=(5, 23, 45),
    refs_values=(1, 2, 4, 8),
    sweep_video="cricket",
    videos=("desktop", "cricket"),
    data_capacity_scale=24.0,
    fig8_combos=1,
    fig8_videos=("desktop", "cricket"),
)


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(GOLDEN_SCALE, cache=False)


class TestCrfGoldenTrends:
    @pytest.fixture(scope="class")
    def by_crf(self, runner):
        return {
            crf: runner.profile("cricket", crf=crf, refs=2).counters
            for crf in GOLDEN_SCALE.crf_values
        }

    def test_backend_bound_rises_monotonically_with_crf(self, by_crf):
        series = [by_crf[crf].backend_bound for crf in (5, 23, 45)]
        assert series[0] < series[1] < series[2]

    def test_bad_speculation_collapses_at_high_crf(self, by_crf):
        assert by_crf[45].bad_speculation < by_crf[23].bad_speculation
        assert by_crf[45].bad_speculation < by_crf[5].bad_speculation

    def test_frontend_bound_stays_small(self, by_crf):
        """Paper: FE-bound slots 'represent only a small fraction'."""
        for counters in by_crf.values():
            assert counters.frontend_bound < 20.0

    def test_bitrate_falls_with_crf(self, by_crf):
        rates = [by_crf[crf].bitrate_kbps for crf in (5, 23, 45)]
        assert rates[0] > rates[1] > rates[2]


class TestRefsElbowGolden:
    @pytest.fixture(scope="class")
    def time_by_refs(self, runner):
        return {
            refs: runner.profile("cricket", crf=23, refs=refs).counters.time_seconds
            for refs in GOLDEN_SCALE.refs_values
        }

    def test_time_grows_with_refs(self, time_by_refs):
        assert time_by_refs[8] > time_by_refs[1]
        assert time_by_refs[2] > time_by_refs[1]

    def test_elbow_marginal_cost_shrinks(self, time_by_refs):
        """Beyond the elbow, extra references stop paying — the 4->8 step
        must cost less than the 1->2 step despite covering 4x the refs."""
        early = time_by_refs[2] - time_by_refs[1]
        late = time_by_refs[8] - time_by_refs[4]
        assert late < early


class TestPresetLadderGolden:
    @pytest.fixture(scope="class")
    def time_by_preset(self, runner):
        return {
            r.preset: r.counters.time_seconds for r in runner.preset_sweep()
        }

    def test_fast_end_ordering(self, time_by_preset):
        t = time_by_preset
        assert t["ultrafast"] < t["superfast"] < t["veryfast"] < t["faster"]

    def test_slow_end_ordering(self, time_by_preset):
        t = time_by_preset
        assert t["medium"] < t["slower"] < t["veryslow"] < t["placebo"]

    def test_extremes(self, time_by_preset):
        t = time_by_preset
        assert t["ultrafast"] < t["medium"] < t["placebo"]


class TestCompilerSpeedupGolden:
    @pytest.fixture(scope="class")
    def fig8(self):
        return fig8_compiler.run(GOLDEN_SCALE)

    def test_autofdo_speeds_up(self, fig8):
        assert fig8.autofdo_average > 0.0

    def test_graphite_speeds_up(self, fig8):
        assert fig8.graphite_average > 0.0

    def test_every_video_benefits_from_autofdo(self, fig8):
        for video, pct in fig8.autofdo_speedup_pct.items():
            assert pct > 0.0, f"AutoFDO slowed {video} down"
