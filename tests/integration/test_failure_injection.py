"""Failure injection: the decoder must fail cleanly on damaged streams,
and the CLI must degrade a sweep with permanently-failing cells to a
partial result instead of aborting.

A production transcoder receives truncated uploads, bit-flipped network
payloads, and hostile inputs. The decoder is allowed to reject them
(``ValueError``/``EOFError``) or, for payload-area corruption, to decode
*something* of the right geometry — it must never crash with an
unexpected exception type, hang, or return malformed frames.

On the pipeline side, a cell whose compute raises a fatal (or
retry-exhausted) exception must not take the campaign down with it: the
sweep completes every other cell, ``run.json`` reports ``status:
"partial"`` with the failed cell's exception class, and the process
exits with code 3 — after which ``--resume`` finishes the job.
"""

import json

import numpy as np
import pytest

from repro.codec.decoder import decode
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions

_ALLOWED = (ValueError, EOFError, KeyError, IndexError)


@pytest.fixture(scope="module")
def good_stream(request):
    tiny = request.getfixturevalue("tiny_video")
    result = encode(tiny, EncoderOptions(crf=23, refs=2, bframes=1))
    return result.stream.bitstream, tiny


class TestTruncation:
    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_truncated_stream_fails_cleanly(self, good_stream, keep_fraction):
        data, _video = good_stream
        truncated = data[: int(len(data) * keep_fraction)]
        with pytest.raises(_ALLOWED):
            decode(truncated)

    def test_empty_stream(self):
        with pytest.raises(_ALLOWED):
            decode(b"")

    def test_single_byte(self):
        with pytest.raises(_ALLOWED):
            decode(b"\xff")


class TestBitFlips:
    def _flip(self, data: bytes, byte_index: int, bit: int) -> bytes:
        out = bytearray(data)
        out[byte_index] ^= 1 << bit
        return bytes(out)

    def test_header_corruption_detected_or_decoded(self, good_stream):
        data, video = good_stream
        for byte_index in range(min(4, len(data))):
            corrupted = self._flip(data, byte_index, 3)
            try:
                result = decode(corrupted)
            except _ALLOWED:
                continue
            # If it decodes, output must be structurally valid.
            assert len(result.video) >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_payload_corruption_never_crashes_unexpectedly(
        self, good_stream, seed
    ):
        data, video = good_stream
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(len(data) // 2, len(data)))
        corrupted = self._flip(data, pos, int(rng.integers(0, 8)))
        try:
            result = decode(corrupted)
        except _ALLOWED:
            return
        for frame in result.video:
            assert frame.luma.shape == (video.height, video.width)
            assert frame.luma.dtype == np.uint8


class TestGarbage:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_bytes_rejected(self, seed):
        rng = np.random.default_rng(seed)
        garbage = rng.integers(0, 256, 512).astype(np.uint8).tobytes()
        try:
            result = decode(garbage)
        except _ALLOWED:
            return
        # Vanishingly unlikely, but if it parses it must be well-formed.
        assert len(result.video) >= 1

    def test_all_zeros(self):
        with pytest.raises(_ALLOWED):
            decode(b"\x00" * 256)

    def test_all_ones(self):
        try:
            result = decode(b"\xff" * 256)
        except _ALLOWED:
            return
        assert len(result.video) >= 1


class TestCliPartialResults:
    """A permanently-failing cell yields exit code 3, a complete set of
    surviving cells, and a ``failures`` entry in ``run.json``."""

    @pytest.fixture(autouse=True)
    def _trimmed_quick_scale(self, monkeypatch):
        """Shrink the `quick` scale to a 2x2 grid of tiny cells and undo
        every piece of process-wide state the CLI configures."""
        from repro import resilience
        from repro.experiments import parallel, runner

        trimmed = runner.QUICK.with_updates(
            name="quick",
            width=48,
            height=32,
            n_frames=4,
            crf_values=(23, 40),
            refs_values=(1, 2),
        )
        monkeypatch.setitem(runner.SCALES, "quick", trimmed)
        resilience.configure(
            retry=resilience.RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            )
        )
        yield
        runner._RUNNERS.clear()
        parallel.configure(jobs=None, cache_dir=None)
        resilience.reset()

    def _clear_memo(self):
        from repro.experiments import runner

        runner._RUNNERS.clear()

    def test_failing_cell_exits_nonzero_but_complete(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "telemetry"
        code = main([
            "fig3",
            "--no-cache",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--telemetry", str(out),
            "--fault-plan", "sweep.compute,match=crf=40:refs=2,raise=ValueError",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "PARTIAL" in err and "ValueError" in err and "--resume" in err

        run = json.loads((out / "run.json").read_text())
        assert run["status"] == "partial"
        assert len(run["failures"]) == 1
        failure = run["failures"][0]
        assert failure["error"] == "ValueError"
        assert (failure["crf"], failure["refs"]) == (40, 2)
        assert failure["attempts"] == 1  # fatal: no retries burned
        # Every computable cell ran exactly once before the failure report.
        assert run["metrics"]["sweep.profiles"] == 3
        assert run["metrics"]["sweep.failed_cells"] == 1

    def test_resume_after_partial_finishes_the_sweep(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ckpt"
        assert main([
            "fig3",
            "--no-cache",
            "--checkpoint-dir", str(ckpt),
            "--fault-plan", "sweep.compute,match=crf=40:refs=2,raise=ValueError",
        ]) == 3
        capsys.readouterr()

        self._clear_memo()  # a fresh process would have no memo either
        out = tmp_path / "resumed"
        assert main([
            "fig3",
            "--no-cache",
            "--checkpoint-dir", str(ckpt),
            "--telemetry", str(out),
            "--resume",
        ]) == 0
        run = json.loads((out / "run.json").read_text())
        assert run["status"] == "ok"
        assert "failures" not in run
        # Encoder-call counting: only the failed cell recomputed.
        assert run["metrics"]["sweep.resumed_cells"] == 3
        assert run["metrics"]["sweep.profiles"] == 1
        # Success removed the manifest.
        assert not list(ckpt.glob("*.json"))
