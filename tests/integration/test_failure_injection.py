"""Failure injection: the decoder must fail cleanly on damaged streams.

A production transcoder receives truncated uploads, bit-flipped network
payloads, and hostile inputs. The decoder is allowed to reject them
(``ValueError``/``EOFError``) or, for payload-area corruption, to decode
*something* of the right geometry — it must never crash with an
unexpected exception type, hang, or return malformed frames.
"""

import numpy as np
import pytest

from repro.codec.decoder import decode
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions

_ALLOWED = (ValueError, EOFError, KeyError, IndexError)


@pytest.fixture(scope="module")
def good_stream(request):
    tiny = request.getfixturevalue("tiny_video")
    result = encode(tiny, EncoderOptions(crf=23, refs=2, bframes=1))
    return result.stream.bitstream, tiny


class TestTruncation:
    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_truncated_stream_fails_cleanly(self, good_stream, keep_fraction):
        data, _video = good_stream
        truncated = data[: int(len(data) * keep_fraction)]
        with pytest.raises(_ALLOWED):
            decode(truncated)

    def test_empty_stream(self):
        with pytest.raises(_ALLOWED):
            decode(b"")

    def test_single_byte(self):
        with pytest.raises(_ALLOWED):
            decode(b"\xff")


class TestBitFlips:
    def _flip(self, data: bytes, byte_index: int, bit: int) -> bytes:
        out = bytearray(data)
        out[byte_index] ^= 1 << bit
        return bytes(out)

    def test_header_corruption_detected_or_decoded(self, good_stream):
        data, video = good_stream
        for byte_index in range(min(4, len(data))):
            corrupted = self._flip(data, byte_index, 3)
            try:
                result = decode(corrupted)
            except _ALLOWED:
                continue
            # If it decodes, output must be structurally valid.
            assert len(result.video) >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_payload_corruption_never_crashes_unexpectedly(
        self, good_stream, seed
    ):
        data, video = good_stream
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(len(data) // 2, len(data)))
        corrupted = self._flip(data, pos, int(rng.integers(0, 8)))
        try:
            result = decode(corrupted)
        except _ALLOWED:
            return
        for frame in result.video:
            assert frame.luma.shape == (video.height, video.width)
            assert frame.luma.dtype == np.uint8


class TestGarbage:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_bytes_rejected(self, seed):
        rng = np.random.default_rng(seed)
        garbage = rng.integers(0, 256, 512).astype(np.uint8).tobytes()
        try:
            result = decode(garbage)
        except _ALLOWED:
            return
        # Vanishingly unlikely, but if it parses it must be well-formed.
        assert len(result.video) >= 1

    def test_all_zeros(self):
        with pytest.raises(_ALLOWED):
            decode(b"\x00" * 256)

    def test_all_ones(self):
        try:
            result = decode(b"\xff" * 256)
        except _ALLOWED:
            return
        assert len(result.video) >= 1
