"""Integration: the open-loop load generator under sustained traffic.

The ISSUE 7 acceptance scenarios, end to end on the virtual clock:

- **Overload** (diurnal burst past fleet capacity): the open-loop
  driver keeps offering at the scheduled instants, so the bounded queue
  sheds — ``loadtest.shed`` counters are nonzero, the queue-wait tail
  spreads far past the median (p99 ≫ p50), and the run breaches the
  example SLO spec (``repro slo check`` exits 2).
- **Below capacity** (gentle Poisson): nothing sheds and the same SLO
  spec passes — ``repro slo check`` exits 0 on the exported run.json.
- **Determinism**: the same ``(spec, config)`` reproduces the same
  schedules (equal SHA-256 digests) and identical per-leg counts.
- **Closed loop**: at the very same overload rate, closed-loop
  admission sheds nothing — the control demonstrating why closed-loop
  harnesses hide overload (coordinated omission).

Every run here simulates tens of virtual seconds in wall milliseconds.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro import resilience
from repro.api import ServiceConfig, loadtest
from repro.cli import main
from repro.loadgen import LoadtestSpec, run_loadtest
from repro.obs import load_run, telemetry_session

#: Proxy sizing shared with the service integration tests.
QUICK = dict(width=48, height=32, n_frames=4)

SLO_SPEC = (Path(__file__).resolve().parents[2]
            / "examples" / "slo" / "loadtest.json")

#: One diurnal period whose peak bursts far past the 4-worker QUICK
#: fleet (~12-15 jobs/virtual-s) while the trough idles it: the bounded
#: queue fills at the peak (shedding) yet drains between bursts, so the
#: queue-wait distribution is strongly bimodal (p99 >> p50).
OVERLOAD_SPEC = LoadtestSpec(
    arrivals="diurnal",
    rates=(10.0,),
    duration_s=40.0,
    seed=11,
    arrival_extras={"amplitude": 0.95, "period_s": 40.0},
)
OVERLOAD_CONFIG = dict(queue_capacity=16, **QUICK)


@pytest.fixture(autouse=True)
def clean_resilience():
    resilience.reset()
    yield
    resilience.reset()


class TestOverload:
    @pytest.fixture(scope="class")
    def run(self):
        resilience.reset()
        with telemetry_session() as tel:
            report = run_loadtest(
                OVERLOAD_SPEC, ServiceConfig(**OVERLOAD_CONFIG)
            )
            metrics = tel.metrics.as_dict()
        return report, metrics

    def test_open_loop_sheds_under_overload(self, run):
        report, metrics = run
        (leg,) = report.legs
        assert leg.shed > 0
        assert metrics["loadtest.shed"] == leg.shed
        assert metrics["loadtest.offered"] == leg.offered

    def test_offered_splits_into_admitted_plus_shed(self, run):
        report, metrics = run
        (leg,) = run[0].legs
        assert leg.offered == leg.admitted + leg.shed
        assert leg.admitted == leg.completed + leg.failed
        assert metrics["loadtest.admitted"] == leg.admitted
        assert metrics["loadtest.completed"] == leg.completed

    def test_queue_wait_tail_spreads_past_median(self, run):
        (leg,) = run[0].legs
        assert leg.queue_wait_p50_s > 0.0
        assert leg.queue_wait_p99_s >= 2.0 * leg.queue_wait_p50_s

    def test_overload_breaches_slo(self, tmp_path, capsys):
        out = tmp_path / "tel"
        loadtest(
            OVERLOAD_SPEC,
            ServiceConfig(**OVERLOAD_CONFIG),
            telemetry_dir=out,
            slo_spec=SLO_SPEC,
        )
        art = load_run(out / "run.json")
        assert art["slo"]["ok"] is False
        assert "shed-rate" in art["slo"]["breached"]
        assert "queue-wait-p99" in art["slo"]["breached"]
        # The shed accounting travels in run.json's meta section ...
        leg = art["meta"]["loadtest"]["legs"][0]
        assert leg["shed"] > 0
        assert leg["offered"] == leg["admitted"] + leg["shed"]
        # ... and `repro slo check` gates on the breach with exit 2.
        code = main(["slo", "check", str(out / "run.json"),
                     "--spec", str(SLO_SPEC)])
        assert code == 2
        assert "BREACHED" in capsys.readouterr().out


class TestBelowCapacity:
    def test_cli_run_passes_slo_check(self, tmp_path, capsys):
        out = tmp_path / "tel"
        code = main([
            "loadtest", "--arrivals", "poisson", "--rate", "4",
            "--duration", "10", "--seed", "5", "--quick",
            "--telemetry", str(out), "--slo", str(SLO_SPEC),
        ])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "loadtest — poisson arrivals" in rendered

        art = load_run(out / "run.json")
        assert art["experiment"] == "loadtest"
        assert art["slo"]["ok"] is True
        (leg,) = art["meta"]["loadtest"]["legs"]
        assert leg["shed"] == 0
        assert leg["completed"] == leg["offered"]

        code = main(["slo", "check", str(out / "run.json"),
                     "--spec", str(SLO_SPEC)])
        assert code == 0
        assert "all objectives met" in capsys.readouterr().out


class TestDeterminism:
    def test_same_spec_reproduces_schedules_and_counts(self):
        config = ServiceConfig(**OVERLOAD_CONFIG)
        first = run_loadtest(OVERLOAD_SPEC, config)
        second = run_loadtest(OVERLOAD_SPEC, config)
        assert first.to_payload() == second.to_payload()
        assert (first.legs[0].schedule_digest
                == second.legs[0].schedule_digest)

    def test_cli_runs_are_deterministic(self, tmp_path, capsys):
        payloads = []
        for name in ("a", "b"):
            out = tmp_path / name
            assert main([
                "loadtest", "--arrivals", "poisson", "--rate", "6",
                "--duration", "8", "--seed", "3", "--quick",
                "--telemetry", str(out),
            ]) == 0
            payloads.append(load_run(out / "run.json")["meta"]["loadtest"])
        capsys.readouterr()
        assert payloads[0] == payloads[1]


class TestClosedLoop:
    def test_closed_loop_never_sheds_at_the_same_rate(self):
        spec = dataclasses.replace(OVERLOAD_SPEC, open_loop=False)
        report = run_loadtest(spec, ServiceConfig(**OVERLOAD_CONFIG))
        (leg,) = report.legs
        assert leg.shed == 0
        assert leg.admitted == leg.offered
        assert leg.completed == leg.offered
