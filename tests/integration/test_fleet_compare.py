"""Integration: heterogeneous cost-aware fleets, end to end.

The golden regression for the fleet-compare subsystem, pinned at quick
proxy sizing on the Table III mix with seed 0 (everything below runs on
the virtual clock, so the numbers are bit-for-bit deterministic):

- **Throughput/$ ordering**: the all-Arm fleet wins jobs-per-provisioned-
  dollar by a wide margin over the all-x86 fleet — the qualitative result
  of "Where to Encode: x86 vs Arm EC2" reproduced in serving mode.
- **Smart strictly beats random**: on *every* example fleet, cost-aware
  smart placement completes the same workload at strictly lower cost per
  completed job than the seeded random control.
- **Both Pareto objectives**: min-latency under a $/hour budget only ever
  uses within-budget workers; min-cost under an impossible deadline sheds
  every job with an explicit constraint error instead of silently
  violating it.
- **Artifacts**: the comparison round-trips through run.json
  (``meta.fleet_compare``), `repro report` renders the cost table,
  `repro report --diff` diffs throughput/$, and the
  ``repro fleet-compare --quick`` CLI exits 0 with the table on stdout.
"""

from __future__ import annotations

import pytest

from repro.api import ServiceConfig, table3_requests
from repro.cli import main
from repro.loadgen.clock import VirtualClock
from repro.obs import diff_runs, load_run, render_run
from repro.service import (
    EXAMPLE_FLEETS,
    TranscodeService,
    parse_fleet_spec,
    run_fleet_compare,
)

#: Proxy sizing shared with the service/loadtest integration tests.
QUICK = dict(width=48, height=32, n_frames=4)

#: The example-matrix entries by name (x86 / arm / mixed / table4).
FLEETS = {f.name: f for f in EXAMPLE_FLEETS}


@pytest.fixture(scope="module")
def quick_report():
    """One min-cost comparison across the whole example matrix."""
    return run_fleet_compare(count=8, seed=0, objective="min-cost", **QUICK)


class TestGoldenOrdering:
    def test_arm_wins_throughput_per_dollar(self, quick_report):
        ranked = quick_report.ranked()
        assert ranked[0].fleet.name == "arm"
        by_name = {r.fleet.name: r for r in quick_report.results}
        # The cited papers' qualitative margin: Arm ≳ 1.5x x86 on
        # throughput per dollar for the same workload.
        assert (by_name["arm"].jobs_per_dollar
                > 1.5 * by_name["x86"].jobs_per_dollar)
        # Every priced-instance fleet beats the legacy flat-rate
        # Table IV config fleet.
        for name in ("x86", "arm", "mixed"):
            assert (by_name[name].jobs_per_dollar
                    > by_name["table4"].jobs_per_dollar)

    def test_smart_strictly_beats_random_on_every_fleet(self, quick_report):
        for result in quick_report.results:
            assert result.completed == 8 and result.failed == 0
            assert (result.cost_per_completed_usd
                    < result.control_cost_per_completed_usd), result.fleet.name
            assert result.cost_margin_vs_control_pct > 0.0

    def test_deterministic_for_fixed_seed(self, quick_report):
        again = run_fleet_compare(
            count=8, seed=0, objective="min-cost", **QUICK
        )
        assert again.to_payload() == quick_report.to_payload()


class TestParetoObjectives:
    def test_min_latency_respects_budget(self):
        # $0.03/hour per worker admits only the a1.xlarge cores
        # ($0.0255); the faster-but-pricier c6g.xlarge ($0.034) must
        # never be used even though min-latency would prefer it.
        config = ServiceConfig(
            fleet=parse_fleet_spec(FLEETS["arm"].spec),
            objective="min-latency",
            budget_usd=0.03,
            **QUICK,
        )
        service = TranscodeService(config, clock=VirtualClock())
        service.submit_many(table3_requests(8))
        report = service.run_until_idle()
        assert report.completed == 8 and report.failed == 0
        workers = {s.worker for s in service.statuses()}
        assert workers and all("a1.xlarge" in w for w in workers)

    def test_min_latency_unconstrained_prefers_fast_workers(self):
        config = ServiceConfig(
            fleet=parse_fleet_spec(FLEETS["arm"].spec),
            objective="min-latency",
            **QUICK,
        )
        service = TranscodeService(config, clock=VirtualClock())
        service.submit_many(table3_requests(4))
        report = service.run_until_idle()
        assert report.completed == 4
        # c6g runs ~1.5x faster per core than a1; with 4 free c6g cores
        # and 4 jobs, min-latency must use them exclusively.
        workers = {s.worker for s in service.statuses()}
        assert workers and all("c6g.xlarge" in w for w in workers)

    def test_infeasible_deadline_sheds_with_explicit_error(self):
        config = ServiceConfig(
            fleet=parse_fleet_spec(FLEETS["mixed"].spec),
            objective="min-cost",
            deadline_s=1e-9,
            **QUICK,
        )
        service = TranscodeService(config, clock=VirtualClock())
        service.submit_many(table3_requests(4))
        report = service.run_until_idle()
        assert report.completed == 0 and report.failed == 4
        for status in service.statuses():
            assert status.state == "failed"
            assert "no feasible worker under min-cost constraints" in (
                status.error or ""
            )


class TestArtifacts:
    def test_meta_roundtrip_render_and_diff(self, tmp_path):
        from repro.api import fleet_compare

        out = tmp_path / "fc"
        report = fleet_compare(
            count=4, seed=0, telemetry_dir=out, **QUICK
        )
        assert len(report.results) == len(EXAMPLE_FLEETS)
        run = load_run(out / "run.json")
        payload = run["meta"]["fleet_compare"]
        assert payload["objective"] == "min-cost"
        assert {f["fleet"]["name"] for f in payload["fleets"]} == set(FLEETS)
        rendered = render_run(run)
        assert "fleet-compare:" in rendered
        for name in FLEETS:
            assert name in rendered
        diffed = diff_runs(run, run)
        assert "fleet-compare throughput/$" in diffed
        assert "+0" in diffed  # identical runs diff to zero deltas

    def test_cli_quick_exits_zero_and_prints_table(self, capsys):
        assert main(["fleet-compare", "--quick", "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "best throughput/$:" in out
        for name in FLEETS:
            assert name in out

    def test_cli_custom_fleets_and_objective(self, capsys):
        code = main([
            "fleet-compare", "--quick", "--count", "4",
            "--objective", "min-latency",
            "--fleet", "cheap=a1.xlarge",
            "--fleet", "fast=c6g.xlarge",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "objective=min-latency" in out
        assert "cheap" in out and "fast" in out

    def test_cli_rejects_malformed_fleet_clause(self):
        with pytest.raises(SystemExit) as exc:
            main(["fleet-compare", "--fleet", "no-equals-sign"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["fleet-compare", "--fleet", "bad=not_a_config"])
        assert exc.value.code == 2
