"""Integration: the paper's headline microarchitectural trends.

Small-scale versions of the Fig 3/5/7 shape checks — the benchmark
harness regenerates the full grids; these tests pin the directions.
"""

import pytest

from repro.codec.options import EncoderOptions
from repro.profiling.perf import profile_transcode
from repro.video.vbench import load_video

_SCALE = 24.0


@pytest.fixture(scope="module")
def cricket():
    return load_video("cricket", width=80, height=48, n_frames=12)


@pytest.fixture(scope="module")
def by_crf(cricket):
    return {
        crf: profile_transcode(
            cricket,
            EncoderOptions(crf=crf, refs=2, bframes=1),
            data_capacity_scale=_SCALE,
        ).counters
        for crf in (5, 23, 45)
    }


@pytest.fixture(scope="module")
def by_refs(cricket):
    return {
        refs: profile_transcode(
            cricket,
            EncoderOptions(crf=23, refs=refs, bframes=1),
            data_capacity_scale=_SCALE,
        ).counters
        for refs in (1, 4)
    }


class TestCrfTrends:
    def test_backend_bound_rises_with_crf(self, by_crf):
        assert by_crf[45].backend_bound > by_crf[5].backend_bound

    def test_bad_speculation_falls_with_high_crf(self, by_crf):
        assert by_crf[45].bad_speculation < by_crf[23].bad_speculation

    def test_branch_mpki_falls_with_high_crf(self, by_crf):
        assert by_crf[45].branch_mpki < by_crf[23].branch_mpki

    def test_data_mpki_rises_with_crf(self, by_crf):
        assert by_crf[45].l1d_mpki > by_crf[5].l1d_mpki

    def test_rob_stalls_rise_with_crf(self, by_crf):
        assert by_crf[45].stall_rob_pki > by_crf[5].stall_rob_pki

    def test_frontend_stays_small(self, by_crf):
        """'Front-end bound slots represent only a small fraction'."""
        for counters in by_crf.values():
            assert counters.frontend_bound < 20.0


class TestRefsTrends:
    def test_l2_mpki_rises_with_refs(self, by_refs):
        assert by_refs[4].l2_mpki > by_refs[1].l2_mpki

    def test_backend_bound_rises_with_refs(self, by_refs):
        assert by_refs[4].backend_bound > by_refs[1].backend_bound

    def test_branch_mpki_falls_with_refs(self, by_refs):
        assert by_refs[4].branch_mpki < by_refs[1].branch_mpki * 1.05

    def test_sb_stalls_fall_with_refs(self, by_refs):
        """The paper's notable exception: SB stalls shrink as refs grows."""
        assert by_refs[4].stall_sb_pki < by_refs[1].stall_sb_pki

    def test_frontend_falls_with_refs(self, by_refs):
        assert by_refs[4].frontend_bound <= by_refs[1].frontend_bound


class TestVideoComplexityTrends:
    @pytest.fixture(scope="class")
    def by_video(self):
        opts = EncoderOptions(crf=23, refs=2, bframes=1)
        out = {}
        for name in ("desktop", "cricket", "hall"):
            clip = load_video(name, width=80, height=48, n_frames=10)
            out[name] = profile_transcode(
                clip, opts, data_capacity_scale=_SCALE
            ).counters
        return out

    def test_entropy_raises_bad_speculation(self, by_video):
        assert (
            by_video["hall"].bad_speculation
            > by_video["desktop"].bad_speculation
        )

    def test_entropy_lowers_backend_bound(self, by_video):
        assert by_video["hall"].backend_bound < by_video["desktop"].backend_bound

    def test_entropy_raises_branch_mpki(self, by_video):
        assert by_video["hall"].branch_mpki > by_video["desktop"].branch_mpki

    def test_entropy_lowers_cache_mpki(self, by_video):
        assert by_video["hall"].l1d_mpki < by_video["desktop"].l1d_mpki

    def test_entropy_needs_more_bits(self, by_video):
        assert by_video["hall"].bitrate_kbps > by_video["desktop"].bitrate_kbps * 2
