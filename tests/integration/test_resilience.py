"""Integration: the sweep engine under injected chaos.

The fault-tolerance contract (ISSUE 3 acceptance criteria): whatever
combination of worker crashes, encoder exceptions, and cache corruption
a fault plan injects, the sweep's *final* payloads are byte-identical to
a clean run's — failures cost retries, pool restarts, or recomputation,
never results. The resume path is verified by encoder-call counting:
after a worker-kill interrupts a sweep, the ``--resume`` run recomputes
only the cells the first run could not finish.
"""

from __future__ import annotations

import json

import pytest

from repro import resilience
from repro.experiments.cache import ResultCache, record_to_payload
from repro.experiments.runner import QUICK, SweepFailure, SweepRunner
from repro.loadgen import LoadtestSpec, run_loadtest
from repro.obs import telemetry_session
from repro.resilience import RetryPolicy
from repro.resilience.faults import InjectedFault
from repro.service import ServiceConfig

#: QUICK proxy geometry with a trimmed grid — four cells exercise the
#: parallel, retry, and checkpoint paths as well as 24 would.
SCALE = QUICK.with_updates(
    name="quick-chaos",
    width=48,
    height=32,
    n_frames=4,
    crf_values=(23, 40),
    refs_values=(1, 2),
)

#: Zero-sleep policy so chaos tests retry instantly.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    """Every test starts from default resilience state with a fast
    retry policy, and leaves nothing installed behind."""
    resilience.reset()
    resilience.configure(retry=FAST_RETRY)
    yield
    resilience.reset()


@pytest.fixture(scope="module")
def clean_payloads():
    """The chaos-free ground truth, cell by cell."""
    records = SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()
    return [record_to_payload(r) for r in records]


def _payloads(records):
    return [record_to_payload(r) for r in records]


class TestEncoderExceptions:
    def test_transient_compute_fault_is_retried_serial(self, clean_payloads):
        resilience.install_plan("sweep.compute,at=1,max=1,raise=InjectedFault")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["retry.retries"] >= 1
        assert metrics["faults.injected.raise"] == 1
        assert "sweep.failed_cells" not in metrics

    def test_transient_worker_fault_is_retried_parallel(self, clean_payloads):
        # Each worker process raises once on task 0 (fault counters and
        # the activation cap are per-process); the retry budget of 3
        # outlasts the 2 workers, so the sweep must converge cleanly.
        resilience.install_plan("worker.task,match=0,max=1,raise=InjectedFault")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["retry.retries"] >= 1

    def test_fatal_exception_fails_without_retry(self):
        resilience.install_plan("sweep.compute,match=crf=40,raise=ValueError")
        with telemetry_session() as tel:
            with pytest.raises(SweepFailure) as excinfo:
                SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()
        failure = excinfo.value
        assert len(failure.failures) == 2  # crf=40 x refs in (1, 2)
        assert all(f.error == "ValueError" for f in failure.failures)
        assert all(f.attempts == 1 for f in failure.failures)  # no retries
        assert tel.metrics.as_dict()["sweep.failed_cells"] == 2


class TestWorkerCrashes:
    def test_killed_worker_interrupt_then_resume_is_identical(
        self, tmp_path, clean_payloads
    ):
        """The acceptance-criteria scenario: a worker crash at 50% of the
        sweep, then ``--resume`` — byte-identical results, recomputing
        only the incomplete cells (verified by encoder-call counting)."""
        resilience.configure(checkpoint_dir=tmp_path / "ckpt")
        resilience.install_plan("worker.task,match=2,kill")
        with telemetry_session() as tel:
            with pytest.raises(SweepFailure) as excinfo:
                SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        interrupted = tel.metrics.as_dict()
        failure = excinfo.value
        assert len(failure.failures) == 1
        assert interrupted["parallel.pool_restarts"] >= 1
        assert interrupted["sweep.checkpoint_writes"] >= 1
        # The manifest survived with the completed cells.
        manifests = list((tmp_path / "ckpt").glob("*.json"))
        assert len(manifests) == 1
        doc = json.loads(manifests[0].read_text())
        assert len(doc["cells"]) == 3
        assert len(doc["failed"]) == 1

        resilience.configure(fault_plan=False, resume=True)  # chaos off
        with telemetry_session() as tel2:
            records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        resumed = tel2.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        # Encoder-call counting: only the killed cell recomputed.
        assert resumed["sweep.resumed_cells"] == 3
        assert resumed["sweep.profiles"] == 1
        # Full success discards the manifest.
        assert not list((tmp_path / "ckpt").glob("*.json"))

    def test_collateral_tasks_survive_a_crashing_neighbor(
        self, tmp_path, clean_payloads
    ):
        """Tasks in flight beside the killed worker are charged an
        attempt but retried; every other cell still completes."""
        resilience.configure(checkpoint_dir=tmp_path / "ckpt")
        resilience.install_plan("worker.task,match=1,kill")
        with pytest.raises(SweepFailure) as excinfo:
            SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        failure = excinfo.value
        assert len(failure.failures) == 1
        assert failure.completed == 3
        assert failure.failures[0].attempts == FAST_RETRY.max_attempts


class TestCacheCorruption:
    def test_corrupt_entry_is_quarantined_and_recomputed(
        self, tmp_path, clean_payloads
    ):
        cache = ResultCache(tmp_path / "sweeps")
        SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()  # cold fill
        victim = cache._entry_paths()[0]
        victim.write_text("{not json", encoding="utf-8")

        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["sweep.profiles"] == 1    # only the damaged cell
        assert metrics["sweep.disk_hits"] == 3
        assert metrics["cache.quarantined"] == 1
        assert cache.stats().corrupt == 1
        assert victim.with_suffix(".corrupt").exists()

    def test_injected_read_faults_degrade_to_misses(
        self, tmp_path, clean_payloads
    ):
        cache = ResultCache(tmp_path / "sweeps")
        SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()  # cold fill
        resilience.install_plan("cache.read,raise=OSError")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["cache.read_giveups"] == 4
        assert metrics["sweep.profiles"] == 4  # every read failed -> recompute

    def test_injected_write_faults_do_not_fail_the_sweep(
        self, tmp_path, clean_payloads
    ):
        cache = ResultCache(tmp_path / "sweeps")
        resilience.install_plan("cache.write,raise=OSError")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["sweep.disk_write_failures"] == 4
        assert cache.stats().entries == 0  # nothing persisted, nothing broken

    def test_transient_read_fault_retries_then_hits(
        self, tmp_path, clean_payloads
    ):
        cache = ResultCache(tmp_path / "sweeps")
        SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()  # cold fill
        resilience.install_plan("cache.read,at=1,max=1,raise=OSError")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        metrics = tel.metrics.as_dict()
        assert _payloads(records) == clean_payloads
        assert metrics["retry.retries.cache.read"] == 1
        assert "sweep.profiles" not in metrics  # all four still disk hits
        assert metrics["sweep.disk_hits"] == 4


class TestLoadtestUnderChaos:
    """ISSUE 7 satellite: the open-loop load generator's shed-load
    accounting stays *closed* under injected worker crashes — every
    offered request is either completed, shed, or failed, and the
    crash retries surface as a ``retry_overhead`` latency series."""

    def test_accounting_closes_under_worker_crashes(self):
        # Crash the 3rd and 7th worker executions: two of the four
        # workers get isolated mid-run, halving capacity while the
        # open-loop driver keeps offering at 20 req/s.
        resilience.install_plan("service.worker,at=3|7,raise=RuntimeError")
        spec = LoadtestSpec(
            arrivals="poisson", rates=(20.0,), duration_s=10.0, seed=7
        )
        config = ServiceConfig(
            width=48, height=32, n_frames=4, queue_capacity=8
        )
        with telemetry_session() as tel:
            report = run_loadtest(spec, config)
        metrics = tel.metrics.as_dict()
        (leg,) = report.legs

        assert metrics["service.worker_crashes"] == 2
        assert leg.shed > 0  # overload sheds even before the crashes
        # The contract: nothing vanishes. offered = admitted + shed and
        # every admitted job reaches a terminal state.
        assert leg.offered == leg.completed + leg.shed + leg.failed
        assert metrics["loadtest.offered"] == leg.offered
        assert metrics["loadtest.shed"] == leg.shed
        # Crashed placements charge their wasted attempts to the job:
        # the retry_overhead stage series shows up in the histograms.
        assert any('stage="retry_overhead"' in key for key in metrics)


class TestCombinedChaos:
    def test_kitchen_sink_plan_still_converges_byte_identical(
        self, tmp_path, clean_payloads
    ):
        """Encoder exceptions + cache read faults together: the engine
        absorbs all of it and the results do not change."""
        cache = ResultCache(tmp_path / "sweeps")
        resilience.install_plan(
            "sweep.compute,at=1,max=1,raise=InjectedFault;"
            "cache.read,at=1,max=1,raise=OSError"
        )
        records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        assert _payloads(records) == clean_payloads

    def test_stall_faults_only_cost_time(self, clean_payloads):
        resilience.install_plan("sweep.compute,at=1,max=2,stall=0.01")
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()
        assert _payloads(records) == clean_payloads
        assert tel.metrics.as_dict()["faults.injected.stall"] >= 1
