"""Integration: compiler-optimization and scheduler experiments end to end."""

import pytest

from repro.codec.encoder import Encoder
from repro.codec.options import EncoderOptions
from repro.optim import build_autofdo, build_default, build_graphite, collect_profile
from repro.profiling.perf import profile_transcode
from repro.scheduling.casestudy import run_case_study
from repro.trace.recorder import RecordingTracer
from repro.video.vbench import load_video

_SCALE = 24.0


@pytest.fixture(scope="module")
def clip():
    return load_video("cricket", width=80, height=48, n_frames=8)


@pytest.fixture(scope="module")
def fdo_build(clip):
    streams = []
    for name in ("desktop", "holi"):
        train = load_video(name, width=80, height=48, n_frames=6)
        build = build_default()
        tracer = RecordingTracer(build.program)
        Encoder(EncoderOptions(crf=23, refs=2), tracer=tracer).encode(train)
        streams.append(tracer.stream)
    return build_autofdo(collect_profile(streams))


class TestAutoFdoEndToEnd:
    def test_speedup_in_paper_range(self, clip, fdo_build):
        opts = EncoderOptions(crf=23, refs=3)
        base = profile_transcode(clip, opts, data_capacity_scale=_SCALE)
        fdo = profile_transcode(
            clip, opts, program=fdo_build.program, data_capacity_scale=_SCALE
        )
        speedup = (base.report.cycles / fdo.report.cycles - 1) * 100
        # Paper: 4.66% average; accept a generous band at proxy scale.
        assert 0.5 < speedup < 15.0

    def test_improves_the_right_counters(self, clip, fdo_build):
        opts = EncoderOptions(crf=23, refs=3)
        base = profile_transcode(clip, opts, data_capacity_scale=_SCALE)
        fdo = profile_transcode(
            clip, opts, program=fdo_build.program, data_capacity_scale=_SCALE
        )
        # AutoFDO attacks i-cache misses and branch mispredictions...
        assert fdo.counters.l1i_mpki < base.counters.l1i_mpki
        assert fdo.counters.branch_mpki <= base.counters.branch_mpki
        # ...and leaves the data side alone.
        assert fdo.counters.l1d_mpki == pytest.approx(
            base.counters.l1d_mpki, rel=0.01
        )

    def test_bitstream_unchanged(self, clip, fdo_build):
        """Compiler optimization must not change encoder output."""
        opts = EncoderOptions(crf=23, refs=3)
        base = profile_transcode(clip, opts, data_capacity_scale=_SCALE)
        fdo = profile_transcode(
            clip, opts, program=fdo_build.program, data_capacity_scale=_SCALE
        )
        assert (
            base.encode.stream.bitstream == fdo.encode.stream.bitstream
        )


class TestGraphiteEndToEnd:
    def test_speedup_and_dcache_improvement(self, clip):
        opts = EncoderOptions(crf=23, refs=3)
        build = build_graphite()
        base = profile_transcode(clip, opts, data_capacity_scale=_SCALE)
        gr = profile_transcode(
            clip, opts, program=build.program, loop_opts=build.loop_opts,
            data_capacity_scale=_SCALE,
        )
        speedup = (base.report.cycles / gr.report.cycles - 1) * 100
        assert 0.5 < speedup < 15.0
        assert gr.counters.l1d_mpki < base.counters.l1d_mpki

    def test_bitstream_unchanged(self, clip):
        opts = EncoderOptions(crf=23, refs=3)
        build = build_graphite()
        base = profile_transcode(clip, opts, data_capacity_scale=_SCALE)
        gr = profile_transcode(
            clip, opts, program=build.program, loop_opts=build.loop_opts,
            data_capacity_scale=_SCALE,
        )
        assert base.encode.stream.bitstream == gr.encode.stream.bitstream


class TestSchedulerEndToEnd:
    @pytest.fixture(scope="class")
    def study(self):
        return run_case_study(
            width=80, height=48, n_frames=6, data_capacity_scale=_SCALE
        )

    def test_ordering_best_smart_random(self, study):
        speedups = {
            name: a.mean_speedup_pct for name, a in study.assignments.items()
        }
        assert speedups["best"] >= speedups["smart"] >= speedups["random"] - 0.5

    def test_every_config_gains_over_baseline(self, study):
        for task_id, per_config in study.cycles.items():
            base = study.baseline_cycles[task_id]
            for cycles in per_config.values():
                assert cycles <= base * 1.01

    def test_smart_beats_random(self, study):
        assert study.smart_vs_random_pct > 0.0

    def test_smart_close_to_best(self, study):
        smart = study.assignments["smart"].mean_speedup_pct
        best = study.assignments["best"].mean_speedup_pct
        assert smart >= best * 0.4  # captures a sizeable share of the oracle

    def test_one_to_one_respected(self, study):
        placement = study.assignments["smart"].placement
        assert sorted(placement.values()) == sorted(study.config_names)
