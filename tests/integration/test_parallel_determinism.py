"""Integration: parallel sweeps are bit-identical to serial ones, and a
warm persistent cache eliminates every encoder call.

The sweep engine's contract (ISSUE 2 acceptance criteria):

- serial and ``--jobs 2`` runs of the Fig 3 grid produce identical
  ``SweepRecord`` payloads cell-by-cell;
- a second, cache-warm invocation performs **zero** encoder calls,
  asserted via the obs kernel-call counters.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.cache import ResultCache, record_to_payload
from repro.experiments.runner import QUICK, SweepRunner
from repro.obs import load_run, telemetry_session

#: QUICK proxy geometry with a trimmed crf x refs grid: the determinism
#: property is per-cell, so six cells prove it as well as 24 would.
SCALE = QUICK.with_updates(
    name="quick-det", crf_values=(1, 23, 51), refs_values=(1, 4)
)


@pytest.fixture(scope="module")
def serial_records():
    return SweepRunner(SCALE, jobs=1, cache=False).crf_refs_sweep()


class TestSerialParallelDeterminism:
    def test_fig3_sweep_identical_cell_by_cell(self, serial_records):
        parallel_records = SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
        assert len(parallel_records) == len(serial_records) == 6
        for serial, par in zip(serial_records, parallel_records):
            assert record_to_payload(serial) == record_to_payload(par), (
                f"cell (crf={serial.crf}, refs={serial.refs}) diverged "
                f"under --jobs 2"
            )

    def test_parallel_merges_worker_metrics(self, tmp_path):
        """The parent session aggregates the fan-out's counters exactly
        as a serial run would."""
        with telemetry_session() as tel:
            SweepRunner(SCALE, jobs=2, cache=False).crf_refs_sweep()
            metrics = tel.metrics.as_dict()
        assert metrics["sweep.profiles"] == 6
        assert metrics["parallel.fan_outs"] == 1
        kernel_counters = [
            k for k in metrics if k.startswith("encoder.kernel_calls.")
        ]
        assert kernel_counters, "worker kernel-call counters must merge back"


class TestWarmCache:
    def test_warm_run_is_identical_and_encoder_free(self, tmp_path,
                                                    serial_records):
        cache = ResultCache(tmp_path / "sweeps")
        SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()  # cold fill

        warm_runner = SweepRunner(SCALE, jobs=1, cache=cache)  # empty memo
        with telemetry_session() as tel:
            warm_records = warm_runner.crf_refs_sweep()
            metrics = tel.metrics.as_dict()
        # Zero encoder calls: no profiles ran, no kernel-call counters.
        assert "sweep.profiles" not in metrics
        assert not any(k.startswith("encoder.kernel_calls.") for k in metrics)
        assert metrics["sweep.disk_hits"] == 6
        # And the cached payloads are exactly the fresh ones.
        for fresh, warm in zip(serial_records, warm_records):
            assert record_to_payload(fresh) == record_to_payload(warm)

    def test_corrupt_entry_recomputes(self, tmp_path, serial_records):
        cache = ResultCache(tmp_path / "sweeps")
        SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
        # Truncate every entry; the engine must recompute, not crash.
        for path in cache._entry_paths():
            path.write_text(path.read_text()[:25])
        with telemetry_session() as tel:
            records = SweepRunner(SCALE, jobs=1, cache=cache).crf_refs_sweep()
            metrics = tel.metrics.as_dict()
        assert metrics["sweep.profiles"] == 6
        for fresh, recomputed in zip(serial_records, records):
            assert record_to_payload(fresh) == record_to_payload(recomputed)


class TestCliWarmCache:
    @pytest.fixture(autouse=True)
    def _reset_engine(self):
        """``main`` configures process-wide engine defaults; undo them."""
        from repro.experiments import parallel

        yield
        parallel.configure(jobs=None, cache_dir=None)

    def test_second_tab1_invocation_runs_no_measurements(self, tmp_path,
                                                         capsys):
        cache_dir = str(tmp_path / "cache")
        cold_out = tmp_path / "cold"
        warm_out = tmp_path / "warm"
        assert main(["tab1", "--cache-dir", cache_dir,
                     "--telemetry", str(cold_out)]) == 0
        assert main(["tab1", "--cache-dir", cache_dir,
                     "--telemetry", str(warm_out)]) == 0
        cold = load_run(cold_out / "run.json")
        warm = load_run(warm_out / "run.json")
        assert "tab1.entropy_cache_hits" not in cold["metrics"]
        assert warm["metrics"]["tab1.entropy_cache_hits"] == 15
        assert not any(
            k.startswith("encoder.kernel_calls.") for k in warm["metrics"]
        )

    def test_no_cache_flag_disables_persistence(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["tab1", "--no-cache"]) == 0
        assert not (tmp_path / "env-cache").exists()
