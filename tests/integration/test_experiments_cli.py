"""Integration: the experiment harness and CLI produce the paper's outputs."""

import pytest

from repro.cli import main
from repro.experiments import fig3_heatmaps, fig4_projections, fig5_inefficiency
from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="module")
def micro_scale():
    return ExperimentScale(
        name="micro-int",
        width=64,
        height=48,
        n_frames=8,
        crf_values=(5, 23, 45),
        refs_values=(1, 4),
        sweep_video="cricket",
        videos=("desktop", "hall"),
        data_capacity_scale=24.0,
        fig8_combos=1,
    )


class TestFig3Pipeline:
    def test_shapes_and_render(self, micro_scale):
        result = fig3_heatmaps.run(micro_scale)
        assert result.backend.shape == (2, 3)
        deltas = result.corner_deltas()
        # Paper: crf+refs up => BE up, BS down.
        assert deltas["backend"] > 0
        assert deltas["bad_speculation"] < 0
        text = result.render()
        assert "Front-end bound" in text and "Back-end bound" in text

    def test_sweep_shared_across_figures(self, micro_scale):
        """Fig 4 and Fig 5 reuse Fig 3's sweep (memoized runner)."""
        import time

        fig3_heatmaps.run(micro_scale)
        t0 = time.perf_counter()
        fig4_projections.run(micro_scale)
        fig5_inefficiency.run(micro_scale)
        assert time.perf_counter() - t0 < 2.0  # cache hits only


class TestFig4Pipeline:
    def test_projection_a_quality_ladder(self, micro_scale):
        result = fig4_projections.run(micro_scale)
        psnrs = [l.psnr_db for l in result.projection_a]
        assert psnrs == sorted(psnrs, reverse=True)  # crf ladder

    def test_projection_b_time_grows_with_refs(self, micro_scale):
        result = fig4_projections.run(micro_scale)
        for crf in micro_scale.crf_values:
            times = result.projection_b[crf]
            assert times[4] > times[1] * 0.95

    def test_render(self, micro_scale):
        text = fig4_projections.run(micro_scale).render()
        assert "Projection A" in text and "Projection B" in text


class TestFig5Pipeline:
    def test_all_eight_panels(self, micro_scale):
        result = fig5_inefficiency.run(micro_scale)
        assert set(result.grids) == {
            "branch", "l1", "l2", "l3", "any", "rob", "rs", "sb",
        }

    def test_headline_trends(self, micro_scale):
        result = fig5_inefficiency.run(micro_scale)
        # Branch MPKI falls along crf; L1 MPKI and ROB stalls rise.
        assert result.trend_along_crf("branch") < 0
        assert result.trend_along_crf("l1") > 0
        assert result.trend_along_crf("rob") > 0
        # SB stalls fall along refs (the paper's exception).
        assert result.trend_along_refs("sb") < 0
        # L2 MPKI rises along refs.
        assert result.trend_along_refs("l2") > 0


class TestCli:
    def test_static_tables(self, capsys):
        assert main(["tab2"]) == 0
        assert main(["tab3"]) == 0
        assert main(["tab4"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out and "Table IV" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
