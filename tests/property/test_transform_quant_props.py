"""Property-based tests for the transform and quantization stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.quant import dequantize, qstep, quantize, trellis_quantize
from repro.codec.transform import (
    blockify_16x16,
    forward_4x4,
    inverse_4x4,
    unblockify_16x16,
)

residuals_st = arrays(
    dtype=np.float64,
    shape=(4, 4, 4),
    elements=st.floats(min_value=-255, max_value=255, allow_nan=False),
)
mb_st = arrays(
    dtype=np.int64,
    shape=(16, 16),
    elements=st.integers(min_value=-255, max_value=255),
)
qp_st = st.integers(min_value=0, max_value=51)


class TestTransformProps:
    @given(residuals_st)
    def test_roundtrip_identity(self, blocks):
        back = inverse_4x4(forward_4x4(blocks))
        assert np.allclose(back, blocks, atol=1e-8)

    @given(residuals_st)
    def test_parseval(self, blocks):
        coeffs = forward_4x4(blocks)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(blocks**2), rel=1e-9, abs=1e-6)

    @given(residuals_st, residuals_st)
    def test_linearity(self, a, b):
        lhs = forward_4x4(a + b)
        rhs = forward_4x4(a) + forward_4x4(b)
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(mb_st)
    def test_blockify_roundtrip(self, mb):
        assert np.array_equal(unblockify_16x16(blockify_16x16(mb)), mb)

    @given(mb_st)
    def test_blockify_preserves_values(self, mb):
        blocks = blockify_16x16(mb)
        assert sorted(blocks.ravel().tolist()) == sorted(mb.ravel().tolist())


class TestQuantProps:
    @given(residuals_st, qp_st)
    def test_reconstruction_error_bounded_by_step(self, coeffs, qp):
        recon = dequantize(quantize(coeffs, qp), qp)
        assert np.max(np.abs(recon - coeffs)) <= qstep(qp) + 1e-9

    @given(residuals_st, qp_st)
    def test_sign_preserved(self, coeffs, qp):
        levels = quantize(coeffs, qp)
        nz = levels != 0
        assert np.all(np.sign(levels[nz]) == np.sign(coeffs[nz]))

    @given(residuals_st)
    def test_monotone_sparsity_in_qp(self, coeffs):
        counts = [
            np.count_nonzero(quantize(coeffs, qp)) for qp in (5, 20, 35, 50)
        ]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    @given(residuals_st, qp_st)
    def test_quantize_idempotent_on_reconstruction(self, coeffs, qp):
        """Re-quantizing a dequantized signal reproduces the same levels."""
        levels = quantize(coeffs, qp)
        again = quantize(dequantize(levels, qp), qp)
        assert np.array_equal(levels, again)

    @given(residuals_st, qp_st, st.sampled_from([1, 2]))
    @settings(max_examples=100)
    def test_trellis_never_negative_rd(self, coeffs, qp, level):
        """Trellis output never has larger magnitude than its start point."""
        rounded = quantize(coeffs, qp, deadzone=0.5)
        rd = trellis_quantize(coeffs, qp, level=level)
        assert np.all(np.abs(rd) <= np.abs(rounded))

    @given(residuals_st, qp_st)
    def test_scaling_property(self, coeffs, qp):
        """Doubling QP+6 halves levels (within rounding)."""
        if qp > 45:
            return
        lo = quantize(coeffs, qp)
        hi = quantize(coeffs, qp + 6)
        # Levels at qp+6 should be roughly half (never more than lo).
        assert np.all(np.abs(hi) <= np.abs(lo))
