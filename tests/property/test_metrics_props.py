"""Property tests for the metrics registry's worker-merge protocol.

The sweep engine and the job service both rely on one invariant: a
worker process can export its registry (``export_state``), ship it
across a process boundary as plain JSON, and the parent can fold it in
(``merge_state``) without losing anything — including label dimensions
and histogram percentile estimates. These tests drive that with
Hypothesis:

- **Identity round-trip**: merging one worker's export into an empty
  registry reproduces the worker's ``as_dict`` exactly — labeled series
  keys, counts, sums, min/max, and interpolated percentiles included.
- **Fan-out equivalence**: splitting an observation stream across N
  simulated workers and merging them all back yields exactly the bucket
  counts, count/min/max, and percentile estimates of a single registry
  that saw every observation locally (sums match to float tolerance:
  addition order differs across shards).
- **JSON safety**: the exported state survives ``json.dumps`` /
  ``json.loads`` — the actual transport for checkpoints and artifacts.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, latency_buckets

_LABEL_SETS = (
    None,
    {"stage": "encode"},
    {"stage": "queue_wait"},
    {"stage": "encode", "config": "fe_op"},
    {"stage": "encode", "config": "bs_op", "policy": "smart"},
)

_labels = st.sampled_from(_LABEL_SETS)

_values = st.lists(
    st.floats(min_value=1e-7, max_value=1e3,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)

#: (labels, observations) per histogram family member.
_series = st.lists(st.tuples(_labels, _values), min_size=1, max_size=4)

_PCTS = ("p50", "p90", "p99")


def _observe_all(reg: MetricsRegistry, series) -> None:
    for labels, values in series:
        hist = reg.histogram("svc.latency_s", latency_buckets(), labels)
        for v in values:
            hist.observe(v)


class TestExportMergeRoundTrip:
    @given(series=_series)
    @settings(max_examples=60, deadline=None)
    def test_single_worker_identity(self, series):
        worker = MetricsRegistry()
        _observe_all(worker, series)
        worker.counter("svc.jobs", {"config": "a"}).inc(len(series))
        worker.gauge("svc.depth").set(3.5)

        parent = MetricsRegistry()
        parent.merge_state(worker.export_state())
        assert parent.as_dict() == worker.as_dict()

    @given(series=_series)
    @settings(max_examples=60, deadline=None)
    def test_export_survives_json_transport(self, series):
        worker = MetricsRegistry()
        _observe_all(worker, series)
        wire = json.loads(json.dumps(worker.export_state()))
        parent = MetricsRegistry()
        parent.merge_state(wire)
        assert parent.as_dict() == worker.as_dict()

    @given(
        series=_series,
        n_workers=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_fan_out_equivalence(self, series, n_workers):
        """N workers each observing a shard merge back to exactly the
        single-registry truth (percentiles included)."""
        reference = MetricsRegistry()
        _observe_all(reference, series)

        workers = [MetricsRegistry() for _ in range(n_workers)]
        for labels, values in series:
            for i, v in enumerate(values):
                hist = workers[i % n_workers].histogram(
                    "svc.latency_s", latency_buckets(), labels
                )
                hist.observe(v)

        parent = MetricsRegistry()
        for worker in workers:
            parent.merge_state(worker.export_state())

        ref_flat = reference.as_dict()
        got_flat = parent.as_dict()
        assert set(got_flat) == set(ref_flat)
        for key, ref_snap in ref_flat.items():
            got_snap = got_flat[key]
            for field in ("count", "min", "max", *_PCTS):
                assert got_snap[field] == ref_snap[field], (key, field)
            assert got_snap["mean"] == pytest.approx(
                ref_snap["mean"], rel=1e-9
            )
