"""Property tests for cost-aware smart placement (Hypothesis-driven):

- **Budget is law**: under any objective, a per-worker ``budget_usd``
  $/hour ceiling is never exceeded — every placed worker's hourly rate
  is within budget, over arbitrary heterogeneous fleets and workloads.
- **Deadlines are law**: every placed (job, worker) pair's predicted
  runtime meets the binding deadline (the job's own ``deadline_ms``
  when set, else the policy-wide ``deadline_s``).
- **No silent violations**: a job the policy leaves unplaced genuinely
  has no feasible worker — each free worker violates the deadline, the
  budget, or the min-cost waiting ceiling — so it stays queued for a
  later horizon (and is eventually shed with an explicit error by the
  service, exercised in ``tests/integration/test_fleet_compare.py``).
- **Cross-process determinism**: the same scenario (fleet spec,
  objective, constraints, jobs, seed) yields the identical
  ``job_id -> worker.name`` mapping in a freshly spawned interpreter,
  for both the smart policy and the seeded random control — no
  dependence on hash randomization or global RNG state.
"""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.profiling.counters import CounterSet
from repro.api.types import TranscodeRequest
from repro.service.jobs import Job
from repro.service.placement import (
    RandomPlacement,
    SmartPlacement,
    predicted_cost_usd,
    predicted_seconds,
)
from repro.service.workers import WorkerFleet, parse_fleet_spec

# -- scenario construction ---------------------------------------------

#: Fleet building blocks: priced instance types plus Table IV configs.
FLEET_NAMES = (
    "c5.xlarge", "m5.xlarge", "c6g.xlarge", "m6g.xlarge", "a1.xlarge",
    "fe_op", "be_op1", "be_op2", "bs_op", "baseline",
)


def make_counters(cycles: float, *, salt: int = 0) -> CounterSet:
    """A synthetic baseline counter set whose fields vary with ``salt``
    so the affinity model sees distinct jobs (mirrored verbatim in the
    cross-process subprocess snippet below)."""
    return CounterSet(
        time_seconds=cycles / 1e9, psnr_db=35.0, bitrate_kbps=500.0,
        retiring=40.0 + (salt % 5), bad_speculation=10.0,
        frontend_bound=15.0 + (salt % 3), backend_bound=35.0,
        memory_bound=20.0, core_bound=15.0,
        branch_mpki=2.0 + (salt % 4), l1d_mpki=12.0, l2_mpki=3.0,
        l3_mpki=0.3, l1i_mpki=4.0 + (salt % 2), itlb_mpki=0.02,
        stall_any_pki=120.0, stall_rob_pki=70.0, stall_rs_pki=35.0,
        stall_sb_pki=3.0, cycles=cycles, instructions=2.0 * cycles,
        ipc=2.0,
    )


def make_scenario(names, counts, cycles, deadlines_ms):
    """Build (jobs, counters, fleet) from drawn primitives."""
    spec = ",".join(
        f"{name}:{count}" for name, count in zip(names, counts)
    )
    fleet = WorkerFleet(parse_fleet_spec(spec))
    jobs = [
        Job(
            job_id=i + 1,
            request=TranscodeRequest(clip="cricket", deadline_ms=dl),
            seq=i + 1,
        )
        for i, (dl, _) in enumerate(zip(deadlines_ms, cycles))
    ]
    counters = {
        job.job_id: make_counters(c, salt=job.job_id)
        for job, c in zip(jobs, cycles)
    }
    return jobs, counters, fleet


fleet_names = st.lists(
    st.sampled_from(FLEET_NAMES), min_size=1, max_size=3, unique=True
)
fleet_counts = st.lists(
    st.integers(min_value=1, max_value=2), min_size=3, max_size=3
)
job_cycles = st.lists(
    st.floats(min_value=1e4, max_value=1e8,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=6,
)
job_deadlines_ms = st.lists(
    st.one_of(st.none(),
              st.floats(min_value=1.0, max_value=3.6e6, allow_nan=False)),
    min_size=6, max_size=6,
)
objectives = st.sampled_from(("min-cost", "min-latency"))
budgets = st.one_of(
    st.none(),
    st.floats(min_value=0.01, max_value=0.2,
              allow_nan=False, allow_infinity=False),
)
deadlines = st.one_of(
    st.none(),
    st.floats(min_value=0.05, max_value=500.0,
              allow_nan=False, allow_infinity=False),
)


def binding_deadline(policy: SmartPlacement, job: Job) -> float | None:
    if job.request.deadline_ms is not None:
        return job.request.deadline_ms / 1000.0
    return policy.deadline_s


def is_feasible(policy, job, worker, counters, workers) -> bool:
    """Mirror of the policy's constraint mask for one (job, worker)."""
    cs = counters[job.job_id]
    deadline = binding_deadline(policy, job)
    if deadline is not None and predicted_seconds(cs, worker) > deadline:
        return False
    if (policy.budget_usd is not None
            and worker.rate_per_hour > policy.budget_usd):
        return False
    if policy.objective == "min-cost" and deadline is None:
        floor = min(
            (predicted_cost_usd(cs, w) for w in workers
             if not w.suspect
             and (policy.budget_usd is None
                  or w.rate_per_hour <= policy.budget_usd)),
            default=None,
        )
        if (floor is not None
                and predicted_cost_usd(cs, worker) > 1.15 * floor):
            return False
    return True


# -- constraint properties ---------------------------------------------

class TestConstraints:
    @settings(max_examples=50, deadline=None)
    @given(names=fleet_names, counts=fleet_counts, cycles=job_cycles,
           deadlines_ms=job_deadlines_ms, objective=objectives,
           budget=budgets, deadline=deadlines)
    def test_budget_and_deadline_never_violated(
        self, names, counts, cycles, deadlines_ms, objective, budget,
        deadline,
    ):
        jobs, counters, fleet = make_scenario(
            names, counts, cycles, deadlines_ms
        )
        policy = SmartPlacement(
            objective=objective, deadline_s=deadline, budget_usd=budget
        )
        placement = policy.place(jobs, fleet.available(), counters)
        by_id = {job.job_id: job for job in jobs}
        for job_id, worker in placement.items():
            if budget is not None:
                assert worker.rate_per_hour <= budget
            binding = binding_deadline(policy, by_id[job_id])
            if binding is not None:
                assert (predicted_seconds(counters[job_id], worker)
                        <= binding)

    @settings(max_examples=50, deadline=None)
    @given(names=fleet_names, counts=fleet_counts, cycles=job_cycles,
           deadlines_ms=job_deadlines_ms, objective=objectives,
           budget=budgets, deadline=deadlines)
    def test_unplaced_jobs_truly_have_no_feasible_worker(
        self, names, counts, cycles, deadlines_ms, objective, budget,
        deadline,
    ):
        # The other half of "never silently violate": leaving a job
        # unplaced is only allowed when *every* free worker is
        # infeasible for it — such jobs stay queued rather than run in
        # violation.
        jobs, counters, fleet = make_scenario(
            names, counts, cycles, deadlines_ms
        )
        policy = SmartPlacement(
            objective=objective, deadline_s=deadline, budget_usd=budget
        )
        workers = fleet.available()
        placement = policy.place(jobs, workers, counters)
        considered = jobs[: len(workers)]
        for job in considered:
            if job.job_id in placement:
                continue
            taken = set(placement.values())
            assert all(
                not is_feasible(policy, job, w, counters, workers)
                for w in workers if w not in taken
            ), f"job {job.job_id} had a feasible idle worker but sat"

    @settings(max_examples=30, deadline=None)
    @given(names=fleet_names, counts=fleet_counts, cycles=job_cycles,
           objective=objectives)
    def test_infeasible_constraints_place_nothing(
        self, names, counts, cycles, objective
    ):
        # An impossible deadline masks every pair: the whole batch stays
        # queued (the service later sheds it with an explicit error).
        jobs, counters, fleet = make_scenario(
            names, counts, cycles, [None] * 6
        )
        policy = SmartPlacement(objective=objective, deadline_s=1e-12)
        assert policy.place(jobs, fleet.available(), counters) == {}

    @settings(max_examples=30, deadline=None)
    @given(names=fleet_names, counts=fleet_counts, cycles=job_cycles,
           objective=objectives)
    def test_feasible_scenarios_place_every_considered_job(
        self, names, counts, cycles, objective
    ):
        # With no constraints under min-latency, or a generous deadline
        # under min-cost, every job in the batch window must be placed.
        jobs, counters, fleet = make_scenario(
            names, counts, cycles, [None] * 6
        )
        deadline = 1e9 if objective == "min-cost" else None
        policy = SmartPlacement(objective=objective, deadline_s=deadline)
        workers = fleet.available()
        placement = policy.place(jobs, workers, counters)
        assert len(placement) == min(len(jobs), len(workers))
        # One job per worker, never sharing.
        names_used = [w.name for w in placement.values()]
        assert len(names_used) == len(set(names_used))


# -- cross-process determinism -----------------------------------------

#: Rebuilds one scenario from a JSON spec and prints the placement
#: mapping. Keep the counter construction in sync with
#: :func:`make_counters` above.
_SUBPROCESS_PLACE = """
import json, sys
from repro.profiling.counters import CounterSet
from repro.api.types import TranscodeRequest
from repro.service.jobs import Job
from repro.service.placement import RandomPlacement, SmartPlacement
from repro.service.workers import WorkerFleet, parse_fleet_spec

spec = json.loads(sys.argv[1])

def make_counters(cycles, salt):
    return CounterSet(
        time_seconds=cycles / 1e9, psnr_db=35.0, bitrate_kbps=500.0,
        retiring=40.0 + (salt % 5), bad_speculation=10.0,
        frontend_bound=15.0 + (salt % 3), backend_bound=35.0,
        memory_bound=20.0, core_bound=15.0,
        branch_mpki=2.0 + (salt % 4), l1d_mpki=12.0, l2_mpki=3.0,
        l3_mpki=0.3, l1i_mpki=4.0 + (salt % 2), itlb_mpki=0.02,
        stall_any_pki=120.0, stall_rob_pki=70.0, stall_rs_pki=35.0,
        stall_sb_pki=3.0, cycles=cycles, instructions=2.0 * cycles,
        ipc=2.0,
    )

fleet = WorkerFleet(parse_fleet_spec(spec["fleet"]))
jobs = [
    Job(job_id=j["job_id"],
        request=TranscodeRequest(clip="cricket",
                                 deadline_ms=j["deadline_ms"]),
        seq=j["job_id"])
    for j in spec["jobs"]
]
counters = {
    j["job_id"]: make_counters(j["cycles"], j["job_id"])
    for j in spec["jobs"]
}
if spec["policy"] == "random":
    policy = RandomPlacement(seed=spec["seed"])
else:
    policy = SmartPlacement(
        objective=spec["objective"], deadline_s=spec["deadline_s"],
        budget_usd=spec["budget_usd"],
    )
placement = policy.place(jobs, fleet.available(), counters)
print(json.dumps({str(k): w.name for k, w in placement.items()}))
"""


def _place_in_subprocess(spec: dict) -> dict[str, str]:
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PLACE, json.dumps(spec)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


class TestCrossProcessDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(names=fleet_names, counts=fleet_counts, cycles=job_cycles,
           deadlines_ms=job_deadlines_ms, objective=objectives,
           budget=budgets, deadline=deadlines,
           policy_name=st.sampled_from(("smart", "random")),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_scenario_same_mapping_in_fresh_interpreter(
        self, names, counts, cycles, deadlines_ms, objective, budget,
        deadline, policy_name, seed,
    ):
        jobs, counters, fleet = make_scenario(
            names, counts, cycles, deadlines_ms
        )
        if policy_name == "random":
            policy = RandomPlacement(seed=seed)
        else:
            policy = SmartPlacement(
                objective=objective, deadline_s=deadline,
                budget_usd=budget,
            )
        local = policy.place(jobs, fleet.available(), counters)
        spec = {
            "fleet": ",".join(
                f"{n}:{c}" for n, c in zip(names, counts)
            ),
            "policy": policy_name,
            "objective": objective,
            "deadline_s": deadline,
            "budget_usd": budget,
            "seed": seed,
            "jobs": [
                {"job_id": job.job_id,
                 "cycles": counters[job.job_id].cycles,
                 "deadline_ms": job.request.deadline_ms}
                for job in jobs
            ],
        }
        remote = _place_in_subprocess(spec)
        assert remote == {
            str(job_id): worker.name for job_id, worker in local.items()
        }
