"""Property-based tests for the video substrate and codec round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.decoder import decode
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions
from repro.video.frame import Frame, FrameSequence
from repro.video.io import read_ylm, write_ylm
from repro.video.metrics import psnr

lumas_st = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=16, max_value=48),
        st.integers(min_value=16, max_value=48),
    ),
    elements=st.integers(min_value=0, max_value=255),
)


class TestFrameProps:
    @given(lumas_st)
    def test_padding_preserves_content(self, luma):
        frame = Frame(luma)
        padded = frame.padded_luma()
        assert padded.shape[0] % 16 == 0 and padded.shape[1] % 16 == 0
        assert np.array_equal(padded[: frame.height, : frame.width], luma)

    @given(lumas_st)
    def test_psnr_reflexive(self, luma):
        assert psnr(luma, luma) == 100.0

    @given(lumas_st, st.integers(min_value=1, max_value=30))
    def test_psnr_decreases_with_uniform_shift(self, luma, shift):
        shifted = np.clip(luma.astype(int) + shift, 0, 255).astype(np.uint8)
        if np.array_equal(shifted, luma):
            return  # saturated everywhere
        assert psnr(luma, shifted) < 100.0


class TestYlmProps:
    @given(lumas=st.lists(lumas_st, min_size=1, max_size=4))
    @settings(max_examples=30)
    def test_io_roundtrip(self, lumas, tmp_path_factory):
        # All frames must share a resolution.
        shape = lumas[0].shape
        frames = [np.resize(l, shape).astype(np.uint8) for l in lumas]
        seq = FrameSequence.from_lumas(frames, fps=24.0)
        path = tmp_path_factory.mktemp("ylm") / "clip.ylm"
        write_ylm(path, seq)
        back = read_ylm(path)
        assert np.array_equal(back.lumas(), seq.lumas())


class TestCodecRoundTripProps:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        crf=st.sampled_from([5, 23, 40]),
        refs=st.sampled_from([1, 2]),
        bframes=st.sampled_from([0, 1]),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_content_roundtrips_exactly(self, seed, crf, refs, bframes):
        """The decoder reproduces the encoder's reconstruction bit-exactly
        for arbitrary content and parameter combinations."""
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 256, (32, 48)).astype(np.uint8)
        frames = [base]
        for _ in range(2):
            shift = rng.integers(-2, 3, 2)
            moved = np.roll(frames[-1], tuple(shift), axis=(0, 1))
            noisy = np.clip(
                moved.astype(int) + rng.integers(-4, 5, moved.shape), 0, 255
            ).astype(np.uint8)
            frames.append(noisy)
        video = FrameSequence.from_lumas(frames, fps=30.0)
        result = encode(
            video, EncoderOptions(crf=crf, refs=refs, bframes=bframes, scenecut=0)
        )
        decoded = decode(result.stream.bitstream)
        recon = np.stack(
            [f.recon[:32, :48] for f in result.stream.frames_in_display_order()]
        )
        assert np.array_equal(recon, np.stack([f.luma for f in decoded.video]))

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_psnr_nonincreasing_in_crf(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        video = FrameSequence.from_lumas([base, base], fps=30.0)
        opts = dict(refs=1, bframes=0, scenecut=0)
        psnrs = [
            encode(video, EncoderOptions(crf=crf, **opts)).psnr_db
            for crf in (5, 25, 45)
        ]
        assert psnrs[0] >= psnrs[1] >= psnrs[2]
