"""Property tests for the persistent result cache.

Four invariants (Hypothesis-driven):

- **Key stability**: a content key does not depend on the order key
  components (or dataclass fields) are supplied in;
- **Key sensitivity**: changing any single option or video-spec value
  changes the key;
- **Round-trip**: a record survives payload serialization and a disk
  write/read bit-for-bit;
- **Corruption tolerance**: truncated or garbled entries read as misses,
  never as errors or wrong records.
"""

from __future__ import annotations

import math
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.codec.options import EncoderOptions
from repro.experiments.cache import (
    ResultCache,
    SweepRecord,
    content_key,
    record_from_payload,
    record_to_payload,
)
from repro.profiling.counters import CounterSet

# -- strategies ---------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)

counter_sets = st.builds(
    CounterSet, **{name: finite_floats for name in CounterSet.field_names()}
)

records = st.builds(
    SweepRecord,
    video=st.sampled_from(["cricket", "desktop", "holi", "hall"]),
    crf=st.integers(min_value=0, max_value=51),
    refs=st.integers(min_value=1, max_value=16),
    preset=st.sampled_from(["ultrafast", "medium", "placebo"]),
    counters=counter_sets,
)

option_sets = st.builds(
    EncoderOptions,
    crf=st.integers(min_value=0, max_value=51),
    refs=st.integers(min_value=1, max_value=16),
    subme=st.integers(min_value=0, max_value=11),
    bframes=st.integers(min_value=0, max_value=16),
    me=st.sampled_from(["dia", "hex", "umh"]),
)

video_specs = st.fixed_dictionaries(
    {
        "name": st.sampled_from(["cricket", "desktop", "holi"]),
        "width": st.integers(min_value=16, max_value=256),
        "height": st.integers(min_value=16, max_value=256),
        "n_frames": st.integers(min_value=1, max_value=32),
    }
)


# -- key properties -----------------------------------------------------

class TestKeyStability:
    @given(options=option_sets, video=video_specs)
    def test_component_order_is_irrelevant(self, options, video):
        """Supplying the same components in any order (the dict-insertion
        analogue of reordering dataclass fields) yields the same key."""
        forward = content_key("sweep", options=options, video=video)
        reversed_ = content_key("sweep", video=video, options=options)
        assert forward == reversed_

    @given(options=option_sets, video=video_specs)
    def test_field_order_inside_components_is_irrelevant(self, options, video):
        shuffled = dict(reversed(list(video.items())))
        assert content_key("x", video=video) == content_key("x", video=shuffled)

    @given(options=option_sets)
    def test_key_is_deterministic_across_calls(self, options):
        assert content_key("sweep", options=options) == content_key(
            "sweep", options=options
        )


class TestKeySensitivity:
    @given(
        options=option_sets,
        field=st.sampled_from(["crf", "refs", "subme", "bframes"]),
        delta=st.integers(min_value=1, max_value=3),
    )
    def test_any_option_delta_changes_the_key(self, options, field, delta):
        lo, hi = {"crf": (0, 51), "refs": (1, 16),
                  "subme": (0, 11), "bframes": (0, 16)}[field]
        bumped = getattr(options, field) + delta
        if bumped > hi:
            bumped = lo + (bumped - hi - 1)
        changed = options.with_updates(**{field: bumped})
        assert content_key("sweep", options=options) != content_key(
            "sweep", options=changed
        )

    @given(video=video_specs)
    def test_video_spec_delta_changes_the_key(self, video):
        changed = dict(video, n_frames=video["n_frames"] + 1)
        assert content_key("sweep", video=video) != content_key(
            "sweep", video=changed
        )

    @given(options=option_sets)
    def test_kind_is_part_of_the_key(self, options):
        assert content_key("sweep", options=options) != content_key(
            "fig8", options=options
        )


# -- round-trip ---------------------------------------------------------

class TestRoundTrip:
    @given(record=records)
    def test_payload_round_trip_is_exact(self, record):
        assert record_from_payload(record_to_payload(record)) == record

    @given(record=records)
    @settings(max_examples=25)
    def test_disk_round_trip_is_exact(self, record):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            key = content_key("sweep", probe=record.as_row())
            cache.put_record(key, record)
            loaded = cache.get_record(key)
        assert loaded == record
        for name in CounterSet.field_names():
            fresh = getattr(record.counters, name)
            cached = getattr(loaded.counters, name)
            assert math.isclose(fresh, cached, rel_tol=0.0, abs_tol=0.0)


# -- corruption tolerance ----------------------------------------------

class TestCorruptionTolerance:
    @given(record=records, keep=st.integers(min_value=0, max_value=60))
    @settings(max_examples=25)
    def test_truncated_entry_is_a_miss(self, record, keep):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            key = content_key("sweep", probe=record.as_row())
            path = cache.put_record(key, record)
            path.write_text(path.read_text()[:keep])
            assert cache.get_record(key) is None
            assert cache.get_value(key) is None

    @given(
        record=records,
        garbage=st.sampled_from(
            ['{"cache_schema": 999, "payload": {}}', "not json at all",
             "[]", '{"payload": null}', ""]
        ),
    )
    @settings(max_examples=20)
    def test_garbled_entry_is_a_miss(self, record, garbage):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            key = content_key("sweep", probe=record.as_row())
            path = cache.put_record(key, record)
            path.write_text(garbage)
            assert cache.get_record(key) is None

    @given(record=records)
    @settings(max_examples=10)
    def test_dropped_counter_field_is_a_miss(self, record):
        """A payload written under an older CounterSet schema (missing or
        extra fields) must read as a miss, not half-construct."""
        payload = record_to_payload(record)
        del payload["counters"]["ipc"]
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            cache.put_value("0" * 64, payload, kind="sweep")
            assert cache.get_record("0" * 64) is None

    def test_missing_file_is_a_miss(self):
        with tempfile.TemporaryDirectory() as tmp:
            assert ResultCache(Path(tmp) / "nowhere").get_record("ab" * 32) is None
