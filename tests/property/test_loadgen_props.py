"""Property tests for the load generator's arrival processes
(Hypothesis-driven):

- **Schedule invariants**: every realized schedule is sorted,
  non-negative, and strictly inside ``[0, duration)``; inter-arrival
  gaps are non-negative and sum back to the last arrival time.
- **Poisson mean**: the empirical mean inter-arrival gap of a long
  Poisson schedule converges to ``1/rate`` (law of large numbers, with
  a generous tolerance so the test is seed-robust).
- **Diurnal integration**: the deterministic diurnal inversion yields
  exactly ``floor(Λ(duration))`` arrivals — the schedule *integrates*
  the configured rate trace, no sampling noise at all.
- **Cross-process determinism**: the same ``(kind, rate, duration,
  seed, extras)`` produces a byte-identical schedule (equal SHA-256
  digests) in a freshly spawned interpreter — no dependence on hash
  randomization, global RNG state, or wall time.
- **Merge order**: superposing two schedules preserves sort order and
  multiset content.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSchedule,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
    merge_schedules,
)

# -- strategies ---------------------------------------------------------

rates = st.floats(min_value=0.5, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
durations = st.floats(min_value=1.0, max_value=30.0,
                      allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

kinds_and_extras = st.one_of(
    st.tuples(st.just("poisson"), st.just({})),
    st.tuples(st.just("fixed"), st.just({})),
    st.tuples(
        st.just("diurnal"),
        st.fixed_dictionaries({
            "amplitude": st.floats(min_value=0.0, max_value=0.95,
                                   allow_nan=False),
            "period_s": st.floats(min_value=1.0, max_value=120.0,
                                  allow_nan=False),
        }),
    ),
    st.tuples(
        st.just("mmpp"),
        st.fixed_dictionaries({
            "burst": st.floats(min_value=1.0, max_value=32.0,
                               allow_nan=False),
            "sojourn_s": st.floats(min_value=0.5, max_value=20.0,
                                   allow_nan=False),
        }),
    ),
)


class TestScheduleInvariants:
    @settings(max_examples=40, deadline=None)
    @given(kind_extras=kinds_and_extras, rate=rates,
           duration=durations, seed=seeds)
    def test_sorted_nonnegative_within_duration(
        self, kind_extras, rate, duration, seed
    ):
        kind, extras = kind_extras
        schedule = make_arrivals(
            kind, rate, seed=seed, **extras
        ).schedule(duration)
        times = list(schedule)
        assert all(t >= 0.0 for t in times)
        assert times == sorted(times)
        assert all(t < duration for t in times)

    @settings(max_examples=40, deadline=None)
    @given(kind_extras=kinds_and_extras, rate=rates,
           duration=durations, seed=seeds)
    def test_inter_arrivals_recompose(
        self, kind_extras, rate, duration, seed
    ):
        kind, extras = kind_extras
        schedule = make_arrivals(
            kind, rate, seed=seed, **extras
        ).schedule(duration)
        gaps = schedule.inter_arrivals()
        assert len(gaps) == len(schedule)
        assert all(g >= 0.0 for g in gaps)
        if gaps:
            assert sum(gaps) == pytest.approx(schedule.times_s[-1])


class TestPoissonMean:
    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=2.0, max_value=20.0, allow_nan=False),
           seed=seeds)
    def test_mean_gap_converges_to_inverse_rate(self, rate, seed):
        # Long schedule: ~2000 expected arrivals tightens the sample
        # mean to a few percent of 1/rate.
        duration = 2000.0 / rate
        schedule = PoissonArrivals(rate, seed=seed).schedule(duration)
        gaps = schedule.inter_arrivals()
        assert len(gaps) > 500
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.15)


class TestDiurnalIntegration:
    @settings(max_examples=40, deadline=None)
    @given(rate=rates,
           amplitude=st.floats(min_value=0.0, max_value=0.95,
                               allow_nan=False),
           periods=st.integers(min_value=1, max_value=5),
           period_s=st.floats(min_value=2.0, max_value=30.0,
                              allow_nan=False))
    def test_count_integrates_rate_trace(
        self, rate, amplitude, periods, period_s
    ):
        """Over whole periods the sinusoid integrates out: the schedule
        holds floor(Λ(duration)) ≈ floor(rate * duration) arrivals.

        When Λ(duration) sits exactly on an integer the final crossing
        lands at t == duration, which the half-open interval [0, D)
        excludes — so exactness is asserted away from that boundary and
        ±1 at it.
        """
        process = DiurnalArrivals(
            rate, amplitude=amplitude, period_s=period_s
        )
        duration = periods * period_s
        lam = process.cumulative(duration)
        schedule = process.schedule(duration)
        if abs(lam - round(lam)) > 1e-6:
            assert len(schedule) == math.floor(lam)
        else:
            assert abs(len(schedule) - lam) <= 1
        assert math.floor(lam) == pytest.approx(
            math.floor(rate * duration), abs=1
        )

    def test_peak_to_trough_ratio_shapes_gaps(self):
        """High amplitude concentrates arrivals at the peak: the
        smallest gap (peak) is far below the largest (trough)."""
        schedule = DiurnalArrivals(
            10.0, amplitude=0.9, period_s=20.0
        ).schedule(20.0)
        gaps = schedule.inter_arrivals()[1:]
        assert min(gaps) < max(gaps) / 5.0


_SUBPROCESS_DIGEST = """
import json, sys
from repro.loadgen.arrivals import make_arrivals
spec = json.loads(sys.argv[1])
schedule = make_arrivals(
    spec["kind"], spec["rate"], seed=spec["seed"], **spec["extras"]
).schedule(spec["duration"])
print(json.dumps({"digest": schedule.digest(), "count": len(schedule)}))
"""


class TestCrossProcessDeterminism:
    @pytest.mark.parametrize("kind,extras", [
        ("poisson", {}),
        ("fixed", {}),
        ("diurnal", {"amplitude": 0.7, "period_s": 12.0}),
        ("mmpp", {"burst": 12.0, "sojourn_s": 3.0}),
    ])
    def test_same_seed_same_bytes_in_fresh_interpreter(self, kind, extras):
        spec = {"kind": kind, "rate": 9.0, "duration": 17.0,
                "seed": 1234, "extras": extras}
        local = make_arrivals(
            kind, spec["rate"], seed=spec["seed"], **extras
        ).schedule(spec["duration"])
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_DIGEST, json.dumps(spec)],
            capture_output=True, text=True, check=True,
        )
        remote = json.loads(proc.stdout)
        assert remote["digest"] == local.digest()
        assert remote["count"] == len(local)

    @settings(max_examples=25, deadline=None)
    @given(kind_extras=kinds_and_extras, rate=rates,
           duration=durations, seed=seeds)
    def test_same_seed_same_bytes_in_process(
        self, kind_extras, rate, duration, seed
    ):
        kind, extras = kind_extras
        a = make_arrivals(kind, rate, seed=seed, **extras).schedule(duration)
        b = make_arrivals(kind, rate, seed=seed, **extras).schedule(duration)
        assert a.times_s == b.times_s
        assert a.digest() == b.digest()


class TestMerge:
    @settings(max_examples=40, deadline=None)
    @given(rate_a=rates, rate_b=rates, seed_a=seeds, seed_b=seeds,
           duration=durations)
    def test_merge_preserves_sort_order_and_content(
        self, rate_a, rate_b, seed_a, seed_b, duration
    ):
        a = PoissonArrivals(rate_a, seed=seed_a).schedule(duration)
        b = PoissonArrivals(rate_b, seed=seed_b).schedule(duration)
        merged = merge_schedules(a, b)
        assert len(merged) == len(a) + len(b)
        times = list(merged)
        assert times == sorted(times)
        assert sorted(list(a) + list(b)) == times

    def test_registry_covers_every_kind(self):
        assert set(ARRIVAL_KINDS) == {"poisson", "fixed", "diurnal", "mmpp"}
        for kind in ARRIVAL_KINDS:
            assert isinstance(
                make_arrivals(kind, 2.0).schedule(1.0), ArrivalSchedule
            )
