"""Property-based tests on pipeline-level invariants (GOP, scheduling,
top-down accounting, adaptive selection)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.gop import plan_gop
from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType
from repro.scheduling.adaptive import OperatingPoint, pareto_frontier
from repro.uarch.topdown import TopdownBreakdown
from repro.video.frame import FrameSequence
from repro.video.synthetic import SceneSpec, generate_scene


def _clip(seed: int, n: int) -> FrameSequence:
    return generate_scene(
        SceneSpec(
            width=32, height=32, n_frames=n,
            motion_magnitude=(seed % 10) / 10.0,
            texture_detail=((seed // 10) % 10) / 10.0,
            seed=seed, name=f"prop{seed}",
        )
    )


class TestGopProps:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        n=st.integers(min_value=1, max_value=12),
        bframes=st.integers(min_value=0, max_value=4),
        b_adapt=st.sampled_from([0, 1, 2]),
        keyint=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_gop_structural_invariants(self, seed, n, bframes, b_adapt, keyint):
        clip = _clip(seed, n)
        options = EncoderOptions(
            bframes=bframes, b_adapt=b_adapt, keyint=keyint, scenecut=0
        )
        plan = plan_gop(clip, options)
        # 1. Exactly n frames, first is IDR.
        assert len(plan) == n
        assert plan.frame_types[0] is FrameType.I
        # 2. Decode order is a permutation.
        assert sorted(plan.decode_order) == list(range(n))
        # 3. No B-run exceeds bframes.
        run = 0
        for t in plan.frame_types:
            if t is FrameType.B:
                run += 1
                assert run <= max(bframes, 1)
            else:
                run = 0
        # 4. keyint honored: gaps between I frames <= keyint.
        i_positions = [i for i, t in enumerate(plan.frame_types) if t is FrameType.I]
        for a, b in zip(i_positions, i_positions[1:]):
            assert b - a <= keyint
        # 5. bframes=0 means no B pictures at all.
        if bframes == 0:
            assert FrameType.B not in plan.frame_types


class TestTopdownProps:
    @given(
        uops=st.floats(min_value=1, max_value=1e9),
        fe=st.floats(min_value=0, max_value=1e6),
        bs=st.floats(min_value=0, max_value=1e6),
        mem=st.floats(min_value=0, max_value=1e6),
        core=st.floats(min_value=0, max_value=1e6),
        width=st.sampled_from([2, 4, 8]),
    )
    def test_categories_always_sum_to_100(self, uops, fe, bs, mem, core, width):
        td = TopdownBreakdown.from_cycles(
            width=width, uops=uops, base_cycles=uops / width,
            fe_cycles=fe, bs_cycles=bs, mem_cycles=mem, core_cycles=core,
        )
        total = td.retiring + td.bad_speculation + td.frontend_bound + td.backend_bound
        assert total == pytest_approx_100()
        assert 0 <= td.bad_speculation <= 100
        assert 0 <= td.frontend_bound <= 100
        assert 0 <= td.backend_bound <= 100

    @given(
        uops=st.floats(min_value=1, max_value=1e6),
        stall=st.floats(min_value=0, max_value=1e6),
    )
    def test_more_memory_stall_more_backend_bound(self, uops, stall):
        kw = dict(width=4, uops=uops, base_cycles=uops / 4,
                  fe_cycles=0.0, bs_cycles=0.0, core_cycles=0.0)
        lo = TopdownBreakdown.from_cycles(mem_cycles=stall, **kw)
        hi = TopdownBreakdown.from_cycles(mem_cycles=stall * 2 + 1, **kw)
        assert hi.backend_bound >= lo.backend_bound


def pytest_approx_100():
    import pytest

    return pytest.approx(100.0, abs=1e-6)


points_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=51),  # crf
        st.integers(min_value=1, max_value=16),  # refs
        st.floats(min_value=10, max_value=60),  # psnr
        st.floats(min_value=1, max_value=1e4),  # kbps
        st.floats(min_value=1e-4, max_value=1.0),  # secs
    ),
    min_size=1,
    max_size=30,
)


def _mk_points(raw):
    from repro.experiments.runner import SweepRecord
    from repro.profiling.counters import CounterSet

    records = []
    for crf, refs, psnr, kbps, secs in raw:
        fields = {name: 0.0 for name in CounterSet.field_names()}
        fields.update(
            time_seconds=secs, psnr_db=psnr, bitrate_kbps=kbps,
            retiring=100.0, bad_speculation=0.0, frontend_bound=0.0,
            backend_bound=0.0, memory_bound=0.0, core_bound=0.0,
        )
        records.append(
            SweepRecord(
                video="v", crf=crf, refs=refs, preset="medium",
                counters=CounterSet(**fields),
            )
        )
    return records


class TestParetoProps:
    @given(points_st)
    def test_frontier_nonempty_and_subset(self, raw):
        records = _mk_points(raw)
        frontier = pareto_frontier(records)
        assert 1 <= len(frontier) <= len(records)

    @given(points_st)
    def test_no_point_on_frontier_is_dominated(self, raw):
        records = _mk_points(raw)
        frontier = pareto_frontier(records)
        for p in frontier:
            assert not any(q.dominates(p) for q in frontier if q is not p)

    @given(points_st)
    def test_every_dropped_point_is_dominated_by_someone(self, raw):
        records = _mk_points(raw)
        all_points = [OperatingPoint.from_record(r) for r in records]
        frontier = pareto_frontier(records)
        kept = {(p.crf, p.refs, p.psnr_db, p.bitrate_kbps, p.time_seconds)
                for p in frontier}
        for p in all_points:
            key = (p.crf, p.refs, p.psnr_db, p.bitrate_kbps, p.time_seconds)
            if key not in kept:
                assert any(q.dominates(p) for q in all_points)
