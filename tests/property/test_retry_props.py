"""Property tests for the resilience layer's retry policies and fault
plans (Hypothesis-driven):

- **Backoff bounds**: the raw schedule is monotone non-decreasing and
  capped at ``max_delay``; every jittered delay stays within
  ``raw * (1 ± jitter)`` and is non-negative.
- **Deterministic jitter**: a fixed (seed, token) reproduces the exact
  backoff schedule; changing the seed or token is allowed to change it.
- **Attempt-count invariants**: ``call_with_retry`` executes the
  function exactly ``min(failures + 1, max_attempts)`` times for
  retryable failures, exactly once for fatal ones, and sleeps exactly
  the policy's schedule prefix between attempts.
- **Fault-plan round-trips**: ``parse_fault_plan(format_fault_plan(p))``
  is the identity on well-formed plans, and malformed plan strings raise
  ``ValueError`` rather than installing silently-wrong chaos.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience.faults import (
    FaultSpec,
    InjectedFault,
    format_fault_plan,
    parse_fault_plan,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

# -- strategies ---------------------------------------------------------

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    growth=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

tokens = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=16
)

#: Field values that survive the clause grammar: no separators (";" ","),
#: no "=", no whitespace (the parser strips around clause boundaries).
_MATCH_ALPHABET = st.characters(
    min_codepoint=33, max_codepoint=126, exclude_characters=";,=| "
)

#: Per-action extras: the serialized form only carries fields relevant
#: to the action (a `raise` clause has no stall time), so round-trip
#: specs must keep irrelevant fields at their defaults.
_ACTION_EXTRAS = st.one_of(
    st.fixed_dictionaries(
        {
            "action": st.just("raise"),
            "exception": st.sampled_from(
                ["InjectedFault", "OSError", "TimeoutError", "ValueError"]
            ),
        }
    ),
    st.fixed_dictionaries(
        {
            "action": st.just("stall"),
            "stall_seconds": st.floats(
                min_value=0.0, max_value=2.0, allow_nan=False
            ),
        }
    ),
    st.fixed_dictionaries({"action": st.just("kill")}),
)

_SELECTOR_FIELDS = st.fixed_dictionaries(
    {
        "site": st.sampled_from(
            ["sweep.compute", "worker.task", "cache.read", "cache.write",
             "encoder.*", "sim.run"]
        ),
        "at": st.frozensets(
            st.integers(min_value=1, max_value=99), max_size=4
        ).map(lambda s: tuple(sorted(s))),
        "every": st.integers(min_value=0, max_value=12),
        "rate": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "seed": st.integers(min_value=0, max_value=999),
        "match": st.text(alphabet=_MATCH_ALPHABET, max_size=8),
        "max_triggers": st.integers(min_value=0, max_value=9),
    }
)

fault_specs = st.builds(
    lambda selectors, extras: FaultSpec(**selectors, **extras),
    selectors=_SELECTOR_FIELDS,
    extras=_ACTION_EXTRAS,
)


# -- backoff bounds -----------------------------------------------------

class TestBackoffBounds:
    @given(policy=policies)
    def test_raw_schedule_monotone_and_capped(self, policy):
        raws = [policy.raw_delay(a) for a in range(1, policy.max_attempts + 1)]
        assert all(d >= 0.0 for d in raws)
        assert all(d <= policy.max_delay for d in raws)
        assert all(b >= a for a, b in zip(raws, raws[1:]))

    @given(policy=policies, token=tokens)
    def test_jitter_stays_within_band(self, policy, token):
        for attempt in range(1, policy.max_attempts + 1):
            raw = policy.raw_delay(attempt)
            delay = policy.backoff_delay(attempt, token)
            assert delay >= 0.0
            lo = raw * (1.0 - policy.jitter)
            hi = raw * (1.0 + policy.jitter)
            assert lo - 1e-12 <= delay <= hi + 1e-12

    @given(policy=policies)
    def test_schedule_length_is_attempts_minus_one(self, policy):
        assert len(policy.schedule("t")) == policy.max_attempts - 1


class TestDeterministicJitter:
    @given(policy=policies, token=tokens)
    def test_fixed_seed_reproduces_schedule(self, policy, token):
        again = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            growth=policy.growth,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.schedule(token) == again.schedule(token)

    @given(policy=policies)
    def test_tokens_diversify_without_breaking_bounds(self, policy):
        """Distinct call sites may jitter differently, but both stay in
        the band (exact divergence is not required — zero jitter or zero
        delay collapses the band to a point)."""
        for token in ("cell:0", "cell:1"):
            for attempt in range(1, policy.max_attempts + 1):
                raw = policy.raw_delay(attempt)
                d = policy.backoff_delay(attempt, token)
                assert raw * (1 - policy.jitter) - 1e-12 <= d
                assert d <= raw * (1 + policy.jitter) + 1e-12


# -- attempt-count invariants ------------------------------------------

class TestAttemptCounts:
    @given(
        max_attempts=st.integers(min_value=1, max_value=6),
        failures=st.integers(min_value=0, max_value=8),
    )
    def test_retryable_failures_consume_the_budget_exactly(
        self, max_attempts, failures
    ):
        policy = RetryPolicy(
            max_attempts=max_attempts, base_delay=0.01, jitter=0.5, seed=3
        )
        calls = 0
        slept: list[float] = []

        def flaky():
            nonlocal calls
            calls += 1
            if calls <= failures:
                raise InjectedFault(f"boom {calls}")
            return "ok"

        if failures < max_attempts:
            result = call_with_retry(
                flaky, policy=policy, token="t", sleeper=slept.append
            )
            assert result == "ok"
            assert calls == failures + 1
        else:
            with pytest.raises(InjectedFault):
                call_with_retry(
                    flaky, policy=policy, token="t", sleeper=slept.append
                )
            assert calls == max_attempts
        # The sleeps are exactly the schedule prefix for the retries made.
        assert slept == policy.schedule("t")[: calls - 1]

    @given(max_attempts=st.integers(min_value=1, max_value=6))
    def test_fatal_exceptions_never_retry(self, max_attempts):
        policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.0)
        calls = 0

        def broken():
            nonlocal calls
            calls += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retry(broken, policy=policy, sleeper=lambda _d: None)
        assert calls == 1

    def test_success_means_one_call_no_sleep(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0)
        slept: list[float] = []
        assert (
            call_with_retry(lambda: 42, policy=policy, sleeper=slept.append)
            == 42
        )
        assert slept == []


# -- fault-plan round-trips --------------------------------------------

class TestFaultPlanRoundTrip:
    @settings(max_examples=200)
    @given(specs=st.lists(fault_specs, max_size=4))
    def test_format_parse_is_identity(self, specs):
        assert parse_fault_plan(format_fault_plan(specs)) == tuple(specs)

    @given(specs=st.lists(fault_specs, min_size=1, max_size=3))
    def test_canonical_form_is_a_fixed_point(self, specs):
        text = format_fault_plan(specs)
        assert format_fault_plan(parse_fault_plan(text)) == text

    @pytest.mark.parametrize(
        "bad",
        [
            "=kill",                        # no site
            "sweep.compute,at=x",           # non-integer index
            "sweep.compute,at=0",           # indices are 1-based
            "sweep.compute,rate=1.5",       # rate out of [0, 1]
            "sweep.compute,raise=Nonsense",  # unknown exception
            "sweep.compute,raise=OSError,kill",  # two actions
            "sweep.compute,frobnicate=1",   # unknown field
            "sweep.compute,kill=yes",       # kill takes no value
        ],
    )
    def test_malformed_plans_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)

    def test_empty_and_whitespace_plans_are_empty(self):
        assert parse_fault_plan("") == ()
        assert parse_fault_plan(" ; ;; ") == ()
