"""Property-based tests for the µarch substrate (cache, TLB, predictors)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.branch import BranchModel, two_level_mispredicts
from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.config import CacheParams
from repro.uarch.tlb import Tlb

lines_st = st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=400)
outcomes_st = st.lists(st.booleans(), min_size=1, max_size=2000)


class TestCacheProps:
    @given(lines_st)
    def test_misses_never_exceed_accesses(self, lines):
        c = Cache(CacheParams(1024, 2), "c")
        for line in lines:
            c.access_line(line)
        assert 0 <= c.stats.misses <= c.stats.accesses

    @given(lines_st)
    def test_misses_at_least_distinct_lines_bounded(self, lines):
        """Compulsory misses: at least one miss per distinct line touched
        (LRU never prefetches), and a fully-associative cache big enough
        to hold everything misses *exactly* once per distinct line."""
        n_distinct = len(set(lines))
        big = Cache(CacheParams(256 * 64, 256), "big")  # one set, 256 ways
        for line in lines:
            big.access_line(line)
        assert big.stats.misses == n_distinct

    @given(lines_st)
    def test_bigger_cache_never_more_misses_fully_assoc(self, lines):
        """LRU inclusion property: a larger fully-associative LRU cache
        never misses more than a smaller one on the same trace."""
        small = Cache(CacheParams(4 * 64, 4), "s")  # 1 set, 4 ways
        large = Cache(CacheParams(16 * 64, 16), "l")  # 1 set, 16 ways
        for line in lines:
            small.access_line(line)
            large.access_line(line)
        assert large.stats.misses <= small.stats.misses

    @given(lines_st)
    def test_immediate_rereference_always_hits(self, lines):
        c = Cache(CacheParams(1024, 4), "c")
        for line in lines:
            c.access_line(line)
            assert c.access_line(line) is True

    @given(lines_st)
    def test_hierarchy_levels_monotone(self, lines):
        """Deeper levels see at most the misses of shallower levels."""
        l1 = Cache(CacheParams(512, 2), "l1")
        l2 = Cache(CacheParams(2048, 4), "l2")
        hier = CacheHierarchy([l1, l2])
        addrs = np.array([l * 64 for l in lines], dtype=np.uint64)
        hier.access(addrs)
        assert l2.stats.accesses == l1.stats.misses
        assert l2.stats.misses <= l1.stats.misses
        assert hier.mem_accesses == l2.stats.misses


class TestTlbProps:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_miss_bounds(self, pages):
        tlb = Tlb(entries=8)
        addrs = np.array([p * 4096 for p in pages], dtype=np.uint64)
        tlb.access(addrs)
        assert len(set(pages)) >= 1
        assert tlb.misses >= 1  # first access always misses
        assert tlb.misses <= tlb.accesses

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=100))
    def test_small_working_set_converges_to_hits(self, pages):
        """Six pages in a 16-entry TLB: only compulsory misses."""
        tlb = Tlb(entries=16)
        addrs = np.array([p * 4096 for p in pages], dtype=np.uint64)
        tlb.access(addrs)
        assert tlb.misses == len(set(pages))


class TestBranchProps:
    @given(outcomes_st, st.sampled_from([2, 4, 6, 8]))
    def test_mispredicts_bounded(self, outcomes, history):
        arr = np.array(outcomes, dtype=bool)
        m = two_level_mispredicts(arr, history)
        assert 0.0 <= m <= arr.size + history

    @given(outcomes_st)
    def test_predictor_ordering_static_worst(self, outcomes):
        """On any taken-heavy stream, two-level beats static not-taken."""
        arr = np.array(outcomes, dtype=bool)
        static = BranchModel("static")
        static.record("s", arr)
        pm = BranchModel("pentium_m")
        pm.record("s", arr)
        m_static = static.evaluate(total_branches=arr.size).mispredicts
        m_pm = pm.evaluate(total_branches=arr.size).mispredicts
        # Static mispredicts every taken branch; the two-level predictor
        # at least learns a constant bias (modulo training, warm-up, and
        # aliasing overheads, which dominate on very short sequences).
        assert m_pm <= m_static + 0.6 * arr.size + 2.0

    @given(outcomes_st)
    def test_weight_scaling_linear(self, outcomes):
        arr = np.array(outcomes, dtype=bool)
        one = BranchModel("pentium_m")
        one.record("s", arr, weight=1.0)
        three = BranchModel("pentium_m")
        three.record("s", arr, weight=3.0)
        m1 = one.evaluate(total_branches=arr.size).mispredicts
        m3 = three.evaluate(total_branches=3 * arr.size).mispredicts
        assert m3 == m1 * 3

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=10, max_value=100))
    def test_periodic_patterns_fully_learned_by_tage(self, period, reps):
        """Any periodic pattern with period <= 16 is eventually learned."""
        rng = np.random.default_rng(period)
        pattern = rng.random(period) < 0.5
        outcomes = np.tile(pattern, reps)
        tage = BranchModel("tage")
        tage.record("s", outcomes)
        m = tage.evaluate(total_branches=outcomes.size).mispredicts
        # Steady state is perfect; only training/warmup misses remain.
        assert m < 0.15 * outcomes.size + 2 * period + 40
