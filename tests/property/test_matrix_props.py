"""Property tests for benchmark-matrix expansion and settings layering.

Three invariants (Hypothesis-driven):

- **Cross-product size**: ``expand()`` yields exactly the product of the
  axis lengths, with unique cell ids, in a deterministic order;
- **Duplicate rejection**: an axis repeating a value is always rejected
  (duplicate cells would double-count the same run);
- **Precedence round-trip**: for any split of knobs across the spec's
  ``settings:`` layer, the environment, and CLI overrides, the resolved
  ``Settings`` always honours spec < env < CLI, and a value placed in
  exactly one layer survives resolution unchanged.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.api import Settings
from repro.bench import MatrixSpec, SpecError, resolve_cell_settings

# -- strategies ---------------------------------------------------------

# Encode-leg axes with scalar values the spec loader would accept.
_AXIS_POOLS = {
    "clip": ("cricket", "landscape", "foreman", "news", "crowd"),
    "kernels": ("reference", "vectorized"),
    "crf": (18, 23, 28, 35),
    "refs": (1, 2, 4),
    "preset": ("fast", "medium", "slow"),
}


def _axis_strategy(name):
    pool = _AXIS_POOLS[name]
    return st.lists(
        st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True
    ).map(tuple)


axes_strategy = st.lists(
    st.sampled_from(sorted(_AXIS_POOLS)), min_size=1, max_size=4, unique=True
).flatmap(
    lambda names: st.tuples(
        *(st.tuples(st.just(n), _axis_strategy(n)) for n in names)
    )
)


def _spec(axes, settings=None):
    params = {} if any(name == "clip" for name, _v in axes) else {
        "clip": "cricket"
    }
    return MatrixSpec(
        name="prop", leg="encode", axes=axes, params=params,
        settings=settings or {},
    )


@contextmanager
def _env_jobs(value):
    """Pin or clear REPRO_JOBS without fixture machinery — hypothesis
    runs many examples per test call, so each example restores itself."""
    saved = os.environ.pop("REPRO_JOBS", None)
    if value is not None:
        os.environ["REPRO_JOBS"] = str(value)
    try:
        yield
    finally:
        os.environ.pop("REPRO_JOBS", None)
        if saved is not None:
            os.environ["REPRO_JOBS"] = saved
        Settings.reset()


# -- cross-product size -------------------------------------------------

@hyp_settings(max_examples=50, deadline=None)
@given(axes=axes_strategy)
def test_expansion_size_is_product_of_axis_lengths(axes):
    spec = _spec(axes)
    cells = spec.expand()
    expected = math.prod(len(values) for _name, values in axes)
    assert spec.n_cells() == expected
    assert len(cells) == expected
    ids = [c.cell_id for c in cells]
    assert len(set(ids)) == len(ids)
    assert [c.index for c in cells] == list(range(expected))
    # Expansion is deterministic: same spec, same layout.
    assert [c.cell_id for c in spec.expand()] == ids


@hyp_settings(max_examples=50, deadline=None)
@given(axes=axes_strategy, data=st.data())
def test_every_axis_combination_appears_exactly_once(axes, data):
    spec = _spec(axes)
    cells = spec.expand()
    combos = {tuple(c.values[name] for name, _v in axes) for c in cells}
    assert len(combos) == len(cells)
    # Spot-check one arbitrary combination is present.
    pick = tuple(
        data.draw(st.sampled_from(list(values)), label=name)
        for name, values in axes
    )
    assert pick in combos


# -- duplicate rejection ------------------------------------------------

@hyp_settings(max_examples=50, deadline=None)
@given(axes=axes_strategy, data=st.data())
def test_duplicated_axis_value_always_rejected(axes, data):
    idx = data.draw(st.integers(0, len(axes) - 1), label="axis")
    name, values = axes[idx]
    dupe = data.draw(st.sampled_from(list(values)), label="value")
    corrupted = list(axes)
    corrupted[idx] = (name, values + (dupe,))
    with pytest.raises(SpecError, match="double-count"):
        _spec(tuple(corrupted))


# -- precedence round-trip ----------------------------------------------

_JOBS = st.integers(min_value=1, max_value=32)


@hyp_settings(max_examples=50, deadline=None)
@given(
    spec_jobs=st.none() | _JOBS,
    env_jobs=st.none() | _JOBS,
    cli_jobs=st.none() | _JOBS,
)
def test_settings_precedence_round_trip(spec_jobs, env_jobs, cli_jobs):
    spec = _spec(
        (("clip", ("cricket",)),),
        settings=None if spec_jobs is None else {"jobs": spec_jobs},
    )
    overrides = {} if cli_jobs is None else {"jobs": cli_jobs}
    with _env_jobs(env_jobs):
        resolved = resolve_cell_settings(spec, spec.expand()[0], overrides)
    # Strongest layer that set the knob wins; default otherwise.
    expected = next(
        (v for v in (cli_jobs, env_jobs, spec_jobs) if v is not None),
        Settings().jobs,
    )
    assert resolved.jobs == expected


@hyp_settings(max_examples=50, deadline=None)
@given(jobs=_JOBS, layer=st.sampled_from(["spec", "env", "cli"]))
def test_single_layer_value_survives_resolution(jobs, layer):
    spec = _spec(
        (("clip", ("cricket",)),),
        settings={"jobs": jobs} if layer == "spec" else {},
    )
    overrides = {"jobs": jobs} if layer == "cli" else {}
    with _env_jobs(jobs if layer == "env" else None):
        resolved = resolve_cell_settings(spec, spec.expand()[0], overrides)
    assert resolved.jobs == jobs
