"""Property-based tests for the entropy coder (exp-Golomb, block coding)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.entropy import (
    BitReader,
    BitWriter,
    block_bits,
    decode_block,
    encode_block,
    read_se,
    read_ue,
    se_bits,
    ue_bits,
    write_se,
    write_ue,
)

blocks_st = arrays(
    dtype=np.int32,
    shape=(4, 4),
    elements=st.integers(min_value=-512, max_value=512),
)


class TestExpGolombProps:
    @given(st.integers(min_value=0, max_value=2**32))
    def test_ue_roundtrip(self, value):
        w = BitWriter()
        write_ue(w, value)
        assert read_ue(BitReader(w.getvalue())) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31))
    def test_se_roundtrip(self, value):
        w = BitWriter()
        write_se(w, value)
        assert read_se(BitReader(w.getvalue())) == value

    @given(st.integers(min_value=0, max_value=2**24))
    def test_ue_bits_exact(self, value):
        w = BitWriter()
        write_ue(w, value)
        assert w.bit_count == ue_bits(value)

    @given(st.integers(min_value=-(2**20), max_value=2**20))
    def test_se_bits_exact(self, value):
        w = BitWriter()
        write_se(w, value)
        assert w.bit_count == se_bits(value)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
    def test_sequence_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            write_ue(w, v)
        r = BitReader(w.getvalue())
        assert [read_ue(r) for _ in values] == values

    @given(st.integers(min_value=0, max_value=2**20))
    def test_code_length_odd(self, value):
        # exp-Golomb codes always have odd length: k zeros + (k+1) bits.
        assert ue_bits(value) % 2 == 1


class TestBlockCodingProps:
    @given(blocks_st)
    @settings(max_examples=200)
    def test_block_roundtrip(self, block):
        w = BitWriter()
        encode_block(w, block)
        decoded = decode_block(BitReader(w.getvalue()))
        assert np.array_equal(decoded, block)

    @given(blocks_st)
    def test_block_bits_matches_encoder(self, block):
        w = BitWriter()
        actual = encode_block(w, block)
        assert block_bits(block) == actual

    @given(blocks_st)
    def test_bits_lower_bound(self, block):
        # At least 1 bit (the nnz count) and monotone in nonzero count.
        assert block_bits(block) >= 1

    @given(blocks_st, st.integers(min_value=0, max_value=15))
    def test_zeroing_never_increases_cost(self, block, pos):
        """Dropping one coefficient can only shrink the bit cost."""
        before = block_bits(block)
        zeroed = block.copy()
        zeroed[pos // 4, pos % 4] = 0
        assert block_bits(zeroed) <= before

    @given(st.lists(blocks_st, min_size=1, max_size=8))
    def test_concatenated_blocks_roundtrip(self, blocks):
        w = BitWriter()
        for b in blocks:
            encode_block(w, b)
        r = BitReader(w.getvalue())
        for b in blocks:
            assert np.array_equal(decode_block(r), b)

    @given(st.binary(min_size=0, max_size=64))
    def test_decoder_never_hangs_on_garbage(self, data):
        """Arbitrary bytes either decode or raise cleanly."""
        try:
            decode_block(BitReader(data))
        except (ValueError, EOFError):
            pass
