"""Bit-identity between the reference backend and every other backend.

The optimized backends are optimizations, not approximations: every
kernel must produce *bitwise identical* outputs to the scalar reference
on the same inputs, so golden-output tests and paper figures are
backend-independent. These tests run each workload under every
*available* registered backend (``vectorized``, ``batched``, and
``numba`` when importable — an uninstalled optional backend simply is
not in :func:`repro.codec.kernels.available_backends`) and compare all
of them against ``reference`` — first kernel by kernel on random
inputs, then through a full encode.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.codec import kernels
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions


def _all_backends(fn):
    """Run ``fn()`` under each available backend; return {backend: result}."""
    out = {}
    for backend in kernels.available_backends():
        with kernels.backend_scope(backend):
            out[backend] = fn()
    return out


def _assert_identical_arrays(results):
    ref = np.asarray(results["reference"])
    for backend, result in results.items():
        arr = np.asarray(result)
        assert np.array_equal(ref, arr), f"{backend} diverged from reference"
        assert ref.dtype == arr.dtype, f"{backend} changed dtype"


def _assert_identical_values(results):
    ref = results["reference"]
    for backend, result in results.items():
        assert result == ref, f"{backend} diverged from reference"


# --- per-kernel equivalence -------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_transform_roundtrip_identical(seed):
    from repro.codec.transform import forward_4x4, inverse_4x4

    rng = np.random.default_rng(seed)
    blocks = rng.uniform(-255, 255, size=(64, 4, 4))
    fwd = _all_backends(lambda: forward_4x4(blocks))
    _assert_identical_arrays(fwd)
    inv = _all_backends(lambda: inverse_4x4(fwd["reference"]))
    _assert_identical_arrays(inv)


@pytest.mark.parametrize("seed", [3, 4])
def test_satd_identical(seed):
    from repro.codec.transform import satd_16x16, satd_batch

    # Integer-valued diffs, as the codec produces (uint8 pixel differences):
    # Hadamard sums of integers are exact in float64, so the backends'
    # different reduction orders still agree bitwise on this domain.
    rng = np.random.default_rng(seed)
    sets = rng.integers(-255, 256, size=(8, 16, 4, 4)).astype(np.float64)
    batch = _all_backends(lambda: satd_batch(sets))
    _assert_identical_arrays(batch)

    diff = rng.integers(-255, 256, size=(16, 16)).astype(np.float64)
    single = _all_backends(lambda: satd_16x16(diff))
    _assert_identical_values(single)


@pytest.mark.parametrize("seed", [5, 6])
def test_hadamard_sad_batch_identical(seed):
    from repro.codec.transform import hadamard_sad_batch

    rng = np.random.default_rng(seed)
    cur = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
    cands = rng.integers(0, 256, size=(12, 16, 16)).astype(np.uint8)
    results = _all_backends(lambda: hadamard_sad_batch(cur, cands))
    _assert_identical_arrays(results)


def test_entropy_encode_blocks_identical():
    from repro.codec.entropy import BitWriter, encode_blocks

    rng = np.random.default_rng(5)
    levels = rng.integers(-6, 7, size=(32, 4, 4)).astype(np.int32)

    def run():
        writer = BitWriter()
        widths = encode_blocks(writer, levels)
        return writer.getvalue(), list(widths)

    _assert_identical_values(_all_backends(run))


def test_entropy_encode_blocks_identical_empty_and_dense():
    from repro.codec.entropy import BitWriter, encode_blocks

    rng = np.random.default_rng(6)
    dense = rng.integers(-300, 301, size=(8, 4, 4)).astype(np.int32)
    dense[0] = 0  # all-zero block inside the batch
    zeros = np.zeros((4, 4, 4), dtype=np.int32)  # whole batch empty

    def run():
        writer = BitWriter()
        w1 = encode_blocks(writer, dense)
        w2 = encode_blocks(writer, zeros)
        return writer.getvalue(), list(w1), list(w2)

    _assert_identical_values(_all_backends(run))


def test_intra_prediction_identical(tiny_video):
    from repro.codec.intra import best_intra_16x16, predict_4x4_blocks

    src_frame = tiny_video.frames[0].luma
    recon = tiny_video.frames[1].luma
    for mb_y in range(0, src_frame.shape[0] - 15, 16):
        for mb_x in range(0, src_frame.shape[1] - 15, 16):
            src = src_frame[mb_y : mb_y + 16, mb_x : mb_x + 16]
            p4 = _all_backends(lambda: predict_4x4_blocks(src, recon, mb_y, mb_x))
            ref_pred, ref_sad, ref_tried = p4["reference"]
            for backend, (pred, sad, tried) in p4.items():
                assert np.array_equal(ref_pred, pred), backend
                assert ref_sad == sad, backend
                assert ref_tried == tried, backend

            p16 = _all_backends(lambda: best_intra_16x16(src, recon, mb_y, mb_x))
            ref = p16["reference"]
            for backend, res in p16.items():
                assert ref.mode == res.mode, backend
                assert np.array_equal(ref.prediction, res.prediction), backend
                assert ref.sad == res.sad, backend
                assert ref.n_modes_tried == res.n_modes_tried, backend


@pytest.mark.parametrize("method", ["dia", "hex", "umh", "esa"])
def test_motion_search_identical(tiny_video, method):
    from repro.codec.motion import PaddedReference, motion_search

    cur_plane = tiny_video.frames[1].luma
    ref_plane = tiny_video.frames[0].luma

    def run():
        ref = PaddedReference.from_plane(ref_plane, pad=24)
        out = []
        for y in range(0, cur_plane.shape[0] - 15, 16):
            for x in range(0, cur_plane.shape[1] - 15, 16):
                res = motion_search(
                    cur_plane[y : y + 16, x : x + 16], ref, y, x, method=method
                )
                out.append((res.mv_x, res.mv_y, res.cost, res.n_points))
        return out

    _assert_identical_values(_all_backends(run))


@pytest.mark.parametrize("subme", [3, 7, 9])
def test_subpel_refine_identical(tiny_video, subme):
    from repro.codec.motion import PaddedReference, motion_search, subpel_refine

    cur_plane = tiny_video.frames[1].luma
    ref_plane = tiny_video.frames[0].luma

    def run():
        ref = PaddedReference.from_plane(ref_plane, pad=24)
        out = []
        for y in range(0, cur_plane.shape[0] - 15, 16):
            for x in range(0, cur_plane.shape[1] - 15, 16):
                cur = cur_plane[y : y + 16, x : x + 16]
                start = motion_search(cur, ref, y, x, method="hex")
                res = subpel_refine(cur, ref, y, x, start, subme=subme)
                out.append((res.mv_x, res.mv_y, res.cost, res.n_points))
        return out

    _assert_identical_values(_all_backends(run))


@pytest.mark.parametrize("qp", [12, 28, 44])
def test_deblock_plane_identical(tiny_video, qp):
    from repro.codec.deblock import deblock_plane

    plane = tiny_video.frames[0].luma
    results = _all_backends(lambda: deblock_plane(plane, qp=qp))
    ref_plane, ref_edges = results["reference"]
    for backend, (out_plane, edges) in results.items():
        assert np.array_equal(ref_plane, out_plane), backend
        assert ref_edges == edges, backend


def test_chroma_plane_identical(tiny_video):
    from repro.codec.chroma import encode_chroma_plane
    from repro.codec.entropy import BitWriter

    plane = tiny_video.frames[0].luma[::2, ::2]
    prev = tiny_video.frames[1].luma[::2, ::2]

    def run():
        writer = BitWriter()
        encode_chroma_plane(writer, plane, prev, luma_qp=26)
        return writer.getvalue()

    _assert_identical_values(_all_backends(run))


# --- end-to-end encode equivalence ------------------------------------------


def _encode_digest(video, options):
    """Hash everything observable about an encode result."""
    h = hashlib.sha256()
    res = encode(video, options)
    h.update(res.stream.bitstream)
    for frame in res.stream.frames:
        h.update(frame.recon.tobytes())
    for fs in res.frame_stats:
        h.update(
            repr((fs.frame_type, fs.qp, fs.bits, fs.sad, fs.skip_mbs)).encode()
        )
    h.update(repr(res.psnr_db).encode())
    return h.hexdigest()


ENCODE_CONFIGS = [
    pytest.param(EncoderOptions(), id="medium-defaults"),
    pytest.param(
        EncoderOptions(me="umh", subme=9, bframes=2, refs=3), id="umh-subme9"
    ),
    pytest.param(
        EncoderOptions(me="esa", chroma=True, refs=2, trellis=2), id="esa-chroma"
    ),
    pytest.param(EncoderOptions(me="dia", subme=1, trellis=0), id="dia-fast"),
]


@pytest.mark.parametrize("options", ENCODE_CONFIGS)
def test_encode_bit_identical_across_backends(tiny_video, options):
    digests = _all_backends(lambda: _encode_digest(tiny_video, options))
    _assert_identical_values(digests)


def test_encode_bit_identical_static_scene(static_video):
    digests = _all_backends(lambda: _encode_digest(static_video, EncoderOptions()))
    _assert_identical_values(digests)
