"""Bit-identity between the reference and vectorized kernel backends.

The vectorized backend is an optimization, not an approximation: every
kernel must produce *bitwise identical* outputs to the scalar reference
on the same inputs, so golden-output tests and paper figures are
backend-independent. These tests compare both backends directly — first
kernel by kernel on random inputs, then through a full encode.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.codec import kernels
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions


def _both_backends(fn):
    """Run ``fn()`` under each backend; return {backend: result}."""
    out = {}
    for backend in kernels.KERNEL_BACKENDS:
        with kernels.use_backend(backend):
            out[backend] = fn()
    return out


def _assert_identical_arrays(results):
    ref, vec = results["reference"], results["vectorized"]
    assert np.array_equal(np.asarray(ref), np.asarray(vec))
    assert np.asarray(ref).dtype == np.asarray(vec).dtype


# --- per-kernel equivalence -------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_transform_roundtrip_identical(seed):
    from repro.codec.transform import forward_4x4, inverse_4x4

    rng = np.random.default_rng(seed)
    blocks = rng.uniform(-255, 255, size=(64, 4, 4))
    fwd = _both_backends(lambda: forward_4x4(blocks))
    _assert_identical_arrays(fwd)
    inv = _both_backends(lambda: inverse_4x4(fwd["reference"]))
    _assert_identical_arrays(inv)


@pytest.mark.parametrize("seed", [3, 4])
def test_satd_identical(seed):
    from repro.codec.transform import satd_16x16, satd_batch

    # Integer-valued diffs, as the codec produces (uint8 pixel differences):
    # Hadamard sums of integers are exact in float64, so the backends'
    # different reduction orders still agree bitwise on this domain.
    rng = np.random.default_rng(seed)
    sets = rng.integers(-255, 256, size=(8, 16, 4, 4)).astype(np.float64)
    batch = _both_backends(lambda: satd_batch(sets))
    _assert_identical_arrays(batch)

    diff = rng.integers(-255, 256, size=(16, 16)).astype(np.float64)
    single = _both_backends(lambda: satd_16x16(diff))
    assert single["reference"] == single["vectorized"]


def test_entropy_encode_blocks_identical():
    from repro.codec.entropy import BitWriter, encode_blocks

    rng = np.random.default_rng(5)
    levels = rng.integers(-6, 7, size=(32, 4, 4)).astype(np.int32)

    def run():
        writer = BitWriter()
        encode_blocks(writer, levels)
        return writer.getvalue()

    results = _both_backends(run)
    assert results["reference"] == results["vectorized"]


def test_intra_prediction_identical(tiny_video):
    from repro.codec.intra import best_intra_16x16, predict_4x4_blocks

    src_frame = tiny_video.frames[0].luma
    recon = tiny_video.frames[1].luma
    for mb_y in range(0, src_frame.shape[0] - 15, 16):
        for mb_x in range(0, src_frame.shape[1] - 15, 16):
            src = src_frame[mb_y : mb_y + 16, mb_x : mb_x + 16]
            p4 = _both_backends(lambda: predict_4x4_blocks(src, recon, mb_y, mb_x))
            ref_pred, ref_sad, ref_tried = p4["reference"]
            vec_pred, vec_sad, vec_tried = p4["vectorized"]
            assert np.array_equal(ref_pred, vec_pred)
            assert ref_sad == vec_sad
            assert ref_tried == vec_tried

            p16 = _both_backends(lambda: best_intra_16x16(src, recon, mb_y, mb_x))
            ref, vec = p16["reference"], p16["vectorized"]
            assert ref.mode == vec.mode
            assert np.array_equal(ref.prediction, vec.prediction)
            assert ref.sad == vec.sad
            assert ref.n_modes_tried == vec.n_modes_tried


@pytest.mark.parametrize("method", ["dia", "hex", "umh", "esa"])
def test_motion_search_identical(tiny_video, method):
    from repro.codec.motion import PaddedReference, motion_search

    cur_plane = tiny_video.frames[1].luma
    ref_plane = tiny_video.frames[0].luma

    def run():
        ref = PaddedReference.from_plane(ref_plane, pad=24)
        out = []
        for y in range(0, cur_plane.shape[0] - 15, 16):
            for x in range(0, cur_plane.shape[1] - 15, 16):
                res = motion_search(
                    cur_plane[y : y + 16, x : x + 16], ref, y, x, method=method
                )
                out.append((res.mv_x, res.mv_y, res.cost, res.n_points))
        return out

    results = _both_backends(run)
    assert results["reference"] == results["vectorized"]


@pytest.mark.parametrize("subme", [3, 7, 9])
def test_subpel_refine_identical(tiny_video, subme):
    from repro.codec.motion import PaddedReference, motion_search, subpel_refine

    cur_plane = tiny_video.frames[1].luma
    ref_plane = tiny_video.frames[0].luma

    def run():
        ref = PaddedReference.from_plane(ref_plane, pad=24)
        out = []
        for y in range(0, cur_plane.shape[0] - 15, 16):
            for x in range(0, cur_plane.shape[1] - 15, 16):
                cur = cur_plane[y : y + 16, x : x + 16]
                start = motion_search(cur, ref, y, x, method="hex")
                res = subpel_refine(cur, ref, y, x, start, subme=subme)
                out.append((res.mv_x, res.mv_y, res.cost, res.n_points))
        return out

    results = _both_backends(run)
    assert results["reference"] == results["vectorized"]


@pytest.mark.parametrize("qp", [12, 28, 44])
def test_deblock_plane_identical(tiny_video, qp):
    from repro.codec.deblock import deblock_plane

    plane = tiny_video.frames[0].luma
    results = _both_backends(lambda: deblock_plane(plane, qp=qp))
    ref_plane, ref_edges = results["reference"]
    vec_plane, vec_edges = results["vectorized"]
    assert np.array_equal(ref_plane, vec_plane)
    assert ref_edges == vec_edges


def test_chroma_plane_identical(tiny_video):
    from repro.codec.chroma import encode_chroma_plane
    from repro.codec.entropy import BitWriter

    plane = tiny_video.frames[0].luma[::2, ::2]
    prev = tiny_video.frames[1].luma[::2, ::2]

    def run():
        writer = BitWriter()
        encode_chroma_plane(writer, plane, prev, luma_qp=26)
        return writer.getvalue()

    results = _both_backends(run)
    assert results["reference"] == results["vectorized"]


# --- end-to-end encode equivalence ------------------------------------------


def _encode_digest(video, options):
    """Hash everything observable about an encode result."""
    h = hashlib.sha256()
    res = encode(video, options)
    h.update(res.stream.bitstream)
    for frame in res.stream.frames:
        h.update(frame.recon.tobytes())
    for fs in res.frame_stats:
        h.update(
            repr((fs.frame_type, fs.qp, fs.bits, fs.sad, fs.skip_mbs)).encode()
        )
    h.update(repr(res.psnr_db).encode())
    return h.hexdigest()


ENCODE_CONFIGS = [
    pytest.param(EncoderOptions(), id="medium-defaults"),
    pytest.param(
        EncoderOptions(me="umh", subme=9, bframes=2, refs=3), id="umh-subme9"
    ),
    pytest.param(
        EncoderOptions(me="esa", chroma=True, refs=2, trellis=2), id="esa-chroma"
    ),
    pytest.param(EncoderOptions(me="dia", subme=1, trellis=0), id="dia-fast"),
]


@pytest.mark.parametrize("options", ENCODE_CONFIGS)
def test_encode_bit_identical_across_backends(tiny_video, options):
    digests = _both_backends(lambda: _encode_digest(tiny_video, options))
    assert digests["reference"] == digests["vectorized"]


def test_encode_bit_identical_static_scene(static_video):
    digests = _both_backends(lambda: _encode_digest(static_video, EncoderOptions()))
    assert digests["reference"] == digests["vectorized"]
