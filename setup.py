"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build; this
shim lets ``python setup.py develop`` provide the editable install. All
project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
