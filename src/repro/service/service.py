"""The long-lived transcoding job service: queue → placement → fleet.

:class:`TranscodeService` accepts typed
:class:`~repro.api.types.TranscodeRequest` submissions through a bounded
queue (backpressure via :class:`~repro.service.queue.QueueFullError`),
profiles each job once on the *baseline* configuration, and dispatches
rounds of jobs onto a heterogeneous fleet of warm workers — each pinned
to one Table IV µarch config — using an online placement policy
(:mod:`repro.service.placement`).

The dispatch model is synchronous with **continuous admission**: jobs
are admitted the moment they arrive and placed by :meth:`TranscodeService.pump`
onto whichever workers are *free right now* (priority-major order) — no
round barrier waits for the whole fleet to drain. Each worker carries a
busy horizon (:attr:`~repro.service.workers.Worker.busy_until_ns`) on
the service clock; under the default wall clock execution is eager and
horizons are always in the past, while under a
:class:`~repro.loadgen.clock.VirtualClock` the horizon is charged with
simulated encode time (``cycles / clock_hz``), which is what lets the
open-loop load generator (:mod:`repro.loadgen`) drive sustained-traffic
scenarios — queue growth, shed load, latency knees — in milliseconds of
wall time, fully deterministically.

Resilience reuses the PR-3 layer: retryable exceptions re-execute in
place under the configured :class:`~repro.resilience.retry.RetryPolicy`;
a worker whose job still fails is marked crash-suspect and isolated, and
the job is re-placed on a different worker until its placement budget is
spent. Queue state is checkpointed atomically after every round so a
restarted service (``resume=True``) re-runs only unfinished jobs.

Observability: every job carries a ``trace_id`` and its spans
(``service.submit`` → ``service.place`` → ``service.job`` →
``worker.encode``) are tagged with the job id, so the Chrome-trace
export lays each job out on its own lane and ``repro report --timeline
JOB_ID`` renders its flame graph. Terminal jobs publish a wall-clock
latency decomposition — labeled ``service.stage_latency_s`` histograms
keyed by stage (queue_wait / placement / encode / retry_overhead / e2e),
µarch config, and policy — plus deadline-miss counters, which is exactly
the surface the SLO engine (:mod:`repro.obs.slo`) evaluates. All of it
lands in ``run.json`` when the caller runs under a telemetry session
(``repro serve --telemetry OUT/``).
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro import resilience
from repro.api.types import JobStatus, TranscodeRequest, TranscodeResult
from repro.loadgen.clock import Clock, WallClock
from repro.obs import session as obs
from repro.obs.metrics import latency_buckets
from repro.profiling.counters import CounterSet
from repro.resilience.retry import call_with_retry
from repro.scheduling.task import TABLE_III_TASKS
from repro.service.jobs import Job
from repro.service.placement import (
    OBJECTIVES,
    PLACEMENT_POLICIES,
    SmartPlacement,
    make_policy,
)
from repro.service.queue import BoundedJobQueue
from repro.service.workers import DEFAULT_FLEET, WorkerFleet
from repro.trace.kernels import build_program
from repro.trace.recorder import RecordingTracer
from repro.uarch.configs import config_by_name
from repro.uarch.simulator import simulate

__all__ = [
    "ServiceConfig",
    "ServiceReport",
    "TranscodeService",
    "run_service",
    "table3_requests",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes one service instance."""

    #: Fleet members: Table IV config names and/or parsed
    #: :class:`~repro.service.workers.FleetEntry` clauses (instance
    #: types expand to one worker per physical core).
    fleet: tuple = DEFAULT_FLEET
    policy: str = "smart"
    #: Smart-placement Pareto objective: ``throughput`` (seeded
    #: affinity behaviour), ``min-cost`` (dollars under the deadline),
    #: or ``min-latency`` (seconds under the $/hour budget).
    objective: str = "throughput"
    #: Policy-wide latency deadline in virtual seconds (a request's own
    #: ``deadline_ms`` overrides it per job).
    deadline_s: float | None = None
    #: Per-worker $/hour budget: cost-aware placement never uses a
    #: worker billed above this rate.
    budget_usd: float | None = None
    seed: int = 0
    queue_capacity: int = 64
    max_attempts: int = 3            # placement attempts per job
    width: int = 112                 # proxy clip sizing (casestudy scale)
    height: int = 64
    n_frames: int = 10
    data_capacity_scale: float = 48.0
    checkpoint_path: Path | None = None
    #: Virtual core frequency: simulated cycles charged per virtual
    #: second when the service runs on a VirtualClock (quick-scale proxy
    #: encodes land at a few hundred kilocycles, i.e. fractions of a
    #: virtual second at 1 MHz). Ignored under the wall clock, where
    #: stage durations are measured rather than charged.
    clock_hz: float = 1.0e6

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.policy!r}; "
                f"choose from {', '.join(PLACEMENT_POLICIES)}"
            )
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {', '.join(OBJECTIVES)}"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be > 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.budget_usd is not None and self.budget_usd <= 0:
            raise ValueError("budget_usd must be > 0")


def table3_requests(count: int = len(TABLE_III_TASKS)) -> list[TranscodeRequest]:
    """``count`` requests cycling the paper's Table III task mix."""
    if count < 1:
        raise ValueError("count must be >= 1")
    requests = []
    for i in range(count):
        task = TABLE_III_TASKS[i % len(TABLE_III_TASKS)]
        requests.append(
            TranscodeRequest(
                clip=task.video, preset=task.preset,
                crf=task.crf, refs=task.refs,
            )
        )
    return requests


@dataclass
class _ProfiledJob:
    """Warm per-job state: one traced encode, replayable on any config."""

    stream: Any
    program: Any
    counters: CounterSet
    baseline_cycles: float
    psnr_db: float
    bitrate_kbps: float
    encode_seconds: float


@dataclass
class ServiceReport:
    """One service run's outcome, with an optional control run attached."""

    policy: str
    jobs_total: int
    completed: int
    failed: int
    mean_latency_cycles: float
    mean_speedup_pct: float
    worker_crashes: int
    placements: dict[int, str]       # job_id -> "worker (config)"
    objective: str = "throughput"
    #: Dollars actually billed for worker occupancy (busy time x rate).
    cost_usd: float = 0.0
    #: The fleet's provisioned $/hour and what the run's makespan cost
    #: at that rate — the denominator of throughput-per-dollar.
    fleet_hourly_usd: float = 0.0
    makespan_s: float = 0.0
    provisioned_usd: float = 0.0
    e2e_p99_s: float = 0.0
    statuses: list[JobStatus] = field(repr=False, default_factory=list)
    control: "ServiceReport | None" = None

    @property
    def cost_per_completed_usd(self) -> float:
        """Billed dollars per completed job (0 when nothing completed)."""
        if self.completed == 0:
            return 0.0
        return self.cost_usd / self.completed

    @property
    def jobs_per_dollar(self) -> float:
        """Throughput per provisioned dollar: completed jobs over what
        the fleet cost to rent for the run's makespan."""
        if self.provisioned_usd <= 0:
            return 0.0
        return self.completed / self.provisioned_usd

    @property
    def margin_vs_control_pp(self) -> float | None:
        """Mean-speedup margin over the control policy, in percentage
        points (the serving-mode analogue of the paper's 3.72%)."""
        if self.control is None:
            return None
        return self.mean_speedup_pct - self.control.mean_speedup_pct

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form (the ``jobs.json`` status artifact)."""
        doc: dict[str, Any] = {
            "policy": self.policy,
            "jobs_total": self.jobs_total,
            "completed": self.completed,
            "failed": self.failed,
            "mean_latency_cycles": self.mean_latency_cycles,
            "mean_speedup_pct": self.mean_speedup_pct,
            "worker_crashes": self.worker_crashes,
            "objective": self.objective,
            "cost_usd": self.cost_usd,
            "fleet_hourly_usd": self.fleet_hourly_usd,
            "makespan_s": self.makespan_s,
            "provisioned_usd": self.provisioned_usd,
            "cost_per_completed_usd": self.cost_per_completed_usd,
            "jobs_per_dollar": self.jobs_per_dollar,
            "e2e_p99_s": self.e2e_p99_s,
            "placements": {str(k): v for k, v in self.placements.items()},
            "jobs": [s.to_payload() for s in self.statuses],
        }
        if self.control is not None:
            doc["margin_vs_control_pp"] = self.margin_vs_control_pp
            doc["control"] = self.control.to_payload()
        return doc

    def render(self) -> str:
        """Human-readable summary for ``repro serve``."""
        lines = [
            f"service run — policy={self.policy}: "
            f"{self.completed}/{self.jobs_total} jobs completed"
            + (f", {self.failed} failed" if self.failed else ""),
            f"  mean job latency: {self.mean_latency_cycles:,.0f} cycles",
            f"  mean speedup over baseline: {self.mean_speedup_pct:+.2f}%",
        ]
        if self.cost_usd > 0:
            lines.append(
                f"  cost: ${self.cost_usd:.6f} billed "
                f"(${self.cost_per_completed_usd:.6f}/job, fleet "
                f"${self.fleet_hourly_usd:.3f}/h, objective="
                f"{self.objective})"
            )
        if self.worker_crashes:
            lines.append(
                f"  worker crashes isolated: {self.worker_crashes}"
            )
        for status in self.statuses:
            placed = self.placements.get(status.job_id, "-")
            lines.append(
                f"    job {status.job_id}: {status.clip} "
                f"preset={status.preset} crf={status.crf} -> "
                f"{status.state} on {placed}"
                + (f" [{status.error}]" if status.error else "")
            )
        if self.control is not None:
            lines.append("")
            lines.append(
                f"control ({self.control.policy}): mean speedup "
                f"{self.control.mean_speedup_pct:+.2f}%, mean latency "
                f"{self.control.mean_latency_cycles:,.0f} cycles"
            )
            lines.append(
                f"{self.policy} - {self.control.policy} = "
                f"{self.margin_vs_control_pp:+.2f} pp (paper: +3.72)"
            )
        return "\n".join(lines)


class TranscodeService:
    """A long-lived transcoding job service over a warm worker fleet.

    Synchronous in-process client: :meth:`submit` admits requests,
    :meth:`run_until_idle` drains the queue, :meth:`status` /
    :meth:`results` / :meth:`report` observe the outcome. The CLI's
    ``repro serve`` wraps exactly this object.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        resume: bool = False,
        profile_cache: dict[tuple, _ProfiledJob] | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock if clock is not None else WallClock()
        self.queue = BoundedJobQueue(
            self.config.queue_capacity, clock=self.clock
        )
        self.fleet = WorkerFleet(
            self.config.fleet,
            data_capacity_scale=self.config.data_capacity_scale,
            clock_hz=self.config.clock_hz,
        )
        self.policy = make_policy(
            self.config.policy,
            seed=self.config.seed,
            objective=self.config.objective,
            deadline_s=self.config.deadline_s,
            budget_usd=self.config.budget_usd,
        )
        if isinstance(self.policy, SmartPlacement):
            self.policy.bind_fleet(self.fleet.workers)
        self.worker_crashes = 0
        self._next_id = 1
        self._next_seq = 0
        # Shared across service instances (e.g. a control run) so each
        # unique request is traced and baseline-profiled exactly once.
        self._profiles = profile_cache if profile_cache is not None else {}
        self._baseline = config_by_name(
            "baseline", data_capacity_scale=self.config.data_capacity_scale
        )
        if resume:
            self._restore_checkpoint()

    # -- submission ----------------------------------------------------
    def submit(self, request: TranscodeRequest) -> JobStatus:
        """Admit one request; raises
        :class:`~repro.service.queue.QueueFullError` at capacity."""
        job = Job(job_id=self._next_id, request=request, seq=self._next_seq)
        tel = obs.current()
        base = tel.trace_id if tel is not None else uuid.uuid4().hex[:12]
        job.trace_id = f"{base}-j{job.job_id}"
        with obs.span("service.submit", job=job.job_id, clip=request.clip,
                      trace=job.trace_id):
            self.queue.put(job)
        self._next_id += 1
        self._next_seq += 1
        obs.inc("service.jobs_submitted")
        self._write_checkpoint()
        return job.status()

    def submit_many(
        self, requests: list[TranscodeRequest]
    ) -> list[JobStatus]:
        """Admit several requests (stops at the first rejection)."""
        return [self.submit(r) for r in requests]

    # -- the dispatch loop ---------------------------------------------
    def pump(self) -> int:
        """One continuous-admission dispatch pass: place every queued job
        a currently-free worker can take, execute the placements, and
        return how many jobs ran.

        Queue wait ends — and is stamped — the instant the placement
        decision lands, so ``queue_wait_s == placement_time -
        admission_time`` by construction (the old round-based loop
        folded earlier batch members' encode time into later members'
        queue wait). Returns 0 when nothing is dispatchable right now:
        the queue is empty, every free worker is busy until later on the
        service clock, or every worker is isolated.
        """
        executed = 0
        while self.queue.pending():
            now = self.clock.now_ns()
            free = self.fleet.free(now)
            if not free:
                break
            batch = self.queue.pop_ready(len(free))
            counters = {
                job.job_id: self._profile(job).counters for job in batch
            }
            place_start = self.clock.now_ns()
            with obs.span("service.place", policy=self.policy.name,
                          batch=len(batch)):
                placement = self.policy.place(batch, free, counters)
            placed_at = self.clock.now_ns()
            place_s = (placed_at - place_start) / 1e9
            ran_this_pass = 0
            for job in batch:
                worker = placement.get(job.job_id)
                if worker is None:  # more jobs than free workers
                    continue
                # The placement decision is shared by the whole batch;
                # each placed member waited for all of it.
                job.add_timing("placement_s", place_s)
                if job.enqueued_ns is not None:
                    job.add_timing(
                        "queue_wait_s", (placed_at - job.enqueued_ns) / 1e9
                    )
                self._execute(job, worker, start_ns=placed_at)
                ran_this_pass += 1
            executed += ran_this_pass
            self._write_checkpoint()
            if ran_this_pass == 0:  # policy placed nothing; avoid spinning
                break
        return executed

    def run_until_idle(self) -> ServiceReport:
        """Dispatch until no job is pending, then report.

        Repeatedly :meth:`pump`\\ s; when nothing is dispatchable because
        every available worker is busy until later on a virtual clock,
        time is advanced to the earliest busy horizon (under the wall
        clock horizons are always already past). Jobs that exhaust their
        placement budget — or find every worker crash-suspect — finish
        ``failed``; the service itself never raises for job-level
        trouble.
        """
        with obs.span("service.drain", policy=self.policy.name):
            while self.queue.pending():
                if not self.fleet.available():
                    for job in self.queue.pop_ready(self.queue.pending()):
                        job.mark_failed("no workers available (all isolated)")
                        obs.inc("service.jobs_failed")
                    self._write_checkpoint()
                    break
                if self.pump():
                    continue
                # Nothing placed; if any available worker frees up later
                # on the service clock, advance there and retry — under
                # cost-aware objectives a queued job may be *waiting*
                # for a cheaper (or deadline-feasible) busy worker.
                now = self.clock.now_ns()
                future = [
                    w.busy_until_ns for w in self.fleet.available()
                    if w.busy_until_ns > now
                ]
                if future:
                    self.clock.advance_to_ns(min(future))
                    continue
                # Free workers exist *now* but the policy placed nothing
                # — nothing will change on its own; fail what is left
                # rather than spinning forever. Under a cost-aware
                # objective this is the explicit shed path: the job had
                # no worker satisfying its deadline/budget constraints.
                constrained = (
                    isinstance(self.policy, SmartPlacement)
                    and self.policy.objective != "throughput"
                )
                for job in self.queue.pop_ready(self.queue.pending()):
                    if constrained:
                        job.mark_failed(
                            "shed: no feasible worker under "
                            f"{self.policy.objective} constraints "
                            f"(deadline_s={self.policy.deadline_s}, "
                            f"budget_usd={self.policy.budget_usd})"
                        )
                        obs.inc("service.jobs_shed_infeasible")
                    else:
                        job.mark_failed(
                            "placement policy returned no placement"
                        )
                    obs.inc("service.jobs_failed")
                self._write_checkpoint()
                break
        return self.report()

    def _charge_ns(self, cycles: float, worker) -> int:
        """Simulated-time cost of ``cycles`` on ``worker``'s virtual
        clock (instance cores run at their family's relative frequency,
        so identical cycle counts convert to different durations)."""
        return int(round(cycles / worker.clock_hz * 1e9))

    def _bill(self, job: Job, worker, busy_ns: int) -> None:
        """Bill ``busy_ns`` of ``worker`` occupancy to ``job`` and the
        run's cost counters (crashed attempts are still paid for)."""
        if busy_ns <= 0:
            return
        cost = worker.charge(busy_ns)
        job.cost_usd += cost
        obs.observe("service.job_cost_usd", cost)

    def _execute(self, job: Job, worker, *, start_ns: int | None = None) -> None:
        """Run one placed job, with in-place retries and crash isolation.

        Every execution attempt is individually costed: the successful
        attempt's duration is the job's ``encode_s``, everything burned
        before it (failed attempts on this worker) plus the whole budget
        of a crashed placement counts as ``retry_overhead_s``. Under the
        wall clock those costs are measured; under a virtual clock they
        are *charged* deterministically — ``cycles / clock_hz`` for the
        successful attempt, the job's baseline cycles for each failed
        one (the work ran, then died) — and pushed onto the worker's
        busy horizon so parallel workers overlap correctly in simulated
        time.
        """
        profiled = self._profile(job)
        t_start = self.clock.now_ns() if start_ns is None else start_ns
        job.mark_running(worker.name)
        attempt_ns: list[int] = []

        def _attempt() -> float:
            start = self.clock.now_ns()
            try:
                return worker.execute(job, profiled.stream, profiled.program)
            finally:
                attempt_ns.append(self.clock.now_ns() - start)

        virtual = self.clock.virtual
        fail_charge = self._charge_ns(profiled.baseline_cycles, worker)
        with obs.span(
            "service.job",
            job=job.job_id,
            clip=job.request.clip,
            worker=worker.name,
            config=worker.config_name,
            policy=self.policy.name,
            attempt=job.attempts,
            trace=job.trace_id,
        ):
            try:
                cycles = call_with_retry(
                    _attempt,
                    policy=resilience.retry_policy(),
                    token=f"service.job.{job.job_id}",
                    label="service.worker",
                )
            except Exception as exc:
                wasted_ns = (len(attempt_ns) * fail_charge if virtual
                             else sum(attempt_ns))
                job.add_timing("retry_overhead_s", wasted_ns / 1e9)
                self._bill(job, worker, wasted_ns)
                done_ns = t_start + wasted_ns
                worker.busy_until_ns = max(worker.busy_until_ns, done_ns)
                self._on_worker_crash(job, worker, exc, done_ns=done_ns)
                return
        if virtual:
            encode_ns = self._charge_ns(cycles, worker)
            wasted_ns = (len(attempt_ns) - 1) * fail_charge
        else:
            encode_ns = attempt_ns[-1]
            wasted_ns = sum(attempt_ns[:-1])
        job.add_timing("encode_s", encode_ns / 1e9)
        if wasted_ns:
            job.add_timing("retry_overhead_s", wasted_ns / 1e9)
        self._bill(job, worker, wasted_ns + encode_ns)
        done_ns = t_start + wasted_ns + encode_ns
        worker.busy_until_ns = max(worker.busy_until_ns, done_ns)
        job.mark_done(
            TranscodeResult(
                clip=job.request.clip,
                preset=job.request.preset,
                crf=job.request.crf,
                refs=job.request.refs,
                psnr_db=profiled.psnr_db,
                bitrate_kbps=profiled.bitrate_kbps,
                encode_seconds=profiled.encode_seconds,
                cycles=cycles,
                config=worker.config_name,
                baseline_cycles=profiled.baseline_cycles,
            )
        )
        if job.submitted_ns is not None:
            job.timings["e2e_s"] = (done_ns - job.submitted_ns) / 1e9
        obs.inc("service.jobs_completed")
        obs.observe("service.job_latency_cycles", cycles)
        speedup = job.result.speedup_pct
        if speedup is not None:
            obs.observe("service.job_speedup_pct", speedup)
        self._record_stage_metrics(job, worker.config_name,
                                   instance=worker.instance_name)

    def _on_worker_crash(self, job: Job, worker, exc: Exception,
                         *, done_ns: int | None = None) -> None:
        """Isolate a crashed worker and re-place (or fail) its job.

        ``done_ns`` is the service-clock instant the crashed placement
        gave up (virtual completion of the wasted attempts); it stamps
        the failed job's e2e latency and the requeue moment.
        """
        self.fleet.isolate(worker, reason=str(exc))
        self.worker_crashes += 1
        obs.inc("service.worker_crashes")
        error = f"{type(exc).__name__}: {exc} (worker {worker.name} isolated)"
        if done_ns is None:
            done_ns = self.clock.now_ns()
        if job.attempts >= self.config.max_attempts or not self.fleet.available():
            job.mark_failed(error)
            obs.inc("service.jobs_failed")
            if job.submitted_ns is not None:
                job.timings["e2e_s"] = (done_ns - job.submitted_ns) / 1e9
            self._record_stage_metrics(job, worker.config_name,
                                       instance=worker.instance_name)
        else:
            job.mark_requeued(error)
            self.queue.requeue(job, now_ns=done_ns)

    #: timing key in ``Job.timings`` -> ``stage`` label value.
    _STAGES = (
        ("queue_wait_s", "queue_wait"),
        ("placement_s", "placement"),
        ("encode_s", "encode"),
        ("retry_overhead_s", "retry_overhead"),
        ("e2e_s", "e2e"),
    )

    def _record_stage_metrics(
        self, job: Job, config: str, *, instance: str | None = None
    ) -> None:
        """Publish a terminal job's latency decomposition: one labeled
        ``service.stage_latency_s`` histogram sample per recorded stage
        (keyed by stage / µarch config / policy / instance family), plus
        the deadline accounting the SLO engine's ``deadline_miss_rate``
        kind reads."""
        buckets = latency_buckets()
        for key, stage in self._STAGES:
            value = job.timings.get(key)
            if value is None:
                continue
            obs.observe(
                "service.stage_latency_s",
                value,
                labels={
                    "stage": stage,
                    "config": config,
                    "policy": self.policy.name,
                    "instance": instance or config,
                },
                bounds=buckets,
            )
        deadline_ms = job.request.deadline_ms
        if deadline_ms is not None:
            obs.inc("service.jobs_with_deadline")
            e2e_s = job.timings.get("e2e_s", 0.0)
            if job.state == "failed" or e2e_s * 1000.0 > deadline_ms:
                obs.inc("service.deadline_misses")

    # -- profiling (once per unique request) ---------------------------
    def _profile(self, job: Job) -> _ProfiledJob:
        """Trace-encode the job's clip once and profile it on the
        baseline config; cached on the request's content key."""
        key = job.request.content_key() + (
            self.config.width, self.config.height, self.config.n_frames,
            self.config.data_capacity_scale,
        )
        cached = self._profiles.get(key)
        if cached is not None:
            obs.inc("service.profile_hits")
            return cached
        from repro.codec.encoder import Encoder
        from repro.experiments import transport

        with obs.span("service.profile", job=job.job_id,
                      clip=job.request.clip):
            # Decoded once per clip geometry process-wide (and attached
            # zero-copy when a sweep parent already published the clip).
            video = transport.cached_video(
                job.request.clip, width=self.config.width,
                height=self.config.height, n_frames=self.config.n_frames,
            )
            program = build_program()
            tracer = RecordingTracer(program)
            encode_result = Encoder(
                job.request.options(), tracer=tracer
            ).encode(video)
            base_report = simulate(tracer.stream, program, self._baseline)
        profiled = _ProfiledJob(
            stream=tracer.stream,
            program=program,
            counters=CounterSet.from_report(
                base_report,
                psnr_db=encode_result.psnr_db,
                bitrate_kbps=encode_result.bitrate_kbps,
            ),
            baseline_cycles=base_report.cycles,
            psnr_db=encode_result.psnr_db,
            bitrate_kbps=encode_result.bitrate_kbps,
            encode_seconds=encode_result.encode_seconds,
        )
        self._profiles[key] = profiled
        return profiled

    # -- observation ---------------------------------------------------
    def status(self, job_id: int) -> JobStatus:
        """The lifecycle snapshot of one job."""
        return self.queue.get(job_id).status()

    def statuses(self) -> list[JobStatus]:
        """Snapshots of every admitted job, in admission order."""
        return [j.status() for j in self.queue.jobs()]

    def results(self) -> list[TranscodeResult]:
        """Results of every completed job, in admission order."""
        return [j.result for j in self.queue.jobs() if j.result is not None]

    def report(self) -> ServiceReport:
        """Summarize the run and publish the summary gauges."""
        jobs = self.queue.jobs()
        done = [j for j in jobs if j.result is not None]
        latencies = [j.latency_cycles for j in done]
        speedups = [
            j.result.speedup_pct for j in done
            if j.result.speedup_pct is not None
        ]
        mean_latency = float(np.mean(latencies)) if latencies else 0.0
        mean_speedup = float(np.mean(speedups)) if speedups else 0.0
        name = self.policy.name
        obs.set_gauge(f"service.{name}.mean_latency_cycles", mean_latency)
        obs.set_gauge(f"service.{name}.mean_speedup_pct", mean_speedup)
        obs.set_gauge(f"service.{name}.jobs_completed", float(len(done)))
        # Makespan: first admission to the last worker's busy horizon —
        # what the whole fleet had to stay rented for.
        starts = [j.submitted_ns for j in jobs if j.submitted_ns is not None]
        horizons = [w.busy_until_ns for w in self.fleet.workers]
        makespan_s = 0.0
        if starts and horizons:
            makespan_s = max(0, max(horizons) - min(starts)) / 1e9
        cost_usd = self.fleet.cost_usd()
        hourly = self.fleet.hourly_rate
        e2es = sorted(
            j.timings["e2e_s"] for j in jobs if "e2e_s" in j.timings
        )
        e2e_p99 = float(np.percentile(e2es, 99)) if e2es else 0.0
        obs.set_gauge(f"service.{name}.cost_usd", cost_usd)
        return ServiceReport(
            policy=name,
            jobs_total=len(jobs),
            completed=len(done),
            failed=sum(1 for j in jobs if j.state == "failed"),
            mean_latency_cycles=mean_latency,
            mean_speedup_pct=mean_speedup,
            worker_crashes=self.worker_crashes,
            objective=self.config.objective,
            cost_usd=cost_usd,
            fleet_hourly_usd=hourly,
            makespan_s=makespan_s,
            provisioned_usd=hourly * makespan_s / 3600.0,
            e2e_p99_s=e2e_p99,
            placements={
                j.job_id: f"{j.worker} ({j.result.config})"
                for j in done if j.worker is not None
            },
            statuses=[j.status() for j in jobs],
        )

    # -- checkpointing -------------------------------------------------
    def _write_checkpoint(self) -> None:
        path = self.config.checkpoint_path
        if path is None:
            return
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self.queue.snapshot()
        doc["next_id"] = self._next_id
        doc["next_seq"] = self._next_seq
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.inc("service.checkpoint_writes")

    def _restore_checkpoint(self) -> None:
        path = self.config.checkpoint_path
        if path is None or not Path(path).exists():
            return
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        restored = self.queue.restore(doc)
        self._next_id = int(doc.get("next_id", restored + 1))
        self._next_seq = int(doc.get("next_seq", restored))
        obs.inc("service.checkpoint_restores")


def run_service(
    requests: list[TranscodeRequest],
    config: ServiceConfig | None = None,
    *,
    control: bool = True,
    resume: bool = False,
) -> ServiceReport:
    """Run one synchronous service pass over ``requests``.

    Submits everything, drains the queue, and — when ``control`` is true
    and the primary policy is not already ``random`` — re-runs the same
    submissions under the random-placement control (sharing the profile
    cache, so the control pays no extra encodes) and attaches its report,
    making the paper's smart-vs-random serving margin directly readable
    from the returned :class:`ServiceReport`.
    """
    cfg = config or ServiceConfig()
    shared_profiles: dict[tuple, _ProfiledJob] = {}
    service = TranscodeService(
        cfg, resume=resume, profile_cache=shared_profiles
    )
    service.submit_many(requests)
    report = service.run_until_idle()
    if control and cfg.policy != "random":
        control_cfg = replace(cfg, policy="random", checkpoint_path=None)
        control_service = TranscodeService(
            control_cfg, profile_cache=shared_profiles
        )
        control_service.submit_many(requests)
        report.control = control_service.run_until_idle()
        margin = report.margin_vs_control_pp
        if margin is not None:
            obs.set_gauge("service.margin_vs_control_pp", margin)
    return report
