"""Online placement policies: SmartScheduler-style vs. random control.

Each dispatch round the service hands the policy the batch of pending
jobs, the free workers, and the jobs' *baseline* profiling counters —
never per-config runtimes (those belong to the oracle). Two policies:

- :class:`SmartPlacement` scores every (job, worker) pair with the
  paper's characterization-driven affinity model
  (:func:`repro.scheduling.affinity.affinity_scores`) and solves the
  assignment problem over the batch — the serving-mode twin of
  :class:`repro.scheduling.schedulers.SmartScheduler`;
- :class:`RandomPlacement` is the control: a deterministic, seeded
  random one-to-one placement, so the paper's §V smart-vs-random margin
  is reproducible in serving mode.

Both are deterministic: smart breaks score ties toward lower job/worker
indices (same convention as the batch SmartScheduler), and random
derives its choices by hashing ``(seed, round, job_id)`` — no global
RNG state.
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.scheduling.affinity import affinity_scores
from repro.service.jobs import Job
from repro.service.workers import Worker

__all__ = [
    "PLACEMENT_POLICIES",
    "RandomPlacement",
    "SmartPlacement",
    "make_policy",
]

#: Tie-break magnitude: far below any meaningful affinity difference,
#: large enough to make equal-score assignments deterministic.
_TIE_EPS = 1e-9


class SmartPlacement:
    """Characterization-driven assignment over each dispatch batch."""

    name = "smart"

    def place(
        self,
        jobs: list[Job],
        workers: list[Worker],
        counters: dict[int, CounterSet],
    ) -> dict[int, Worker]:
        """Map ``job_id -> worker`` for up to ``len(workers)`` jobs.

        Builds the affinity matrix from baseline counters and solves the
        (possibly rectangular) assignment problem maximizing predicted
        benefit; each free worker takes at most one job per round.
        """
        if not jobs or not workers:
            return {}
        jobs = jobs[: len(workers)]
        with obs.span("service.place", policy=self.name, jobs=len(jobs),
                      workers=len(workers)):
            score = np.zeros((len(jobs), len(workers)))
            for i, job in enumerate(jobs):
                scores = affinity_scores(counters[job.job_id])
                for j, worker in enumerate(workers):
                    score[i, j] = scores.get(worker.config_name, 0.0)
            # Deterministic tie-break: among equal-score placements,
            # prefer lower job then lower worker index.
            score -= _TIE_EPS * (
                np.arange(len(jobs))[:, None] * len(workers)
                + np.arange(len(workers))[None, :]
            )
            rows, cols = linear_sum_assignment(-score)  # maximize
        return {jobs[i].job_id: workers[j] for i, j in zip(rows, cols)}


class RandomPlacement:
    """Seeded random one-to-one placement (the control policy)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._round = 0

    def place(
        self,
        jobs: list[Job],
        workers: list[Worker],
        counters: dict[int, CounterSet],
    ) -> dict[int, Worker]:
        """Map each job to a uniformly chosen distinct free worker.

        Choices hash ``(seed, round, job_id)`` so a given seed yields
        the same placements on every run; ``counters`` is accepted (and
        ignored) to keep the policy signatures interchangeable.
        """
        if not jobs or not workers:
            return {}
        self._round += 1
        free = list(workers)
        placement: dict[int, Worker] = {}
        with obs.span("service.place", policy=self.name, jobs=len(jobs),
                      workers=len(workers)):
            for job in jobs[: len(workers)]:
                digest = hashlib.sha256(
                    f"{self.seed}|{self._round}|{job.job_id}".encode()
                ).digest()
                index = int.from_bytes(digest[:8], "big") % len(free)
                placement[job.job_id] = free.pop(index)
        return placement


#: Policy-name registry used by the service config and the CLI.
PLACEMENT_POLICIES = ("smart", "random")


def make_policy(name: str, *, seed: int = 0) -> SmartPlacement | RandomPlacement:
    """Instantiate a placement policy by registry name."""
    if name == "smart":
        return SmartPlacement()
    if name == "random":
        return RandomPlacement(seed=seed)
    raise ValueError(
        f"unknown placement policy {name!r}; "
        f"choose from {', '.join(PLACEMENT_POLICIES)}"
    )
