"""Online placement policies: SmartScheduler-style vs. random control.

Each dispatch round the service hands the policy the batch of pending
jobs, the free workers, and the jobs' *baseline* profiling counters —
never per-config runtimes (those belong to the oracle). Two policies:

- :class:`SmartPlacement` scores every (job, worker) pair with the
  paper's characterization-driven affinity model
  (:func:`repro.scheduling.affinity.affinity_scores`) and solves the
  assignment problem over the batch — the serving-mode twin of
  :class:`repro.scheduling.schedulers.SmartScheduler`;
- :class:`RandomPlacement` is the control: a deterministic, seeded
  random one-to-one placement, so the paper's §V smart-vs-random margin
  is reproducible in serving mode.

Smart placement supports three Pareto :data:`OBJECTIVES` over
heterogeneous fleets (instance types with distinct clocks and $/hour
rates, :mod:`repro.uarch.instances`):

- ``throughput`` (default) — maximize predicted affinity benefit, the
  seeded same-ISA behaviour;
- ``min-cost`` — minimize predicted dollars per job, subject to the
  latency deadline when one is set;
- ``min-latency`` — minimize predicted seconds per job, subject to the
  per-worker $/hour budget when one is set.

Both constraints (``deadline_s``, per-core ``budget_usd`` $/hour) apply
whenever set, under either cost-aware objective; a job's own
``deadline_ms`` overrides the policy-wide deadline. Pairs violating a
constraint are masked infeasible, and a job with *no* feasible worker is
left unplaced — it stays queued for a later horizon or is shed by the
service with an explicit error, never silently placed in violation.

Predictions come from the same characterization surface the smart
scheduler uses: the baseline cycle count discounted by the affinity
share of the target config (:func:`predicted_cycles`), converted through
the worker's virtual clock (:func:`predicted_seconds`) and its $/hour
rate (:func:`predicted_cost_usd`).

All policies are deterministic: smart breaks score ties toward lower
job/worker indices (same convention as the batch SmartScheduler), and
random derives its choices by hashing ``(seed, round, job_id)`` — no
global RNG state.
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.scheduling.affinity import affinity_scores
from repro.service.jobs import Job
from repro.service.workers import Worker

__all__ = [
    "OBJECTIVES",
    "PLACEMENT_POLICIES",
    "RandomPlacement",
    "SmartPlacement",
    "make_policy",
    "predicted_cost_usd",
    "predicted_cycles",
    "predicted_seconds",
]

#: Tie-break magnitude: far below any meaningful affinity difference,
#: large enough to make equal-score assignments deterministic.
_TIE_EPS = 1e-9

#: Penalty standing in for "infeasible" in the assignment matrix: large
#: enough that the solver never trades a feasible pair away for one.
_INFEASIBLE = 1e15

#: Largest fraction of baseline cycles the affinity model may predict
#: away on a perfectly matched config — the paper's per-config gains are
#: single-digit to low-double-digit percents, so predictions stay
#: conservative rather than promising oracle speedups.
_MAX_GAIN = 0.25

#: Smart-placement objective registry (see module docstring).
OBJECTIVES = ("throughput", "min-cost", "min-latency")

#: Under ``min-cost``, a job with no binding deadline only accepts
#: workers within this fractional margin of its fleet-cheapest predicted
#: cost — beyond it the job *waits* for a cheap worker to free up
#: instead of burning dollars on an expensive one (the cost half of the
#: Pareto tradeoff; a deadline re-enables expensive placements).
_COST_SLACK = 0.15


def predicted_cycles(
    counters: CounterSet,
    config_name: str,
    *,
    cycle_scale: float | None = None,
) -> float:
    """Predicted cycles for a job, from baseline counters only.

    Instance workers pass their catalogue ``cycle_scale`` (the measured
    per-family cycles-vs-baseline ratio); Table IV config workers fall
    back to the affinity model, discounting the baseline cycle count by
    the config's share of the total benefit (capped at ``_MAX_GAIN``).
    """
    if cycle_scale is not None:
        return float(counters.cycles) * cycle_scale
    scores = affinity_scores(counters)
    total = sum(scores.values())
    gain = 0.0
    if total > 0:
        gain = _MAX_GAIN * scores.get(config_name, 0.0) / total
    return float(counters.cycles) * (1.0 - gain)


def predicted_seconds(counters: CounterSet, worker: Worker) -> float:
    """Predicted virtual seconds for a job on ``worker`` (predicted
    cycles through the worker's simulated clock)."""
    instance = worker.instance
    cycles = predicted_cycles(
        counters, worker.config_name,
        cycle_scale=instance.cycle_scale if instance is not None else None,
    )
    return cycles / worker.clock_hz


def predicted_cost_usd(counters: CounterSet, worker: Worker) -> float:
    """Predicted dollars to run a job on ``worker`` (predicted occupancy
    billed at the worker's hourly rate)."""
    return predicted_seconds(counters, worker) / 3600.0 * worker.rate_per_hour


class SmartPlacement:
    """Characterization-driven assignment over each dispatch batch."""

    name = "smart"

    def __init__(
        self,
        *,
        objective: str = "throughput",
        deadline_s: float | None = None,
        budget_usd: float | None = None,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; "
                f"choose from {', '.join(OBJECTIVES)}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if budget_usd is not None and budget_usd <= 0:
            raise ValueError("budget_usd must be > 0")
        self.objective = objective
        self.deadline_s = deadline_s
        self.budget_usd = budget_usd
        #: The whole fleet (busy workers included), when bound by the
        #: service — lets min-cost compare an offered worker against the
        #: cheapest the fleet will *eventually* free up.
        self._fleet_workers: list[Worker] | None = None

    def bind_fleet(self, workers: list[Worker]) -> None:
        """Tell the policy the full fleet it schedules for (not just the
        currently-free subset), so waiting for a cheaper busy worker
        becomes an option under ``min-cost``."""
        self._fleet_workers = list(workers)

    def _deadline_for(self, job: Job) -> float | None:
        """The binding deadline for one job: its own request deadline
        when set, else the policy-wide one."""
        if job.request.deadline_ms is not None:
            return job.request.deadline_ms / 1000.0
        return self.deadline_s

    def _cost_matrix(
        self,
        jobs: list[Job],
        workers: list[Worker],
        counters: dict[int, CounterSet],
    ) -> np.ndarray:
        """The (job, worker) minimization matrix for cost-aware
        objectives, with constraint-violating pairs masked infeasible."""
        fleet = self._fleet_workers or workers
        cost = np.zeros((len(jobs), len(workers)))
        for i, job in enumerate(jobs):
            deadline = self._deadline_for(job)
            ceiling = None
            if self.objective == "min-cost" and deadline is None:
                # No latency pressure: only near-cheapest placements are
                # acceptable; pricier workers mean the job waits.
                floor = min(
                    (predicted_cost_usd(counters[job.job_id], w)
                     for w in fleet
                     if not w.suspect
                     and (self.budget_usd is None
                          or w.rate_per_hour <= self.budget_usd)),
                    default=None,
                )
                if floor is not None:
                    ceiling = (1.0 + _COST_SLACK) * floor
            for j, worker in enumerate(workers):
                seconds = predicted_seconds(counters[job.job_id], worker)
                dollars = seconds / 3600.0 * worker.rate_per_hour
                if deadline is not None and seconds > deadline:
                    cost[i, j] = _INFEASIBLE
                elif (self.budget_usd is not None
                        and worker.rate_per_hour > self.budget_usd):
                    cost[i, j] = _INFEASIBLE
                elif ceiling is not None and dollars > ceiling:
                    cost[i, j] = _INFEASIBLE
                else:
                    cost[i, j] = (dollars if self.objective == "min-cost"
                                  else seconds)
        return cost

    def place(
        self,
        jobs: list[Job],
        workers: list[Worker],
        counters: dict[int, CounterSet],
    ) -> dict[int, Worker]:
        """Map ``job_id -> worker`` for up to ``len(workers)`` jobs.

        Under ``throughput``, builds the affinity matrix from baseline
        counters and solves the (possibly rectangular) assignment
        problem maximizing predicted benefit. Under ``min-cost`` /
        ``min-latency``, minimizes predicted dollars / seconds instead,
        drops constraint-infeasible pairs, and leaves jobs with no
        feasible worker unplaced. Each free worker takes at most one job
        per round.
        """
        if not jobs or not workers:
            return {}
        jobs = jobs[: len(workers)]
        with obs.span("service.place", policy=self.name, jobs=len(jobs),
                      workers=len(workers), objective=self.objective):
            # Deterministic tie-break: among equal-score placements,
            # prefer lower job then lower worker index.
            tie = _TIE_EPS * (
                np.arange(len(jobs))[:, None] * len(workers)
                + np.arange(len(workers))[None, :]
            )
            if self.objective == "throughput":
                score = np.zeros((len(jobs), len(workers)))
                for i, job in enumerate(jobs):
                    scores = affinity_scores(counters[job.job_id])
                    for j, worker in enumerate(workers):
                        score[i, j] = scores.get(worker.config_name, 0.0)
                rows, cols = linear_sum_assignment(-(score - tie))
                return {
                    jobs[i].job_id: workers[j] for i, j in zip(rows, cols)
                }
            cost = self._cost_matrix(jobs, workers, counters)
            rows, cols = linear_sum_assignment(cost + tie)
            placement = {
                jobs[i].job_id: workers[j]
                for i, j in zip(rows, cols)
                if cost[i, j] < _INFEASIBLE
            }
            unplaced = len(rows) - len(placement)
            if unplaced:
                obs.inc("service.placements_infeasible", unplaced)
        return placement


class RandomPlacement:
    """Seeded random one-to-one placement (the control policy)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._round = 0

    def place(
        self,
        jobs: list[Job],
        workers: list[Worker],
        counters: dict[int, CounterSet],
    ) -> dict[int, Worker]:
        """Map each job to a uniformly chosen distinct free worker.

        Choices hash ``(seed, round, job_id)`` so a given seed yields
        the same placements on every run; ``counters`` is accepted (and
        ignored) to keep the policy signatures interchangeable.
        """
        if not jobs or not workers:
            return {}
        self._round += 1
        free = list(workers)
        placement: dict[int, Worker] = {}
        with obs.span("service.place", policy=self.name, jobs=len(jobs),
                      workers=len(workers)):
            for job in jobs[: len(workers)]:
                digest = hashlib.sha256(
                    f"{self.seed}|{self._round}|{job.job_id}".encode()
                ).digest()
                index = int.from_bytes(digest[:8], "big") % len(free)
                placement[job.job_id] = free.pop(index)
        return placement


#: Policy-name registry used by the service config and the CLI.
PLACEMENT_POLICIES = ("smart", "random")


def make_policy(
    name: str,
    *,
    seed: int = 0,
    objective: str = "throughput",
    deadline_s: float | None = None,
    budget_usd: float | None = None,
) -> SmartPlacement | RandomPlacement:
    """Instantiate a placement policy by registry name. The objective
    and constraint knobs shape :class:`SmartPlacement`; the random
    control ignores them (it is the policy being compared against)."""
    if name == "smart":
        return SmartPlacement(
            objective=objective, deadline_s=deadline_s,
            budget_usd=budget_usd,
        )
    if name == "random":
        return RandomPlacement(seed=seed)
    raise ValueError(
        f"unknown placement policy {name!r}; "
        f"choose from {', '.join(PLACEMENT_POLICIES)}"
    )
