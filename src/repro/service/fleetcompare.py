"""Fleet comparison driver: the same workload across heterogeneous fleets.

The serving-mode analogue of the per-instance-type tables in "Where to
Encode: x86 vs Arm EC2" and "Performance Analysis and Modeling of Video
Transcoding Using Heterogeneous Cloud Services": run one workload (the
paper's Table III mix, or any loadgen mix) across several fleet
definitions on a virtual clock, under cost-aware smart placement *and*
the seeded random control, and tabulate throughput per provisioned
dollar, p99 end-to-end latency, and cost per completed job for each
fleet.

:data:`EXAMPLE_FLEETS` ships four definitions — an all-x86 fleet, an
all-Arm fleet, a mixed-ISA fleet, and the paper's legacy Table IV
config fleet — each internally heterogeneous so placement quality is
visible in the cost numbers. The shipped calibration reproduces the
cited papers' qualitative ordering: the Arm fleets win throughput/$ by
roughly 1.5-2x over the x86 fleets at equal completion counts.

The whole comparison is deterministic for a fixed seed (virtual clock,
seeded control, hashed placement), and the report lands in run.json
under ``meta.fleet_compare`` when run inside a telemetry session, where
``repro report`` renders it and ``repro diff`` diffs throughput/$
between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.loadgen.clock import VirtualClock
from repro.obs import session as obs
from repro.service.service import ServiceConfig, TranscodeService, table3_requests
from repro.service.workers import parse_fleet_spec

__all__ = [
    "EXAMPLE_FLEETS",
    "FleetCompareReport",
    "FleetDef",
    "FleetResult",
    "run_fleet_compare",
]


@dataclass(frozen=True)
class FleetDef:
    """One named fleet definition: a label plus its fleet-spec string."""

    name: str
    spec: str
    description: str = ""

    def __post_init__(self) -> None:
        parse_fleet_spec(self.spec)  # fail fast on bad specs

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for run.json metadata."""
        return {
            "name": self.name,
            "spec": self.spec,
            "description": self.description,
        }


#: The shipped comparison matrix (each fleet internally heterogeneous).
EXAMPLE_FLEETS: tuple[FleetDef, ...] = (
    FleetDef(
        name="x86",
        spec="c5.xlarge,m5.xlarge",
        description="all-x86: compute- plus memory-optimized (4 cores)",
    ),
    FleetDef(
        name="arm",
        spec="c6g.xlarge,a1.xlarge",
        description="all-Arm: Graviton2-class plus first-gen (8 cores)",
    ),
    FleetDef(
        name="mixed",
        spec="c5.xlarge,c6g.xlarge",
        description="mixed-ISA: x86 compute plus Arm compute (6 cores)",
    ),
    FleetDef(
        name="table4",
        spec="fe_op,be_op1,be_op2,bs_op",
        description="the paper's Table IV config fleet (legacy pricing)",
    ),
)


@dataclass
class FleetResult:
    """One fleet's outcome under smart placement, with the random control."""

    fleet: FleetDef
    workers: int
    hourly_usd: float
    completed: int
    failed: int
    jobs_per_dollar: float
    e2e_p99_s: float
    cost_per_completed_usd: float
    makespan_s: float
    control_cost_per_completed_usd: float
    control_jobs_per_dollar: float
    control_e2e_p99_s: float

    @property
    def cost_margin_vs_control_pct(self) -> float:
        """How much cheaper per completed job smart placement is than
        the random control, in percent (positive = smart cheaper)."""
        if self.control_cost_per_completed_usd <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.cost_per_completed_usd
            / self.control_cost_per_completed_usd
        )

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for ``meta.fleet_compare``."""
        return {
            "fleet": self.fleet.to_payload(),
            "workers": self.workers,
            "hourly_usd": self.hourly_usd,
            "completed": self.completed,
            "failed": self.failed,
            "jobs_per_dollar": self.jobs_per_dollar,
            "e2e_p99_s": self.e2e_p99_s,
            "cost_per_completed_usd": self.cost_per_completed_usd,
            "makespan_s": self.makespan_s,
            "control_cost_per_completed_usd":
                self.control_cost_per_completed_usd,
            "control_jobs_per_dollar": self.control_jobs_per_dollar,
            "control_e2e_p99_s": self.control_e2e_p99_s,
            "cost_margin_vs_control_pct": self.cost_margin_vs_control_pct,
        }


@dataclass
class FleetCompareReport:
    """A whole fleet comparison: the knobs plus one row per fleet."""

    objective: str
    mix: str
    count: int
    seed: int
    deadline_s: float | None
    budget_usd: float | None
    results: list[FleetResult] = field(default_factory=list)

    def ranked(self) -> list[FleetResult]:
        """Results ordered by throughput per dollar, best first."""
        return sorted(
            self.results, key=lambda r: r.jobs_per_dollar, reverse=True
        )

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form, stored under run.json's ``meta.fleet_compare``."""
        return {
            "objective": self.objective,
            "mix": self.mix,
            "count": self.count,
            "seed": self.seed,
            "deadline_s": self.deadline_s,
            "budget_usd": self.budget_usd,
            "fleets": [r.to_payload() for r in self.results],
        }

    def render(self) -> str:
        """The per-fleet throughput/$ / latency / cost-per-job table."""
        head = (
            f"fleet-compare — objective={self.objective}, mix={self.mix}, "
            f"jobs={self.count}, seed={self.seed}"
            + (f", deadline={self.deadline_s:g}s"
               if self.deadline_s is not None else "")
            + (f", budget=${self.budget_usd:g}/h"
               if self.budget_usd is not None else "")
        )
        cols = (
            f"{'fleet':>8s} {'workers':>7s} {'$/hour':>8s} {'done':>5s} "
            f"{'jobs/$':>10s} {'e2e p99':>9s} {'$/job':>12s} "
            f"{'vs random':>10s}"
        )
        lines = [head, cols]
        for r in self.ranked():
            lines.append(
                f"{r.fleet.name:>8s} {r.workers:>7d} "
                f"{r.hourly_usd:>8.3f} {r.completed:>5d} "
                f"{r.jobs_per_dollar:>10.0f} {r.e2e_p99_s:>8.3f}s "
                f"{r.cost_per_completed_usd:>12.8f} "
                f"{r.cost_margin_vs_control_pct:>+9.1f}%"
            )
        best = self.ranked()[0] if self.results else None
        if best is not None:
            lines.append(
                f"best throughput/$: {best.fleet.name} "
                f"({best.fleet.description})"
            )
        return "\n".join(lines)


def _requests(mix: str, count: int, seed: int):
    """The shared request list: Table III cycling, or a loadgen mix."""
    if mix == "table3":
        return table3_requests(count)
    from repro.loadgen.mixes import make_mix

    return make_mix(mix).sample(count, seed=seed)


def run_fleet_compare(
    fleets: tuple[FleetDef, ...] | None = None,
    *,
    objective: str = "min-cost",
    mix: str = "table3",
    count: int = 16,
    seed: int = 0,
    deadline_s: float | None = None,
    budget_usd: float | None = None,
    width: int = 112,
    height: int = 64,
    n_frames: int = 10,
) -> FleetCompareReport:
    """Run one workload across several fleets, smart vs. random control.

    Every fleet sees the identical request list on a fresh
    :class:`~repro.loadgen.clock.VirtualClock`; the baseline profile
    cache is shared across fleets *and* policies, so each unique request
    is trace-encoded exactly once for the whole comparison. Deterministic
    for a fixed ``(fleets, objective, mix, count, seed)``.
    """
    fleets = fleets if fleets is not None else EXAMPLE_FLEETS
    if not fleets:
        raise ValueError("fleet-compare needs at least one fleet")
    requests = _requests(mix, count, seed)
    report = FleetCompareReport(
        objective=objective, mix=mix, count=count, seed=seed,
        deadline_s=deadline_s, budget_usd=budget_usd,
    )
    profile_cache: dict = {}
    sizing = dict(width=width, height=height, n_frames=n_frames)
    with obs.span("fleet_compare", fleets=len(fleets), objective=objective,
                  mix=mix, count=count):
        for fleet in fleets:
            runs: dict[str, Any] = {}
            for policy in ("smart", "random"):
                config = ServiceConfig(
                    fleet=parse_fleet_spec(fleet.spec),
                    policy=policy,
                    objective=objective if policy == "smart" else "throughput",
                    deadline_s=deadline_s if policy == "smart" else None,
                    budget_usd=budget_usd if policy == "smart" else None,
                    seed=seed,
                    queue_capacity=max(64, count),
                    **sizing,
                )
                service = TranscodeService(
                    config, profile_cache=profile_cache, clock=VirtualClock()
                )
                with obs.span("fleet_compare.run", fleet=fleet.name,
                              policy=policy):
                    service.submit_many(requests)
                    runs[policy] = service.run_until_idle()
            smart, control = runs["smart"], runs["random"]
            result = FleetResult(
                fleet=fleet,
                workers=sum(
                    (e.instance.cores if e.instance else 1) * e.count
                    for e in parse_fleet_spec(fleet.spec)
                ),
                hourly_usd=smart.fleet_hourly_usd,
                completed=smart.completed,
                failed=smart.failed,
                jobs_per_dollar=smart.jobs_per_dollar,
                e2e_p99_s=smart.e2e_p99_s,
                cost_per_completed_usd=smart.cost_per_completed_usd,
                makespan_s=smart.makespan_s,
                control_cost_per_completed_usd=control.cost_per_completed_usd,
                control_jobs_per_dollar=control.jobs_per_dollar,
                control_e2e_p99_s=control.e2e_p99_s,
            )
            report.results.append(result)
            obs.set_gauge(
                f"fleet_compare.{fleet.name}.jobs_per_dollar",
                result.jobs_per_dollar,
            )
            obs.set_gauge(
                f"fleet_compare.{fleet.name}.cost_per_completed_usd",
                result.cost_per_completed_usd,
            )
    tel = obs.current()
    if tel is not None:
        # render_run picks the table up from here (``meta.fleet_compare``).
        tel.meta["fleet_compare"] = report.to_payload()
    return report
