"""The heterogeneous worker fleet: warm simulators pinned to µarch configs.

Each :class:`Worker` models one warm transcoding server — one schedulable
core — pinned to a single microarchitecture configuration: the config
object and the kernel program are built once at fleet construction (the
"warm" state) and reused for every job, so per-job work is only the
trace replay on the worker's configuration.

Fleets come in two flavours, freely mixable in one spec:

- **Table IV config workers** (``fe_op``, ``be_op1``, …): the paper's
  same-ISA serving fleet. Each spec clause yields ``count`` workers at
  the service reference clock, billed at :data:`DEFAULT_RATE_PER_HOUR`
  per worker unless the clause carries a ``$rate`` override.
- **Instance-type workers** (``c5.xlarge``, ``c6g.xlarge``, … from
  :mod:`repro.uarch.instances`): each spec clause yields ``count``
  *instances*, and every instance expands to ``cores`` workers running
  the instance family's µarch at its relative clock, each billed the
  instance's per-core share of the hourly rate. This is the
  heterogeneous-cloud dimension of "Where to Encode: x86 vs Arm EC2".

The spec grammar is ``name[:count][:$rate]``, comma-separated —
``"c5.xlarge:2:$0.17,fe_op"`` rents two c5.xlarge instances at a spot
price and keeps one legacy front-end-optimized worker.

Fault handling mirrors the sweep engine's crash-suspect protocol: a
worker whose execution raises a *non-retryable* exception (retryable
ones are retried in place by the service's
:class:`~repro.resilience.retry.RetryPolicy`) is marked *suspect* and
isolated — it takes no further placements until a fleet
:meth:`WorkerFleet.reinstate`. The ``service.worker`` fault point makes
those crashes injectable from a ``--fault-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import session as obs
from repro.resilience.faults import fault_point
from repro.service.jobs import Job
from repro.trace.program import Program
from repro.uarch.configs import CONFIG_NAMES, config_by_name
from repro.uarch.instances import INSTANCE_NAMES, InstanceType, instance_by_name
from repro.uarch.simulator import simulate

__all__ = [
    "DEFAULT_FLEET",
    "DEFAULT_RATE_PER_HOUR",
    "FleetEntry",
    "Worker",
    "WorkerFleet",
    "parse_fleet_spec",
]

#: One worker per Table IV variant — the paper's §V serving fleet.
DEFAULT_FLEET: tuple[str, ...] = ("fe_op", "be_op1", "be_op2", "bs_op")

#: $/hour billed per Table IV config worker when the fleet spec carries
#: no explicit rate — one reference-clock core at roughly the catalogue's
#: per-core x86 price point, so legacy fleets cost something sensible
#: instead of nothing.
DEFAULT_RATE_PER_HOUR = 0.085


@dataclass(frozen=True)
class FleetEntry:
    """One parsed fleet-spec clause: what to rent, how many, at what price.

    ``name`` is either a Table IV config name (one worker per count) or
    an instance-type name (``cores`` workers per count);
    ``rate_per_hour`` overrides the catalogue/default hourly price of
    one unit (one config worker, or one whole instance).
    """

    name: str
    count: int = 1
    rate_per_hour: float | None = None

    def __post_init__(self) -> None:
        if self.name not in CONFIG_NAMES and self.name not in INSTANCE_NAMES:
            raise ValueError(
                f"unknown fleet entry {self.name!r}; choose a µarch config "
                f"({', '.join(CONFIG_NAMES)}) or an instance type "
                f"({', '.join(INSTANCE_NAMES)})"
            )
        if self.count < 1:
            raise ValueError(f"fleet count must be >= 1, got {self.count}")
        if self.rate_per_hour is not None and self.rate_per_hour <= 0:
            raise ValueError(
                f"fleet $rate must be > 0, got {self.rate_per_hour}"
            )

    @property
    def instance(self) -> InstanceType | None:
        """The catalogue profile for instance entries, else ``None``."""
        if self.name in INSTANCE_NAMES:
            return instance_by_name(self.name)
        return None


def parse_fleet_spec(spec: str) -> tuple[FleetEntry, ...]:
    """Parse a fleet spec like ``"c5.xlarge:2:$0.17,fe_op,be_op1:2"``.

    Each comma-separated clause is ``name[:count][:$rate]`` where
    ``name`` is a Table IV config or an instance type, ``count`` repeats
    the unit, and ``$rate`` overrides its hourly price (the ``$`` prefix
    is mandatory, so counts and rates cannot be confused). Raises
    ``ValueError`` on unknown names, malformed or duplicate counts/rates,
    duplicate names, or an empty spec.
    """
    entries: list[FleetEntry] = []
    seen: set[str] = set()
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = [p.strip() for p in clause.split(":")]
        name, args = parts[0], parts[1:]
        count: int | None = None
        rate: float | None = None
        for arg in args:
            if arg.startswith("$"):
                if rate is not None:
                    raise ValueError(f"duplicate $rate in {clause!r}")
                try:
                    rate = float(arg[1:])
                except ValueError:
                    raise ValueError(
                        f"bad $rate {arg!r} in {clause!r}"
                    ) from None
            else:
                if count is not None:
                    raise ValueError(f"duplicate count in {clause!r}")
                try:
                    count = int(arg)
                except ValueError:
                    raise ValueError(
                        f"bad count {arg!r} in {clause!r} "
                        "(rates need a $ prefix)"
                    ) from None
        if name in seen:
            raise ValueError(
                f"duplicate fleet entry {name!r}; "
                "use name:count to size one entry"
            )
        seen.add(name)
        entries.append(
            FleetEntry(
                name=name,
                count=count if count is not None else 1,
                rate_per_hour=rate,
            )
        )
    if not entries:
        raise ValueError(f"empty fleet spec {spec!r}")
    return tuple(entries)


@dataclass
class WorkerStats:
    """Per-worker lifetime accounting."""

    completed: int = 0
    failed: int = 0
    cycles: float = 0.0
    busy_ns: int = 0                 # service-clock time spent on jobs
    cost_usd: float = 0.0            # busy time x this worker's rate


class Worker:
    """One warm server core pinned to a microarchitecture configuration."""

    def __init__(
        self,
        name: str,
        config_name: str,
        *,
        data_capacity_scale: float = 48.0,
        instance: InstanceType | None = None,
        rate_per_hour: float = DEFAULT_RATE_PER_HOUR,
        clock_hz: float = 1.0e6,
    ) -> None:
        self.name = name
        self.config_name = config_name
        #: Instance profile this core belongs to (None for Table IV
        #: config workers) and its catalogue name for metric labels.
        self.instance = instance
        self.instance_name = instance.name if instance else config_name
        # Warm state: the config is materialized once, not per job.
        if instance is not None:
            self.config = instance.build_config(
                data_capacity_scale=data_capacity_scale
            )
        else:
            self.config = config_by_name(
                config_name, data_capacity_scale=data_capacity_scale
            )
        #: This core's simulated frequency (virtual Hz) — instance cores
        #: scale the service reference clock by clock_ghz/3.0, so cycle
        #: counts convert to different virtual durations per family.
        self.clock_hz = clock_hz
        #: $/hour billed for this core (an instance's per-core share).
        self.rate_per_hour = rate_per_hour
        self.suspect = False
        self.stats = WorkerStats()
        #: When this worker's current job finishes, on the service clock
        #: (0 = never dispatched). Under a wall clock this is always in
        #: the past by the time anyone reads it (execution is
        #: synchronous); under a virtual clock it is the busy horizon
        #: that makes queueing-under-load observable.
        self.busy_until_ns = 0

    def charge(self, busy_ns: int) -> float:
        """Account ``busy_ns`` of occupancy and return its dollar cost."""
        cost = busy_ns / 1e9 / 3600.0 * self.rate_per_hour
        self.stats.busy_ns += busy_ns
        self.stats.cost_usd += cost
        return cost

    def execute(self, job: Job, stream, program: Program) -> float:
        """Replay ``job``'s recorded trace on this worker's µarch and
        return the simulated cycles (the job's virtual latency).

        ``service.worker`` is a fault point: plans may raise here to
        model an encoder crash on this worker (the detail string is
        ``"<worker> job=<id>"`` so ``match=`` can target one worker).
        """
        with obs.span(
            "worker.encode", job=job.job_id, worker=self.name,
            config=self.config_name,
        ):
            fault_point(
                "service.worker", detail=f"{self.name} job={job.job_id}"
            )
            cycles = simulate(stream, program, self.config).cycles
        self.stats.completed += 1
        self.stats.cycles += cycles
        return cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " SUSPECT" if self.suspect else ""
        return f"<Worker {self.name} ({self.config_name}){flag}>"


def _expand(
    entries: tuple, *, data_capacity_scale: float, clock_hz: float
) -> list[Worker]:
    """Expand fleet entries (or bare config names) into workers."""
    workers: list[Worker] = []
    for entry in entries:
        if isinstance(entry, str):
            entry = FleetEntry(name=entry)
        instance = entry.instance
        if instance is None:
            rate = (entry.rate_per_hour if entry.rate_per_hour is not None
                    else DEFAULT_RATE_PER_HOUR)
            for _ in range(entry.count):
                i = len(workers)
                workers.append(Worker(
                    f"w{i}:{entry.name}", entry.name,
                    data_capacity_scale=data_capacity_scale,
                    rate_per_hour=rate, clock_hz=clock_hz,
                ))
        else:
            instance_rate = (
                entry.rate_per_hour if entry.rate_per_hour is not None
                else instance.rate_per_hour
            )
            for _ in range(entry.count * instance.cores):
                i = len(workers)
                workers.append(Worker(
                    f"w{i}:{instance.name}", instance.config_name,
                    data_capacity_scale=data_capacity_scale,
                    instance=instance,
                    rate_per_hour=instance_rate / instance.cores,
                    clock_hz=clock_hz * instance.clock_scale(),
                ))
    return workers


class WorkerFleet:
    """The set of warm workers the placement policy chooses between."""

    def __init__(
        self,
        entries: tuple = DEFAULT_FLEET,
        *,
        data_capacity_scale: float = 48.0,
        clock_hz: float = 1.0e6,
    ) -> None:
        if not entries:
            raise ValueError("fleet needs at least one worker")
        self.workers: list[Worker] = _expand(
            entries, data_capacity_scale=data_capacity_scale,
            clock_hz=clock_hz,
        )
        self._by_name = {w.name: w for w in self.workers}

    @property
    def hourly_rate(self) -> float:
        """The whole fleet's provisioned $/hour (suspects still billed)."""
        return sum(w.rate_per_hour for w in self.workers)

    def cost_usd(self) -> float:
        """Total busy-time dollars charged across the fleet so far."""
        return sum(w.stats.cost_usd for w in self.workers)

    def available(self) -> list[Worker]:
        """Workers eligible for placement (not crash-suspect)."""
        return [w for w in self.workers if not w.suspect]

    def free(self, now_ns: int) -> list[Worker]:
        """Available workers whose busy horizon has passed at ``now_ns``
        — the set continuous admission may place onto right now."""
        return [w for w in self.available() if w.busy_until_ns <= now_ns]

    def next_free_ns(self) -> int | None:
        """The earliest busy horizon among available workers, or ``None``
        if every worker is isolated. Virtual-clock dispatch advances time
        here when all available workers are mid-job."""
        horizons = [w.busy_until_ns for w in self.available()]
        return min(horizons) if horizons else None

    def isolate(self, worker: Worker, reason: str = "") -> None:
        """Mark ``worker`` crash-suspect; it receives no further jobs."""
        worker.suspect = True
        worker.stats.failed += 1

    def reinstate(self, worker: Worker) -> None:
        """Return an isolated worker to service (operator action)."""
        worker.suspect = False

    def get(self, name: str) -> Worker:
        """The worker called ``name`` (KeyError if unknown)."""
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.workers)

    def describe(self) -> str:
        """One line per worker: name, config, rate, stats, suspect flag."""
        lines = []
        for w in self.workers:
            flag = "  [ISOLATED]" if w.suspect else ""
            lines.append(
                f"{w.name}: {w.config_name} ${w.rate_per_hour:.4f}/h "
                f"completed={w.stats.completed} failed={w.stats.failed}{flag}"
            )
        return "\n".join(lines)
