"""The heterogeneous worker fleet: warm simulators pinned to µarch configs.

Each :class:`Worker` models one warm transcoding server pinned to a
single Table IV microarchitecture configuration: the config object and
the kernel program are built once at fleet construction (the "warm"
state) and reused for every job, so per-job work is only the trace
replay on the worker's configuration.

Fault handling mirrors the sweep engine's crash-suspect protocol: a
worker whose execution raises a *non-retryable* exception (retryable
ones are retried in place by the service's
:class:`~repro.resilience.retry.RetryPolicy`) is marked *suspect* and
isolated — it takes no further placements until a fleet
:meth:`WorkerFleet.reinstate`. The ``service.worker`` fault point makes
those crashes injectable from a ``--fault-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import session as obs
from repro.resilience.faults import fault_point
from repro.service.jobs import Job
from repro.trace.program import Program
from repro.uarch.configs import CONFIG_NAMES, config_by_name
from repro.uarch.simulator import simulate

__all__ = ["DEFAULT_FLEET", "Worker", "WorkerFleet", "parse_fleet_spec"]

#: One worker per Table IV variant — the paper's §V serving fleet.
DEFAULT_FLEET: tuple[str, ...] = ("fe_op", "be_op1", "be_op2", "bs_op")


def parse_fleet_spec(spec: str) -> tuple[str, ...]:
    """Parse a fleet spec like ``"fe_op,be_op1:2,bs_op"`` into config
    names (``:N`` repeats a config N times). Raises ``ValueError`` on
    unknown configs or malformed counts."""
    names: list[str] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        name, _, count_raw = clause.partition(":")
        name = name.strip()
        if name not in CONFIG_NAMES:
            raise ValueError(
                f"unknown µarch config {name!r}; "
                f"choose from {', '.join(CONFIG_NAMES)}"
            )
        count = 1
        if count_raw:
            count = int(count_raw)
            if count < 1:
                raise ValueError(f"fleet count must be >= 1 in {clause!r}")
        names.extend([name] * count)
    if not names:
        raise ValueError(f"empty fleet spec {spec!r}")
    return tuple(names)


@dataclass
class WorkerStats:
    """Per-worker lifetime accounting."""

    completed: int = 0
    failed: int = 0
    cycles: float = 0.0


class Worker:
    """One warm server pinned to a microarchitecture configuration."""

    def __init__(
        self,
        name: str,
        config_name: str,
        *,
        data_capacity_scale: float = 48.0,
    ) -> None:
        self.name = name
        self.config_name = config_name
        # Warm state: the config is materialized once, not per job.
        self.config = config_by_name(
            config_name, data_capacity_scale=data_capacity_scale
        )
        self.suspect = False
        self.stats = WorkerStats()
        #: When this worker's current job finishes, on the service clock
        #: (0 = never dispatched). Under a wall clock this is always in
        #: the past by the time anyone reads it (execution is
        #: synchronous); under a virtual clock it is the busy horizon
        #: that makes queueing-under-load observable.
        self.busy_until_ns = 0

    def execute(self, job: Job, stream, program: Program) -> float:
        """Replay ``job``'s recorded trace on this worker's µarch and
        return the simulated cycles (the job's virtual latency).

        ``service.worker`` is a fault point: plans may raise here to
        model an encoder crash on this worker (the detail string is
        ``"<worker> job=<id>"`` so ``match=`` can target one worker).
        """
        with obs.span(
            "worker.encode", job=job.job_id, worker=self.name,
            config=self.config_name,
        ):
            fault_point(
                "service.worker", detail=f"{self.name} job={job.job_id}"
            )
            cycles = simulate(stream, program, self.config).cycles
        self.stats.completed += 1
        self.stats.cycles += cycles
        return cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " SUSPECT" if self.suspect else ""
        return f"<Worker {self.name} ({self.config_name}){flag}>"


class WorkerFleet:
    """The set of warm workers the placement policy chooses between."""

    def __init__(
        self,
        config_names: tuple[str, ...] = DEFAULT_FLEET,
        *,
        data_capacity_scale: float = 48.0,
    ) -> None:
        if not config_names:
            raise ValueError("fleet needs at least one worker")
        self.workers: list[Worker] = [
            Worker(f"w{i}:{name}", name,
                   data_capacity_scale=data_capacity_scale)
            for i, name in enumerate(config_names)
        ]
        self._by_name = {w.name: w for w in self.workers}

    def available(self) -> list[Worker]:
        """Workers eligible for placement (not crash-suspect)."""
        return [w for w in self.workers if not w.suspect]

    def free(self, now_ns: int) -> list[Worker]:
        """Available workers whose busy horizon has passed at ``now_ns``
        — the set continuous admission may place onto right now."""
        return [w for w in self.available() if w.busy_until_ns <= now_ns]

    def next_free_ns(self) -> int | None:
        """The earliest busy horizon among available workers, or ``None``
        if every worker is isolated. Virtual-clock dispatch advances time
        here when all available workers are mid-job."""
        horizons = [w.busy_until_ns for w in self.available()]
        return min(horizons) if horizons else None

    def isolate(self, worker: Worker, reason: str = "") -> None:
        """Mark ``worker`` crash-suspect; it receives no further jobs."""
        worker.suspect = True
        worker.stats.failed += 1

    def reinstate(self, worker: Worker) -> None:
        """Return an isolated worker to service (operator action)."""
        worker.suspect = False

    def get(self, name: str) -> Worker:
        """The worker called ``name`` (KeyError if unknown)."""
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.workers)

    def describe(self) -> str:
        """One line per worker: name, config, stats, suspect flag."""
        lines = []
        for w in self.workers:
            flag = "  [ISOLATED]" if w.suspect else ""
            lines.append(
                f"{w.name}: {w.config_name} "
                f"completed={w.stats.completed} failed={w.stats.failed}{flag}"
            )
        return "\n".join(lines)
