"""The long-lived transcoding job service (queue → placement → fleet).

The serving layer the ROADMAP's north star asks for, built from the
paper's §V case study: typed job submissions are admitted through a
bounded queue with backpressure, profiled once on the baseline
configuration, and dispatched onto a heterogeneous fleet of warm
workers — each pinned to one Table IV microarchitecture — by an online
characterization-driven placement policy (with a seeded random control,
so the paper's smart-vs-random margin is reproducible in serving mode).

Pieces:

- :mod:`repro.service.jobs` — the mutable job record around a request;
- :mod:`repro.service.queue` — bounded priority queue + checkpoint serde;
- :mod:`repro.service.workers` — the warm, config-pinned worker fleet
  with crash-suspect isolation;
- :mod:`repro.service.placement` — SmartScheduler-style vs. random
  online placement, with cost-aware Pareto objectives (min cost under a
  deadline / min latency under a $/hour budget) over instance-typed
  fleets;
- :mod:`repro.service.service` — the service object, dispatch loop,
  checkpointing, and report;
- :mod:`repro.service.fleetcompare` — the heterogeneous-fleet
  comparison driver behind ``repro fleet-compare``.

Use through :func:`repro.api.serve` / ``repro serve`` rather than
directly; the facade adds telemetry artifacts around a run.
"""

from repro.service.fleetcompare import (
    EXAMPLE_FLEETS,
    FleetCompareReport,
    FleetDef,
    FleetResult,
    run_fleet_compare,
)
from repro.service.jobs import Job
from repro.service.placement import (
    OBJECTIVES,
    PLACEMENT_POLICIES,
    RandomPlacement,
    SmartPlacement,
    make_policy,
)
from repro.service.queue import BoundedJobQueue, QueueFullError
from repro.service.service import (
    ServiceConfig,
    ServiceReport,
    TranscodeService,
    run_service,
    table3_requests,
)
from repro.service.workers import (
    DEFAULT_FLEET,
    DEFAULT_RATE_PER_HOUR,
    FleetEntry,
    Worker,
    WorkerFleet,
    parse_fleet_spec,
)

__all__ = [
    "BoundedJobQueue",
    "DEFAULT_FLEET",
    "DEFAULT_RATE_PER_HOUR",
    "EXAMPLE_FLEETS",
    "FleetCompareReport",
    "FleetDef",
    "FleetEntry",
    "FleetResult",
    "Job",
    "OBJECTIVES",
    "PLACEMENT_POLICIES",
    "QueueFullError",
    "RandomPlacement",
    "ServiceConfig",
    "ServiceReport",
    "SmartPlacement",
    "TranscodeService",
    "Worker",
    "WorkerFleet",
    "make_policy",
    "parse_fleet_spec",
    "run_fleet_compare",
    "run_service",
    "table3_requests",
]
