"""Bounded admission queue with backpressure and checkpointed state.

The service admits jobs through a :class:`BoundedJobQueue`: submissions
beyond ``capacity`` raise :class:`QueueFullError` (backpressure — the
caller sheds load or retries later, exactly like a 429 from a serving
stack). Dispatch order is priority-major (higher first), FIFO within a
priority class; a requeued job keeps its original arrival sequence so a
retry cannot jump ahead of its peers.

The queue also owns the service's restartable state: :meth:`snapshot`
returns a plain-JSON document of every tracked job (queued, running,
done, failed), written atomically by the service after each dispatch
round, and :meth:`restore` rebuilds the queue from it so a restarted
service re-runs only the unfinished jobs.
"""

from __future__ import annotations

from typing import Any

from repro.api.types import JOB_QUEUED, JOB_RUNNING
from repro.loadgen.clock import Clock, WallClock
from repro.obs import session as obs
from repro.service.jobs import Job

__all__ = ["BoundedJobQueue", "QueueFullError"]

#: Version stamp for the snapshot document.
QUEUE_SNAPSHOT_VERSION = 1


class QueueFullError(RuntimeError):
    """Raised by :meth:`BoundedJobQueue.put` when the queue is at
    capacity — the service's backpressure signal."""


class BoundedJobQueue:
    """Priority-then-FIFO job queue with a hard capacity bound.

    Tracks *every* job ever admitted (the service needs terminal jobs
    for status queries and checkpoints); only non-terminal, non-running
    jobs count against ``capacity`` and are eligible for dispatch.
    """

    def __init__(self, capacity: int = 64, *,
                 clock: Clock | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock if clock is not None else WallClock()
        self._jobs: dict[int, Job] = {}   # insertion-ordered job registry

    # -- admission ------------------------------------------------------
    def put(self, job: Job) -> None:
        """Admit ``job``; raises :class:`QueueFullError` at capacity."""
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already admitted")
        if self.depth() >= self.capacity:
            obs.inc("service.queue_rejections")
            raise QueueFullError(
                f"queue at capacity ({self.capacity}); shed load or retry"
            )
        self._jobs[job.job_id] = job
        now = self.clock.now_ns()
        job.submitted_ns = now   # e2e clock starts at first admission
        job.enqueued_ns = now    # queue-wait clock, restamped on requeue
        self._observe_depth()

    def requeue(self, job: Job, *, now_ns: int | None = None) -> None:
        """Return a previously admitted job to the dispatchable pool
        (after a worker failure). Never rejects: the job already holds
        an admission slot. ``now_ns`` pins the re-enqueue instant (the
        virtual completion time of the crashed attempt); default is the
        queue clock's current time."""
        if job.job_id not in self._jobs:
            raise ValueError(f"job {job.job_id} was never admitted")
        job.enqueued_ns = now_ns if now_ns is not None else self.clock.now_ns()
        obs.inc("service.requeues")
        self._observe_depth()

    # -- dispatch -------------------------------------------------------
    def pop_ready(self, n: int) -> list[Job]:
        """Take up to ``n`` dispatchable jobs in priority-major, then
        arrival, order and mark them running-eligible (the service
        transitions them to ``running`` when it places them)."""
        ready = sorted(
            (j for j in self._jobs.values() if j.state == JOB_QUEUED),
            key=lambda j: (-j.request.priority, j.seq),
        )[: max(n, 0)]
        self._observe_depth()
        return ready

    # -- views ----------------------------------------------------------
    def depth(self) -> int:
        """Jobs holding admission slots (queued or running)."""
        return sum(
            1 for j in self._jobs.values()
            if j.state in (JOB_QUEUED, JOB_RUNNING)
        )

    def __len__(self) -> int:
        return self.depth()

    def pending(self) -> int:
        """Jobs waiting for dispatch."""
        return sum(1 for j in self._jobs.values() if j.state == JOB_QUEUED)

    def get(self, job_id: int) -> Job:
        """The tracked job with ``job_id`` (KeyError if unknown)."""
        return self._jobs[job_id]

    def jobs(self) -> list[Job]:
        """Every tracked job, in admission order."""
        return list(self._jobs.values())

    def _observe_depth(self) -> None:
        obs.set_gauge("service.queue_depth", float(self.depth()))

    # -- checkpoint serde ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON state of every tracked job."""
        return {
            "version": QUEUE_SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "jobs": [j.to_payload() for j in self._jobs.values()],
        }

    def restore(self, snapshot: dict[str, Any]) -> int:
        """Rebuild the queue from :meth:`snapshot` output; jobs caught
        mid-flight (``running``) re-enter the queue. Returns the number
        of jobs restored."""
        version = snapshot.get("version")
        if version != QUEUE_SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported queue snapshot version {version!r}"
            )
        self._jobs.clear()
        for payload in snapshot.get("jobs", ()):
            job = Job.from_payload(payload)
            if job.state == JOB_RUNNING:
                job.mark_requeued("restored after service restart")
            self._jobs[job.job_id] = job
        self._observe_depth()
        return len(self._jobs)
