"""Service job records: a request plus its lifecycle state.

A :class:`Job` is the service's mutable wrapper around one immutable
:class:`~repro.api.types.TranscodeRequest`: it tracks the lifecycle
state (``queued`` → ``running`` → ``done`` | ``failed``), the placement
attempts, which worker ran it, and the final
:class:`~repro.api.types.TranscodeResult`. Jobs round-trip through
plain-JSON payloads so the queue checkpoint can restore them after a
service restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.api.types import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobStatus,
    TranscodeRequest,
    TranscodeResult,
)

__all__ = ["Job"]


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    job_id: int
    request: TranscodeRequest
    seq: int = 0                     # arrival order (FIFO within priority)
    state: str = JOB_QUEUED
    attempts: int = 0                # placement attempts (not retries)
    worker: str | None = None        # worker name once placed
    error: str | None = None
    latency_cycles: float | None = None
    result: TranscodeResult | None = field(default=None, repr=False)
    trace_id: str | None = None      # links the job to its span tree
    #: Per-stage wall-clock seconds, accumulated across requeues
    #: (queue_wait_s, placement_s, encode_s, retry_overhead_s, e2e_s).
    timings: dict[str, float] = field(default_factory=dict)
    #: Dollars billed for this job's worker occupancy, accumulated
    #: across placement attempts (crashed attempts still billed).
    cost_usd: float = 0.0
    #: Transient perf-counter stamps (monotonic ns); never serialized —
    #: a restored job simply restarts its clocks on readmission.
    submitted_ns: int | None = field(default=None, repr=False, compare=False)
    enqueued_ns: int | None = field(default=None, repr=False, compare=False)

    def add_timing(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock time into ``stage``."""
        self.timings[stage] = self.timings.get(stage, 0.0) + float(seconds)

    # -- lifecycle transitions -----------------------------------------
    def mark_running(self, worker: str) -> None:
        """Record a placement attempt on ``worker``."""
        self.state = JOB_RUNNING
        self.worker = worker
        self.attempts += 1

    def mark_done(self, result: TranscodeResult) -> None:
        """Record successful completion."""
        self.state = JOB_DONE
        self.result = result
        self.latency_cycles = result.cycles
        self.error = None

    def mark_requeued(self, error: str) -> None:
        """Return the job to the queue after a worker failure."""
        self.state = JOB_QUEUED
        self.error = error
        self.worker = None

    def mark_failed(self, error: str) -> None:
        """Record terminal failure (placement attempts exhausted)."""
        self.state = JOB_FAILED
        self.error = error

    # -- views ---------------------------------------------------------
    @property
    def terminal(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self.state in (JOB_DONE, JOB_FAILED)

    def status(self) -> JobStatus:
        """A detached snapshot of this job for API consumers."""
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            clip=self.request.clip,
            preset=self.request.preset,
            crf=self.request.crf,
            refs=self.request.refs,
            priority=self.request.priority,
            attempts=self.attempts,
            worker=self.worker,
            error=self.error,
            result=self.result,
            trace_id=self.trace_id,
            timings=dict(self.timings),
            cost_usd=self.cost_usd,
        )

    # -- serde ---------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for the service checkpoint."""
        return {
            "job_id": self.job_id,
            "request": self.request.to_payload(),
            "seq": self.seq,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "latency_cycles": self.latency_cycles,
            "result": None if self.result is None else self.result.to_payload(),
            "trace_id": self.trace_id,
            "timings": dict(self.timings),
            "cost_usd": self.cost_usd,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Job":
        """Inverse of :meth:`to_payload`."""
        result = payload.get("result")
        return cls(
            job_id=int(payload["job_id"]),
            request=TranscodeRequest.from_payload(payload["request"]),
            seq=int(payload.get("seq", 0)),
            state=str(payload.get("state", JOB_QUEUED)),
            attempts=int(payload.get("attempts", 0)),
            worker=payload.get("worker"),
            error=payload.get("error"),
            latency_cycles=payload.get("latency_cycles"),
            result=None if result is None else TranscodeResult.from_payload(result),
            trace_id=payload.get("trace_id"),
            timings={k: float(v)
                     for k, v in (payload.get("timings") or {}).items()},
            cost_usd=float(payload.get("cost_usd", 0.0)),
        )
