"""Mechanistic interval core model: assembles cycles from event statistics.

Follows the interval-simulation idea behind Sniper [Carlson et al.]: the
core dispatches at full width except during *intervals* opened by miss
events — branch mispredictions (pipeline refill), instruction supply
misses (front end), and long-latency data misses (back end, bounded by
the reorder window and MLP). Total cycles are the sum of the base
dispatch time plus the non-overlapped penalty of each interval class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import TraceStream
from repro.uarch.branch import BranchStats
from repro.uarch.config import MicroarchConfig
from repro.uarch.frontend import FrontendStalls
from repro.uarch.resources import MissProfile, ResourceStalls, compute_resource_stalls
from repro.uarch.topdown import TopdownBreakdown

__all__ = ["CoreReport", "run_core_model"]

#: Execution ports available for arithmetic uops.
_ALU_PORTS = 3.0
#: Extra port-occupancy weight of multiply/long-latency ops.
_MUL_WEIGHT = 2.0


@dataclass
class CoreReport:
    """Cycle total plus every component needed for reports."""

    cycles: float
    base_cycles: float
    fe_cycles: float
    bs_cycles: float
    mem_cycles: float
    core_cycles: float
    topdown: TopdownBreakdown
    resource_stalls: ResourceStalls

    @property
    def total_stall_cycles(self) -> float:
        return self.fe_cycles + self.bs_cycles + self.mem_cycles + self.core_cycles


def run_core_model(
    *,
    stream: TraceStream,
    config: MicroarchConfig,
    frontend: FrontendStalls,
    branch: BranchStats,
    misses: MissProfile,
) -> CoreReport:
    """Assemble the cycle count and Top-down breakdown."""
    uops = stream.total_instructions
    width = float(config.dispatch_width)
    base_cycles = uops / width

    # Execution-port pressure: arithmetic demand beyond dispatch bandwidth
    # shows up as core-bound issue stalls.
    exec_cycles = (stream.instr.alu + _MUL_WEIGHT * stream.instr.mul) / _ALU_PORTS
    exec_extra = max(0.0, exec_cycles - base_cycles)

    stalls = compute_resource_stalls(misses, config)

    # The ROB-full shadow is the canonical memory-bound component; the SB
    # contributes the part of store pressure the ROB shadow does not hide.
    mem_cycles = stalls.rob + 0.3 * stalls.sb
    # RS pressure counts as core bound (issue logic starved for entries).
    core_cycles = exec_extra + 0.5 * stalls.rs

    # Front-end bubbles that occur while the back end is already stalled
    # are charged to the back end by the Top-down method (the slot is
    # back-end bound if the core could not have accepted a uop anyway).
    # This overlap is exactly why the paper observes front-end bound slots
    # *shrinking* as workloads become more memory bound (§IV-A, roofline
    # discussion): a stalled machine stops fetching.
    be_cycles = mem_cycles + core_cycles
    be_pressure = be_cycles / max(base_cycles + be_cycles, 1e-9)
    fe_cycles = frontend.total * (1.0 - be_pressure)
    bs_cycles = branch.mispredicts * config.branch_mispredict_penalty

    cycles = base_cycles + fe_cycles + bs_cycles + mem_cycles + core_cycles
    topdown = TopdownBreakdown.from_cycles(
        width=config.dispatch_width,
        uops=uops,
        base_cycles=base_cycles,
        fe_cycles=fe_cycles,
        bs_cycles=bs_cycles,
        mem_cycles=mem_cycles,
        core_cycles=core_cycles,
    )
    return CoreReport(
        cycles=cycles,
        base_cycles=base_cycles,
        fe_cycles=fe_cycles,
        bs_cycles=bs_cycles,
        mem_cycles=mem_cycles,
        core_cycles=core_cycles,
        topdown=topdown,
        resource_stalls=stalls,
    )
