"""The simulator: trace stream in, full counter report out.

Walks the trace events once — instruction fetches through the iTLB and
the instruction-side cache hierarchy, data reads/writes through the
data-side hierarchy (with separate load/store miss accounting for the
store-buffer model), branch outcome sequences into the configured
predictor — then runs the interval core model to assemble cycles, the
Top-down breakdown, MPKI, and resource-stall counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice

from repro.obs import session as obs
from repro.resilience.faults import fault_point
from repro.trace.events import BranchEvent, KernelEvent, MemoryEvent, TraceStream
from repro.trace.program import Program
from repro.uarch.branch import BranchModel, BranchStats
from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.config import MicroarchConfig
from repro.uarch.core import CoreReport, run_core_model
from repro.uarch.frontend import compute_frontend_stalls
from repro.uarch.icache import AnalyticICache
from repro.uarch.resources import MissProfile

__all__ = ["Simulator", "SimReport", "simulate"]

DEFAULT_FREQ_HZ = 3.5e9  # the paper's 3.5 GHz Xeon E3

#: Trace events per telemetry window span during replay.
REPLAY_WINDOW = 4096


@dataclass
class SimReport:
    """Everything the profiling layer and experiments consume."""

    config_name: str
    cycles: float
    instructions: float
    seconds: float
    topdown: "TopdownBreakdownProxy"
    mpki: dict[str, float]
    resource_stalls_pki: dict[str, float]
    branch: BranchStats
    core: CoreReport
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


# The report stores the real TopdownBreakdown; alias for type clarity.
TopdownBreakdownProxy = object


class Simulator:
    """One-shot simulator bound to a configuration."""

    def __init__(self, config: MicroarchConfig, *, freq_hz: float = DEFAULT_FREQ_HZ):
        if freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        self.config = config
        self.freq_hz = freq_hz

    def run(self, stream: TraceStream, program: Program) -> SimReport:
        fault_point("sim.run", detail=self.config.name)
        with obs.span(
            "simulate", config=self.config.name, n_events=len(stream.events)
        ):
            return self._run_impl(stream, program)

    def _run_impl(self, stream: TraceStream, program: Program) -> SimReport:
        config = self.config

        # Instruction side: analytic reuse-distance model over the code
        # layout's fetch footprints; never capacity-scaled (code footprint
        # is resolution independent).
        icache = AnalyticICache(
            program,
            l1i_lines=config.l1i.size_bytes // config.l1i.line_bytes,
            l2i_lines=config.l2.size_bytes // config.l2.line_bytes,
            l3i_lines=config.l3.size_bytes // config.l3.line_bytes,
            itlb_entries=config.itlb_entries,
        )

        # Data side: capacity-scaled for proxy workloads.
        data_levels = [
            Cache(config.effective_l1d(), "l1d"),
            Cache(config.effective_l2_data(), "l2d"),
            Cache(config.effective_l3_data(), "l3d"),
        ]
        l4 = config.effective_l4_data()
        if l4 is not None:
            data_levels.append(Cache(l4, "l4d"))
        d_hier = CacheHierarchy(data_levels)

        predictor = BranchModel(config.branch_predictor)

        # Load/store split miss accounting via per-event snapshots.
        load_misses = [0.0] * len(data_levels)
        store_misses = [0.0] * len(data_levels)
        load_mem = 0.0
        store_mem = 0.0

        n_kernel = n_memory = n_branch = 0

        def replay(event) -> None:
            nonlocal load_mem, store_mem, n_kernel, n_memory, n_branch
            if isinstance(event, KernelEvent):
                n_kernel += 1
                icache.invoke(event.kernel, event.weight)
            elif isinstance(event, MemoryEvent):
                if event.kind == "i":  # legacy traces; treat as L1i fetch
                    return
                n_memory += 1
                before = [c.stats.misses for c in data_levels]
                mem_before = d_hier.mem_accesses
                d_hier.access(event.addrs, event.weight)
                deltas = [
                    c.stats.misses - b for c, b in zip(data_levels, before)
                ]
                mem_delta = d_hier.mem_accesses - mem_before
                target = load_misses if event.kind == "r" else store_misses
                for i, d in enumerate(deltas):
                    target[i] += d
                if event.kind == "r":
                    load_mem += mem_delta
                else:
                    store_mem += mem_delta
            elif isinstance(event, BranchEvent):
                n_branch += 1
                predictor.record(event.site, event.outcomes, event.weight)

        if obs.enabled():
            # Chunk the replay into fixed-size windows so long traces show
            # up as a sequence of timed spans rather than one opaque block.
            events = iter(stream.iter_events())
            window_idx = 0
            while True:
                chunk = list(islice(events, REPLAY_WINDOW))
                if not chunk:
                    break
                with obs.span(
                    "simulate.window", index=window_idx, events=len(chunk)
                ):
                    for event in chunk:
                        replay(event)
                window_idx += 1
        else:
            for event in stream.iter_events():
                replay(event)

        with obs.span("simulate.core_model", config=config.name):
            branch = predictor.evaluate(
                total_branches=stream.total_branches,
                branch_hints=program.layout.branch_hints,
            )
            frontend = compute_frontend_stalls(
                stream=stream,
                program=program,
                config=config,
                l1i_misses=icache.stats.l1i_misses,
                l2i_misses=icache.stats.l2i_misses,
                l3i_misses=icache.stats.l3i_misses,
                itlb_misses=icache.stats.itlb_misses,
            )
            has_l4 = len(data_levels) == 4
            misses = MissProfile(
                load_l1=load_misses[0],
                load_l2=load_misses[1],
                load_l3=load_misses[2],
                load_l4=load_misses[3] if has_l4 else 0.0,
                load_mem=load_mem,
                store_l1=store_misses[0],
                store_l2=store_misses[1],
                store_l3=store_misses[2],
                store_l4=store_misses[3] if has_l4 else 0.0,
                store_mem=store_mem,
            )
            core = run_core_model(
                stream=stream,
                config=config,
                frontend=frontend,
                branch=branch,
                misses=misses,
            )

        # Second-level front-end attribution (paper §IV-A1: FE-bound slots
        # are mostly MITE/DSB, i.e. decode supply, plus i-cache misses).
        fe_total = max(frontend.total, 1e-12)
        fe_breakdown = {
            "icache_frac": frontend.icache / fe_total,
            "itlb_frac": frontend.itlb / fe_total,
            "decode_frac": frontend.decode / fe_total,  # MITE/DSB component
        }

        instructions = stream.total_instructions
        kilo = max(instructions / 1000.0, 1e-12)
        mpki = {
            "l1d": (load_misses[0] + store_misses[0]) / kilo,
            "l2d": (load_misses[1] + store_misses[1]) / kilo,
            "l3d": (load_misses[2] + store_misses[2]) / kilo,
            "l1i": icache.stats.l1i_misses / kilo,
            "l2i": icache.stats.l2i_misses / kilo,
            "l3i": icache.stats.l3i_misses / kilo,
            "itlb": icache.stats.itlb_misses / kilo,
            "branch": branch.mispredicts / kilo,
        }
        stalls = core.resource_stalls
        resource_pki = {
            "any": stalls.any / kilo,
            "rob": stalls.rob / kilo,
            "rs": stalls.rs / kilo,
            "sb": stalls.sb / kilo,
        }

        tel = obs.current()
        if tel is not None:
            m = tel.metrics
            m.counter("sim.runs").inc()
            m.counter("sim.events.kernel").inc(n_kernel)
            m.counter("sim.events.memory").inc(n_memory)
            m.counter("sim.events.branch").inc(n_branch)
            m.counter("sim.instructions").inc(instructions)
            m.counter("sim.cycles").inc(core.cycles)
            m.counter("sim.branch.mispredicts").inc(branch.mispredicts)
            m.counter("sim.dcache.l1_misses").inc(
                load_misses[0] + store_misses[0]
            )
            m.counter("sim.dcache.l2_misses").inc(
                load_misses[1] + store_misses[1]
            )
            m.counter("sim.dcache.l3_misses").inc(
                load_misses[2] + store_misses[2]
            )
            m.counter("sim.dcache.mem_accesses").inc(load_mem + store_mem)
            m.counter("sim.icache.l1i_misses").inc(icache.stats.l1i_misses)
            m.counter("sim.icache.itlb_misses").inc(icache.stats.itlb_misses)

        return SimReport(
            config_name=config.name,
            cycles=core.cycles,
            instructions=instructions,
            seconds=core.cycles / self.freq_hz,
            topdown=core.topdown,
            mpki=mpki,
            resource_stalls_pki=resource_pki,
            branch=branch,
            core=core,
            extra={
                "fe_cycles": core.fe_cycles,
                "bs_cycles": core.bs_cycles,
                "mem_cycles": core.mem_cycles,
                "core_cycles": core.core_cycles,
                "itlb_misses": icache.stats.itlb_misses,
                # DRAM lines transferred (for roofline operational intensity).
                "mem_lines": load_mem + store_mem,
                **{f"fe_{k}": v for k, v in fe_breakdown.items()},
            },
        )


def simulate(
    stream: TraceStream,
    program: Program,
    config: MicroarchConfig,
    *,
    freq_hz: float = DEFAULT_FREQ_HZ,
) -> SimReport:
    """Convenience wrapper: simulate one trace on one configuration."""
    return Simulator(config, freq_hz=freq_hz).run(stream, program)
