"""Analytic instruction-cache and iTLB model.

The encoder's per-macroblock kernel sequence is almost perfectly cyclic.
An exact LRU simulation of a cyclic working set slightly larger than the
cache produces a 100%-miss cliff — a well-known LRU pathology that real
front ends do not exhibit thanks to next-line prefetch, partial-set
residency, and sequence variation. Instead we use the classic working-set
approximation: the probability that a kernel's lines were evicted since
its previous invocation decays exponentially with the volume of other
code fetched in between::

    P(miss) = 1 - exp(-intervening_lines / (capacity_lines * retention))

``retention`` absorbs associativity and prefetch effects; ``prefetch``
further scales the resulting misses (sequential line prefetch hides about
half of the remaining ones). The same model with page-granularity
footprints serves the iTLB. The model is smooth in both the cache size
(the ``fe_op`` configuration doubles L1i and iTLB) and the layout's fetch
footprints (AutoFDO shrinks them), which is exactly the sensitivity the
experiments need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.trace.program import Program

__all__ = ["AnalyticICache", "ICacheStats"]

#: Effective retention multiplier over raw capacity (assoc + prefetch locality).
_RETENTION = 8.0
#: Fraction of predicted misses not hidden by the next-line prefetcher.
_PREFETCH_RESIDUE = 0.5
#: Code-dispersion factor: each kernel family's variants are scattered, so
#: the page footprint is larger than lines/64 would suggest.
_PAGE_DISPERSION = 2.0
_LINES_PER_PAGE = 4096 // 64


@dataclass
class ICacheStats:
    """Weighted miss totals for the instruction side."""

    l1i_misses: float = 0.0
    l2i_misses: float = 0.0
    l3i_misses: float = 0.0
    itlb_misses: float = 0.0
    fetch_lines: float = 0.0  # total lines fetched (weighted)


class AnalyticICache:
    """Reuse-distance front-end model over kernel invocations."""

    def __init__(
        self,
        program: Program,
        *,
        l1i_lines: int,
        l2i_lines: int,
        l3i_lines: int,
        itlb_entries: int,
    ) -> None:
        self.program = program
        self._caps = (
            max(l1i_lines, 1) * _RETENTION,
            max(l2i_lines, 1) * _RETENTION,
            max(l3i_lines, 1) * _RETENTION,
        )
        self._itlb_cap = max(itlb_entries, 1) * _RETENTION
        self._clock_lines = 0.0  # cumulative fetched lines
        self._clock_pages = 0.0
        self._last_lines: dict[str, float] = {}
        self._last_pages: dict[str, float] = {}
        self._footprint: dict[str, float] = {
            name: float(len(addrs))
            for name, addrs in program.layout.fetch_line_addrs.items()
        }
        self.stats = ICacheStats()

    def invoke(self, kernel: str, weight: float = 1.0) -> None:
        """Account one (weighted) invocation of ``kernel``."""
        footprint = self._footprint.get(kernel)
        if footprint is None:
            footprint = float(len(self.program.layout.fetch_line_addrs[kernel]))
            self._footprint[kernel] = footprint
        pages = footprint / _LINES_PER_PAGE * _PAGE_DISPERSION

        last = self._last_lines.get(kernel)
        if last is None:
            miss_prob = (1.0, 1.0, 1.0)  # compulsory
        else:
            intervening = self._clock_lines - last
            miss_prob = tuple(
                1.0 - math.exp(-intervening / cap) for cap in self._caps
            )
        lines_l1 = footprint * miss_prob[0] * _PREFETCH_RESIDUE * weight
        # Deeper levels only see what the shallower level missed.
        lines_l2 = footprint * miss_prob[0] * miss_prob[1] * _PREFETCH_RESIDUE * weight
        lines_l3 = (
            footprint
            * miss_prob[0]
            * miss_prob[1]
            * miss_prob[2]
            * _PREFETCH_RESIDUE
            * weight
        )
        self.stats.l1i_misses += lines_l1
        self.stats.l2i_misses += lines_l2
        self.stats.l3i_misses += lines_l3
        self.stats.fetch_lines += footprint * weight

        last_p = self._last_pages.get(kernel)
        if last_p is None:
            tlb_prob = 1.0
        else:
            tlb_prob = 1.0 - math.exp(
                -(self._clock_pages - last_p) / self._itlb_cap
            )
        self.stats.itlb_misses += pages * tlb_prob * weight

        # Advance the fetch clock first, then stamp the kernel *after* its
        # own fetches so a back-to-back re-invocation sees zero
        # intervening code (its lines are still resident).
        self._clock_lines += footprint
        self._clock_pages += pages
        self._last_lines[kernel] = self._clock_lines
        self._last_pages[kernel] = self._clock_pages
