"""Set-associative LRU caches and a multi-level hierarchy.

The hierarchy is non-inclusive with allocate-on-miss at every level.
Accesses arrive as numpy arrays of byte addresses; the per-address LRU
walk is a tight Python loop (the dominant simulation cost), so callers
should pass line-collapsed streams where possible — the hierarchy itself
collapses consecutive same-line accesses, which are guaranteed hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.uarch.config import CacheParams

__all__ = ["Cache", "CacheStats", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Access/miss counters for one cache level (weighted)."""

    accesses: float = 0.0
    misses: float = 0.0

    @property
    def hits(self) -> float:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: float) -> float:
        """Misses per kilo instructions."""
        if instructions <= 0:
            return 0.0
        return self.misses * 1000.0 / instructions


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.n_sets = params.n_sets
        self.assoc = params.assoc
        self._line_shift = int(params.line_bytes).bit_length() - 1
        if params.line_bytes != (1 << self._line_shift):
            raise ValueError("line_bytes must be a power of two")
        # Per-set LRU stacks: most recently used at the END of the list.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def access_line(self, line: int, weight: float = 1.0) -> bool:
        """Access one line address; returns True on hit."""
        s = self._sets[line % self.n_sets]
        self.stats.accesses += weight
        try:
            s.remove(line)
        except ValueError:
            self.stats.misses += weight
            if len(s) >= self.assoc:
                s.pop(0)
            s.append(line)
            return False
        s.append(line)
        return True

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass
class HierarchyStats:
    """Stats for every level plus memory-access totals."""

    levels: dict[str, CacheStats] = field(default_factory=dict)
    mem_accesses: float = 0.0


class CacheHierarchy:
    """A chain of cache levels backed by memory.

    ``levels`` order is nearest-first (e.g. [L1d, L2, L3]). A miss at
    level *i* probes level *i+1*; a miss at the last level counts as a
    memory access. Each level allocates on miss (non-inclusive victim
    behaviour is not modeled).
    """

    def __init__(self, levels: list[Cache]) -> None:
        if not levels:
            raise ValueError("hierarchy requires at least one level")
        self.levels = levels
        self.mem_accesses = 0.0

    def access(self, addrs: np.ndarray, weight: float = 1.0) -> None:
        """Run a batch of byte addresses through the hierarchy."""
        if addrs.size == 0:
            return
        first = self.levels[0]
        lines = (addrs >> np.uint64(first._line_shift)).astype(np.int64)
        if lines.size > 1:
            # Collapse consecutive same-line accesses (guaranteed hits).
            keep = np.empty(lines.size, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            collapsed = lines[keep]
            # The collapsed-away accesses still count as L1 hits.
            n_extra = float(lines.size - collapsed.size) * weight
            first.stats.accesses += n_extra
            lines = collapsed
        levels = self.levels
        n_levels = len(levels)
        for line in lines.tolist():
            level = 0
            while level < n_levels:
                if levels[level].access_line(line, weight):
                    break
                level += 1
            else:
                self.mem_accesses += weight

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            levels={c.name: c.stats for c in self.levels},
            mem_accesses=self.mem_accesses,
        )
