"""Front-end model: i-cache, iTLB, and the MITE/DSB decode paths.

The paper's VTune analysis attributes most front-end bound slots to the
micro-instruction translation engine (MITE) and decoded stream buffer
(DSB) — i.e. instruction-decode supply — with i-cache misses layered on
top. We model:

- i-cache miss stall cycles from the instruction-side hierarchy walk
  (partially hidden by fetch-ahead, so a fixed overlap factor applies),
- iTLB miss penalties (page walks),
- a per-instruction decode tax for kernels whose hot-loop body exceeds
  the DSB capacity and therefore streams from the legacy MITE decoders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import TraceStream
from repro.trace.program import Program
from repro.uarch.config import MicroarchConfig

__all__ = ["FrontendStalls", "compute_frontend_stalls", "mite_instruction_fraction"]

#: Fraction of raw i-miss latency visible as stall (fetch-ahead hides some).
_FETCH_OVERLAP = 0.7

#: Extra decode cycles per instruction delivered via MITE instead of DSB.
_MITE_TAX = 0.03


@dataclass
class FrontendStalls:
    """Front-end stall cycles, by cause."""

    icache: float = 0.0
    itlb: float = 0.0
    decode: float = 0.0

    @property
    def total(self) -> float:
        return self.icache + self.itlb + self.decode


def mite_instruction_fraction(stream: TraceStream, program: Program, dsb_lines: int) -> float:
    """Fraction of dynamic instructions decoded through MITE.

    A kernel whose per-invocation fetch footprint exceeds ``dsb_lines``
    cannot stay resident in the decoded-uop buffer, so its instructions
    repeatedly pay legacy-decode bandwidth. Profile-guided layout reduces
    fetch footprints and therefore moves kernels back under the DSB limit
    — one of the mechanisms behind AutoFDO's front-end win.
    """
    total = stream.total_instructions
    if total <= 0:
        return 0.0
    mite_instr = 0.0
    for name, mix in stream.instr_by_kernel.items():
        footprint = len(program.layout.fetch_line_addrs.get(name, ()))
        if footprint > dsb_lines:
            mite_instr += mix.total
    return mite_instr / total


def compute_frontend_stalls(
    *,
    stream: TraceStream,
    program: Program,
    config: MicroarchConfig,
    l1i_misses: float,
    l2i_misses: float,
    l3i_misses: float,
    itlb_misses: float,
) -> FrontendStalls:
    """Aggregate front-end stall cycles."""
    l4_lat = config.l4.latency if config.l4 is not None else config.mem_latency
    icache_cycles = _FETCH_OVERLAP * (
        (l1i_misses - l2i_misses) * config.l2.latency
        + (l2i_misses - l3i_misses) * config.l3.latency
        + l3i_misses * l4_lat
    )
    itlb_cycles = itlb_misses * config.itlb_miss_penalty
    mite_frac = mite_instruction_fraction(stream, program, config.dsb_lines)
    decode_cycles = stream.total_instructions * mite_frac * _MITE_TAX
    return FrontendStalls(
        icache=max(icache_cycles, 0.0),
        itlb=itlb_cycles,
        decode=decode_cycles,
    )
