"""Instruction TLB model (fully associative, LRU).

Table IV's ``fe_op`` configuration doubles the iTLB (128 → 256 entries),
so the front-end model needs a real TLB: i-fetch addresses are reduced to
page numbers and run through an LRU stack; each miss costs a page-walk
penalty in front-end stall cycles.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive

__all__ = ["Tlb"]


class Tlb:
    """Fully associative LRU TLB."""

    def __init__(self, entries: int, page_bytes: int = 4096, name: str = "itlb"):
        check_positive("entries", entries)
        check_positive("page_bytes", page_bytes)
        self.entries = int(entries)
        self.name = name
        self._page_shift = int(page_bytes).bit_length() - 1
        if page_bytes != (1 << self._page_shift):
            raise ValueError("page_bytes must be a power of two")
        self._stack: list[int] = []  # MRU at the end
        self.accesses = 0.0
        self.misses = 0.0

    def access(self, addrs: np.ndarray, weight: float = 1.0) -> None:
        """Translate a batch of byte addresses."""
        if addrs.size == 0:
            return
        pages = (addrs >> np.uint64(self._page_shift)).astype(np.int64)
        if pages.size > 1:
            keep = np.empty(pages.size, dtype=bool)
            keep[0] = True
            np.not_equal(pages[1:], pages[:-1], out=keep[1:])
            self.accesses += float(pages.size - int(keep.sum())) * weight
            pages = pages[keep]
        stack = self._stack
        for page in pages.tolist():
            self.accesses += weight
            try:
                stack.remove(page)
            except ValueError:
                self.misses += weight
                if len(stack) >= self.entries:
                    stack.pop(0)
            stack.append(page)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: float) -> float:
        if instructions <= 0:
            return 0.0
        return self.misses * 1000.0 / instructions
