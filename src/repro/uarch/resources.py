"""Back-end resource-stall models: ROB, reservation stations, store buffer.

These produce the RESOURCE_STALLS.{ROB,RS,SB,ANY}-style counters of the
paper's Figure 5e-5h. The model is mechanistic (Sniper-style interval
reasoning): a load miss with latency L blocks retirement; dispatch keeps
filling the ROB for ``rob_size / width`` cycles and then stalls for the
remainder of the miss. Overlapped misses (memory-level parallelism) share
that shadow, dividing the visible stall by the achievable MLP. The RS and
SB behave the same way with their own (smaller) capacities: the RS drains
at issue (doubled effective capacity when the core can issue at
dispatch), and the SB drains stores at the rate the memory hierarchy
completes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import MicroarchConfig

__all__ = ["MissProfile", "ResourceStalls", "compute_resource_stalls", "achievable_mlp"]

#: Fraction of a miss's latency exposed through dependence chains even
#: when the reorder window is deep enough to cover it (pointer chases,
#: accumulator dependences in SAD/transform loops).
_DEP_FRACTION = 0.5


@dataclass(frozen=True)
class MissProfile:
    """Weighted miss counts at each data-cache boundary, split by type.

    ``lX_misses`` counts accesses that missed at level X (and therefore
    probed the next level); latency-to-service for a miss that *hits* at
    the next level is that level's hit latency.
    """

    load_l1: float = 0.0
    load_l2: float = 0.0
    load_l3: float = 0.0
    load_l4: float = 0.0  # only populated when an L4 exists
    load_mem: float = 0.0
    store_l1: float = 0.0
    store_l2: float = 0.0
    store_l3: float = 0.0
    store_l4: float = 0.0
    store_mem: float = 0.0


@dataclass
class ResourceStalls:
    """Stall cycles attributed to each back-end structure."""

    rob: float = 0.0
    rs: float = 0.0
    sb: float = 0.0

    @property
    def any(self) -> float:
        """Union approximation: structures overlap heavily; the ROB is the
        outermost structure so its stalls dominate the union."""
        return self.rob + 0.5 * (self.rs + self.sb)


def achievable_mlp(rob_size: int) -> float:
    """Memory-level parallelism sustainable with a given ROB.

    A larger instruction window exposes more independent misses; empirical
    interval models scale MLP roughly with window size up to the number
    of outstanding-miss buffers (~10 fill buffers).
    """
    return max(1.0, min(rob_size / 32.0, 10.0))


def _miss_latencies(config: MicroarchConfig) -> tuple[float, float, float, float]:
    """Service latency for a miss satisfied at L2 / L3 / L4 / memory."""
    l2 = float(config.l2.latency)
    l3 = float(config.l3.latency)
    l4 = float(config.l4.latency) if config.l4 is not None else float(config.mem_latency)
    mem = float(config.mem_latency)
    return l2, l3, l4, mem


def compute_resource_stalls(
    profile: MissProfile, config: MicroarchConfig
) -> ResourceStalls:
    """Stall cycles for ROB / RS / SB given a miss profile."""
    l2, l3, l4, mem = _miss_latencies(config)
    width = float(config.dispatch_width)
    mlp = achievable_mlp(config.rob_size)

    # Loads that are serviced at each level (miss at X == probe at X+1).
    serviced = [
        (profile.load_l1 - profile.load_l2, l2),
        (profile.load_l2 - profile.load_l3, l3),
        (
            (profile.load_l3 - profile.load_l4, l4)
            if config.l4 is not None
            else (profile.load_l3 - profile.load_mem, mem)
        ),
    ]
    if config.l4 is not None:
        serviced.append((profile.load_l4 - profile.load_mem, mem))
        serviced.append((profile.load_mem, mem))
    else:
        serviced.append((profile.load_mem, mem))

    rob_shadow = config.rob_size / width
    # A deeper window also overlaps more of the *dependent* latency: the
    # scheduler can run further ahead on independent work while a chain
    # stalls. Normalized to the baseline 128-entry ROB.
    dep_overlap = (128.0 / config.rob_size) ** 0.5
    rs_capacity = config.rs_size * (2.0 if config.issue_at_dispatch else 1.0)
    rs_shadow = rs_capacity / width

    rob = 0.0
    rs = 0.0
    for count, lat in serviced:
        n = max(count, 0.0)
        # Visible stall per load miss: whichever dominates — the part of
        # the latency the window cannot cover (shared across MLP parallel
        # misses) or the serial dependence-chain exposure.
        rob += n * max(
            max(0.0, lat - rob_shadow) / mlp,
            lat * _DEP_FRACTION * dep_overlap,
        )
        rs += n * max(0.0, lat - rs_shadow) / mlp

    # Store buffer: stores that miss occupy an SB entry for the service
    # latency; the buffer absorbs sb_size of them before dispatch stalls.
    sb_serviced = [
        (profile.store_l1 - profile.store_l2, l2),
        (profile.store_l2 - profile.store_l3, l3),
        (
            (profile.store_l3 - profile.store_l4, l4)
            if config.l4 is not None
            else (profile.store_l3 - profile.store_mem, mem)
        ),
    ]
    if config.l4 is not None:
        sb_serviced.append((profile.store_l4 - profile.store_mem, mem))
        sb_serviced.append((profile.store_mem, mem))
    else:
        sb_serviced.append((profile.store_mem, mem))
    sb_shadow = float(config.sb_size)  # one store per cycle drain headroom
    sb = 0.0
    for count, lat in sb_serviced:
        n = max(count, 0.0)
        sb += n * max(0.0, lat - sb_shadow) / mlp
    return ResourceStalls(rob=rob, rs=rs, sb=sb)
