"""Microarchitecture configuration (the Table IV parameter surface).

All capacities are in bytes (caches) or entries (TLB, ROB, RS, SB). The
``data_capacity_scale`` divisor shrinks *data-side* cache capacities for
proxy-scale workloads: the synthetic clips used in simulation sweeps are
spatially downscaled stand-ins for the paper's 480p–2160p inputs, so the
simulator preserves the footprint-to-capacity ratios by scaling data
capacities by the same factor. Instruction-side capacities are never
scaled (code footprint does not depend on video resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import check_choice, check_positive

__all__ = ["MicroarchConfig", "CacheParams"]


@dataclass(frozen=True)
class CacheParams:
    """Geometry of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 4  # hit latency in cycles

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("assoc", self.assoc)
        check_positive("line_bytes", self.line_bytes)
        check_positive("latency", self.latency)
        n_lines = self.size_bytes // self.line_bytes
        if n_lines < self.assoc:
            raise ValueError(
                f"cache of {self.size_bytes}B cannot be {self.assoc}-way"
            )

    @property
    def n_sets(self) -> int:
        return max(1, self.size_bytes // self.line_bytes // self.assoc)

    def scaled(self, divisor: float) -> "CacheParams":
        """Capacity-scaled copy (associativity preserved, >= 1 set)."""
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        new_size = max(int(self.size_bytes / divisor), self.assoc * self.line_bytes)
        return replace(self, size_bytes=new_size)


@dataclass(frozen=True)
class MicroarchConfig:
    """One simulated processor configuration (one Table IV column)."""

    name: str = "baseline"
    # --- memory hierarchy ---
    l1d: CacheParams = CacheParams(32 * 1024, 8, latency=4)
    l1i: CacheParams = CacheParams(32 * 1024, 8, latency=4)
    l2: CacheParams = CacheParams(256 * 1024, 8, latency=12)
    l3: CacheParams = CacheParams(8 * 1024 * 1024, 16, latency=35)
    l4: CacheParams | None = None  # be_op1 adds an L4
    mem_latency: int = 160
    itlb_entries: int = 128
    page_bytes: int = 4096
    itlb_miss_penalty: int = 20
    # --- core ---
    dispatch_width: int = 4
    rob_size: int = 128
    rs_size: int = 36
    sb_size: int = 32
    issue_at_dispatch: bool = False
    branch_predictor: str = "pentium_m"  # or "tage", "static"
    branch_mispredict_penalty: int = 15
    # DSB (decoded uop buffer) capacity in cache lines of hot loop body.
    dsb_lines: int = 48
    # --- workload scaling (see module docstring) ---
    data_capacity_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("dispatch_width", self.dispatch_width)
        check_positive("rob_size", self.rob_size)
        check_positive("rs_size", self.rs_size)
        check_positive("sb_size", self.sb_size)
        check_positive("mem_latency", self.mem_latency)
        check_positive("itlb_entries", self.itlb_entries)
        check_choice(
            "branch_predictor", self.branch_predictor, ("pentium_m", "tage", "static")
        )
        if self.data_capacity_scale < 1.0:
            raise ValueError("data_capacity_scale must be >= 1")

    def with_updates(self, **changes: object) -> "MicroarchConfig":
        return replace(self, **changes)  # type: ignore[arg-type]

    def effective_l1d(self) -> CacheParams:
        return self.l1d.scaled(self.data_capacity_scale)

    def effective_l2_data(self) -> CacheParams:
        return self.l2.scaled(self.data_capacity_scale)

    def effective_l3_data(self) -> CacheParams:
        return self.l3.scaled(self.data_capacity_scale)

    def effective_l4_data(self) -> CacheParams | None:
        if self.l4 is None:
            return None
        return self.l4.scaled(self.data_capacity_scale)

    def describe(self) -> dict[str, object]:
        """Nominal (unscaled) parameters, one Table IV row set."""
        return {
            "config": self.name,
            "L1d": _fmt_size(self.l1d.size_bytes),
            "L1i": _fmt_size(self.l1i.size_bytes),
            "L2": _fmt_size(self.l2.size_bytes),
            "L3": _fmt_size(self.l3.size_bytes),
            "L4": _fmt_size(self.l4.size_bytes) if self.l4 else "none",
            "itlb": self.itlb_entries,
            "ROB": self.rob_size,
            "RS": self.rs_size,
            "issue_at_dispatch": "Yes" if self.issue_at_dispatch else "No",
            "branch_predictor": self.branch_predictor,
        }


def _fmt_size(n: int) -> str:
    if n % (1024 * 1024) == 0:
        return f"{n // (1024 * 1024)}M"
    if n % 1024 == 0:
        return f"{n // 1024}K"
    return str(n)
