"""The five Table IV microarchitecture configurations.

``baseline`` is Sniper's default Gainestown-like core. The four variants
change exactly the parameters the paper lists:

- ``fe_op``  — front-end optimized: L1i 64K, iTLB 256;
- ``be_op1`` — back-end (memory): L1d 64K, L2 512K, L3 4096K, +L4 16384K;
- ``be_op2`` — back-end (window): ROB 256, RS 72, issue at dispatch;
- ``bs_op``  — bad-speculation optimized: TAGE branch predictor.
"""

from __future__ import annotations

from repro.uarch.config import CacheParams, MicroarchConfig

__all__ = ["baseline_config", "CONFIGS", "CONFIG_NAMES", "config_by_name"]


def baseline_config() -> MicroarchConfig:
    """Sniper's default Gainestown configuration (Table IV row 1)."""
    return MicroarchConfig(name="baseline")


def _fe_op() -> MicroarchConfig:
    return baseline_config().with_updates(
        name="fe_op",
        l1i=CacheParams(64 * 1024, 8, latency=4),
        itlb_entries=256,
    )


def _be_op1() -> MicroarchConfig:
    return baseline_config().with_updates(
        name="be_op1",
        l1d=CacheParams(64 * 1024, 8, latency=4),
        l2=CacheParams(512 * 1024, 8, latency=12),
        l3=CacheParams(4 * 1024 * 1024, 16, latency=35),
        l4=CacheParams(16 * 1024 * 1024, 16, latency=60),
    )


def _be_op2() -> MicroarchConfig:
    return baseline_config().with_updates(
        name="be_op2",
        rob_size=256,
        rs_size=72,
        issue_at_dispatch=True,
    )


def _bs_op() -> MicroarchConfig:
    return baseline_config().with_updates(
        name="bs_op",
        branch_predictor="tage",
    )


CONFIG_NAMES = ("baseline", "fe_op", "be_op1", "be_op2", "bs_op")

CONFIGS: dict[str, MicroarchConfig] = {
    "baseline": baseline_config(),
    "fe_op": _fe_op(),
    "be_op1": _be_op1(),
    "be_op2": _be_op2(),
    "bs_op": _bs_op(),
}


def config_by_name(name: str, *, data_capacity_scale: float = 1.0) -> MicroarchConfig:
    """Fetch a Table IV configuration, optionally capacity-scaled."""
    try:
        config = CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown config {name!r}; known: {CONFIG_NAMES}") from None
    if data_capacity_scale != 1.0:
        config = config.with_updates(data_capacity_scale=data_capacity_scale)
    return config
