"""Branch predictor models: static, Pentium-M-style two-level, and TAGE.

The trace records, per static branch site, the full sequence of outcomes
of its data-dependent branches (in program order, concatenated across
kernel invocations). Predictors are evaluated analytically on those
sequences: a two-level adaptive predictor with a k-bit local history
converges to predicting, for each observed history pattern, the majority
next-outcome — so its steady-state mispredictions are exactly the
minority counts per pattern, plus a training cost of one miss per
distinct pattern. TAGE is modeled as the best of several history lengths
per site (its tagged geometric-history tables effectively give every
branch the history length that predicts it best) with a small tag/alias
overhead. This analytic evaluation is orders of magnitude faster than a
stateful per-branch loop and is exact in the steady state.

Loop-control branches (the difference between the instruction mix's
branch count and the recorded data-dependent branches) are near-perfectly
predictable; they contribute a small base misprediction rate for loop
exits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro._util import check_choice

__all__ = ["BranchModel", "BranchStats", "two_level_mispredicts"]

#: Base misprediction rate of loop-control branches (loop exits).
_LOOP_MISPREDICT_RATE = {"static": 0.010, "pentium_m": 0.003, "tage": 0.0015}

#: History lengths TAGE effectively chooses among (geometric series).
_TAGE_HISTORIES = (2, 4, 8, 16, 32)

_PENTIUM_M_HISTORY = 6

#: Destructive-aliasing inflation of untagged two-level tables.
_PM_ALIASING = 1.2
#: TAGE's per-pattern history selection beats the per-site best-history
#: bound by roughly this factor on branchy integer code.
_TAGE_FACTOR = 0.55


@dataclass
class BranchStats:
    """Aggregate branch prediction outcome for one simulated run."""

    total_branches: float = 0.0
    mispredicts: float = 0.0

    @property
    def mispredict_rate(self) -> float:
        if self.total_branches <= 0:
            return 0.0
        return self.mispredicts / self.total_branches

    def mpki(self, instructions: float) -> float:
        if instructions <= 0:
            return 0.0
        return self.mispredicts * 1000.0 / instructions


def two_level_mispredicts(outcomes: np.ndarray, history_bits: int) -> float:
    """Steady-state + training mispredictions of a two-level predictor.

    For each ``history_bits``-length pattern, the predictor learns the
    majority next outcome; mispredictions are the minority occurrences.
    The first occurrence of each distinct pattern is charged as a
    training miss. The first ``history_bits`` branches (history warm-up)
    are charged at 50%.
    """
    n = outcomes.size
    if n == 0:
        return 0.0
    if history_bits <= 0:
        # Degenerate bimodal: majority vote over the whole stream.
        taken = float(np.count_nonzero(outcomes))
        return min(taken, n - taken) + 1.0
    if n <= history_bits:
        return n * 0.5
    out = outcomes.astype(np.int64)
    windows = sliding_window_view(out, history_bits)[:-1]  # history before each
    powers = (1 << np.arange(history_bits, dtype=np.int64))[::-1]
    patterns = windows @ powers
    nexts = out[history_bits:]
    keys = patterns * 2 + nexts
    # Sparse counting: long histories make the dense pattern space huge
    # (2^33 for 32-bit TAGE components) but only a few patterns occur.
    unique_keys, counts = np.unique(keys, return_counts=True)
    pats = unique_keys >> 1
    # unique_keys is sorted, so the two outcomes of one pattern (if both
    # occur) are adjacent; the minority count is the steady-state misses.
    same = pats[1:] == pats[:-1]
    steady = float(np.minimum(counts[1:][same], counts[:-1][same]).sum())
    training = float(pats.size - np.count_nonzero(same))
    warmup = history_bits * 0.5
    return steady + training + warmup


class BranchModel:
    """Evaluate one predictor over per-site outcome sequences."""

    def __init__(self, kind: str) -> None:
        check_choice("kind", kind, ("static", "pentium_m", "tage"))
        self.kind = kind
        self._site_outcomes: dict[str, list[tuple[np.ndarray, float]]] = {}

    def record(self, site: str, outcomes: np.ndarray, weight: float = 1.0) -> None:
        """Append a weighted outcome sequence for a static branch site."""
        self._site_outcomes.setdefault(site, []).append(
            (np.asarray(outcomes, dtype=bool), weight)
        )

    def _site_mispredicts(self, outcomes: np.ndarray, branch_hints: bool) -> float:
        if self.kind == "static":
            taken = float(np.count_nonzero(outcomes))
            not_taken = outcomes.size - taken
            if branch_hints:
                return min(taken, not_taken)
            # Without profile hints: static predicts not-taken.
            return taken
        # Both real predictors include a bimodal base table, so they are
        # never worse than simply predicting each site's majority outcome.
        taken = float(np.count_nonzero(outcomes))
        bimodal = min(taken, outcomes.size - taken) + 1.0
        if self.kind == "pentium_m":
            # Untagged two-level tables suffer destructive aliasing
            # between sites; a fixed inflation models that interference.
            m = min(
                two_level_mispredicts(outcomes, _PENTIUM_M_HISTORY) * _PM_ALIASING,
                bimodal,
            )
        else:  # tage
            best = min(
                two_level_mispredicts(outcomes, h) for h in _TAGE_HISTORIES
            )
            # Tagged geometric tables pick the best history length *per
            # pattern*, not per site, and avoid aliasing entirely — a
            # further constant-factor win over the per-site best-history
            # bound, at a small allocation overhead.
            m = min(best * _TAGE_FACTOR + 1.0, bimodal)
        if branch_hints:
            # Profile-informed layout seeds sensible static predictions,
            # cutting the predictor's training-time losses.
            m = max(m * 0.9, 0.0)
        return m

    def evaluate(
        self,
        *,
        total_branches: float,
        branch_hints: bool = False,
    ) -> BranchStats:
        """Total mispredictions given all recorded sites.

        ``total_branches`` is the exact dynamic branch count from the
        instruction mix; recorded data-dependent branches are evaluated
        through the predictor model, the remainder are loop-control
        branches at the predictor's base rate.
        """
        recorded = 0.0
        mispredicts = 0.0
        for sequences in self._site_outcomes.values():
            # All sequences of a site share one predictor entry: evaluate
            # the concatenation (weights are typically uniform; a weighted
            # mix uses the mean weight as the scale factor).
            arrays = [a for a, _w in sequences]
            weights = np.array([w for _a, w in sequences])
            outcomes = np.concatenate(arrays)
            scale = float(weights.mean())
            recorded += outcomes.size * scale
            mispredicts += self._site_mispredicts(outcomes, branch_hints) * scale
        loop_branches = max(total_branches - recorded, 0.0)
        mispredicts += loop_branches * _LOOP_MISPREDICT_RATE[self.kind]
        return BranchStats(total_branches=total_branches, mispredicts=mispredicts)
