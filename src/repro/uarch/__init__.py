"""Sniper-style mechanistic CPU microarchitecture simulator.

Consumes the instruction/memory/branch trace produced by
:mod:`repro.trace` and produces cycle counts, Top-down pipeline-slot
breakdowns (retiring / bad-speculation / front-end / back-end, per Yasin's
Top-down method the paper uses via VTune), cache/branch MPKI, and
resource-stall counters (ROB / RS / store buffer) — the full counter
surface the paper reports.

The five Table IV configurations (``baseline`` a.k.a. gainestown,
``fe_op``, ``be_op1``, ``be_op2``, ``bs_op``) ship in
:mod:`repro.uarch.configs`.
"""

from repro.uarch.config import MicroarchConfig
from repro.uarch.configs import CONFIGS, baseline_config, config_by_name
from repro.uarch.instances import (
    INSTANCE_NAMES,
    INSTANCE_TYPES,
    InstanceType,
    instance_by_name,
)
from repro.uarch.simulator import SimReport, Simulator, simulate

__all__ = [
    "MicroarchConfig",
    "CONFIGS",
    "baseline_config",
    "config_by_name",
    "InstanceType",
    "INSTANCE_TYPES",
    "INSTANCE_NAMES",
    "instance_by_name",
    "Simulator",
    "SimReport",
    "simulate",
]
