"""Top-down pipeline-slot accounting (Yasin's method, as used by VTune).

Every cycle offers ``dispatch_width`` pipeline slots. A slot either
retires a uop (Retiring), is wasted on a squashed path / recovery bubble
(Bad Speculation), is empty because the front end failed to supply a uop
(Front-End Bound), or is refused because the back end could not accept it
(Back-End Bound). We build the breakdown constructively from stall-cycle
components, so the four categories always sum to exactly 100% of slots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TopdownBreakdown"]


@dataclass(frozen=True)
class TopdownBreakdown:
    """Slot percentages plus the memory/core split of back-end bound."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float
    memory_bound: float  # component of backend_bound
    core_bound: float  # component of backend_bound

    def __post_init__(self) -> None:
        total = (
            self.retiring
            + self.bad_speculation
            + self.frontend_bound
            + self.backend_bound
        )
        if not abs(total - 100.0) < 1e-6:
            raise ValueError(f"top-down categories must sum to 100, got {total}")
        if not abs(self.memory_bound + self.core_bound - self.backend_bound) < 1e-6:
            raise ValueError("memory_bound + core_bound must equal backend_bound")

    @staticmethod
    def from_cycles(
        *,
        width: int,
        uops: float,
        base_cycles: float,
        fe_cycles: float,
        bs_cycles: float,
        mem_cycles: float,
        core_cycles: float,
    ) -> "TopdownBreakdown":
        """Build the breakdown from additive cycle components.

        ``base_cycles`` are the cycles needed to dispatch all uops at full
        width; the unused slots within them (width*base - uops) are
        charged to core bound (dispatch-bandwidth / dependency slack).
        """
        total_cycles = base_cycles + fe_cycles + bs_cycles + mem_cycles + core_cycles
        total_slots = max(total_cycles * width, 1e-9)
        retiring = uops
        fe = fe_cycles * width
        bs = bs_cycles * width
        mem = mem_cycles * width
        core = core_cycles * width + max(base_cycles * width - uops, 0.0)

        def pct(x: float) -> float:
            return 100.0 * x / total_slots

        be = pct(mem) + pct(core)
        # Normalize the residual rounding into retiring.
        retiring_pct = 100.0 - pct(fe) - pct(bs) - be
        return TopdownBreakdown(
            retiring=retiring_pct,
            bad_speculation=pct(bs),
            frontend_bound=pct(fe),
            backend_bound=be,
            memory_bound=pct(mem),
            core_bound=pct(core),
        )
