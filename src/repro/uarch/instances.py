"""Cloud instance-type profiles: µarch + clock + core count + $/hour.

The paper characterizes transcoding across same-ISA Table IV configs;
the serving layer additionally needs the *instance type* dimension that
"Where to Encode: x86 vs Arm EC2" and "Performance Analysis and Modeling
of Video Transcoding Using Heterogeneous Cloud Services" show dominates
cost-performance (up to ~4x throughput/$ spread between families).

Each :class:`InstanceType` bundles

- a Table IV base config (``config_name``) naming the µarch *family* the
  instance's cores resemble — this is the identity the affinity model
  scores against;
- ``uarch_overrides`` applied on top of that config (cache geometry,
  dispatch width, branch predictor — the IPC-affecting deltas between
  families);
- a nominal core ``clock_ghz`` (converted to simulated virtual Hz
  against :data:`REFERENCE_CLOCK_GHZ` so proxy-scale cycle counts keep
  landing in the service's virtual-seconds regime);
- ``cores``: schedulable cores per instance — **physical** cores, which
  is what makes the Arm profiles reproduce the cited papers' ordering:
  an x86 ``xlarge`` exposes 4 SMT vCPUs on 2 physical cores while a
  Graviton ``xlarge`` exposes 4 full cores, so the per-core dollar rate
  of the Arm parts is roughly half at a similar sticker price;
- an on-demand ``rate_per_hour`` in dollars.

The registry values are calibrated to the *qualitative* findings of the
cited papers (Arm families win throughput/$ by ~1.5-2x; the older A72
generation is cheapest per hour but slowest per core), not to cent-exact
EC2 list prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.uarch.config import CacheParams, MicroarchConfig
from repro.uarch.configs import CONFIG_NAMES, config_by_name

__all__ = [
    "REFERENCE_CLOCK_GHZ",
    "InstanceType",
    "INSTANCE_TYPES",
    "INSTANCE_NAMES",
    "instance_by_name",
]

#: Simulated clocks are expressed relative to this nominal frequency:
#: a worker's virtual clock is ``service_clock_hz * clock_ghz / 3.0``,
#: so a 3.0 GHz instance matches the legacy single-clock behaviour.
REFERENCE_CLOCK_GHZ = 3.0


@dataclass(frozen=True)
class InstanceType:
    """One rentable machine shape: µarch family, clock, cores, price."""

    name: str
    isa: str                       # "x86" | "arm"
    config_name: str               # Table IV family the cores resemble
    clock_ghz: float
    cores: int                     # physical (schedulable) cores
    rate_per_hour: float           # on-demand $/hour for the instance
    #: Catalogue-calibrated mean cycles relative to the baseline config
    #: on the Table III mix (measured once on the proxy workload; < 1
    #: means fewer cycles per job). This is the published per-family
    #: performance number cost-aware placement predicts with — actual
    #: per-clip cycles still come from the simulator, so predictions
    #: carry realistic model error instead of being an oracle.
    cycle_scale: float = 1.0
    description: str = ""
    uarch_overrides: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.isa not in ("x86", "arm"):
            raise ValueError(f"isa must be x86 or arm, got {self.isa!r}")
        if self.config_name not in CONFIG_NAMES:
            raise ValueError(
                f"unknown base config {self.config_name!r}; "
                f"choose from {', '.join(CONFIG_NAMES)}"
            )
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be > 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be > 0")
        if self.cycle_scale <= 0:
            raise ValueError("cycle_scale must be > 0")

    @property
    def rate_per_core_hour(self) -> float:
        """$/hour for one schedulable core (one service worker)."""
        return self.rate_per_hour / self.cores

    def clock_scale(self) -> float:
        """This instance's clock relative to the reference frequency."""
        return self.clock_ghz / REFERENCE_CLOCK_GHZ

    def build_config(
        self, *, data_capacity_scale: float = 1.0
    ) -> MicroarchConfig:
        """Materialize the per-core µarch config: the Table IV base with
        this instance family's overrides applied."""
        config = config_by_name(
            self.config_name, data_capacity_scale=data_capacity_scale
        )
        if self.uarch_overrides:
            config = config.with_updates(**self.uarch_overrides)
        return config

    def describe(self) -> dict[str, Any]:
        """One row of the instance catalogue (for tables and run.json)."""
        return {
            "instance": self.name,
            "isa": self.isa,
            "config": self.config_name,
            "clock_ghz": self.clock_ghz,
            "cores": self.cores,
            "cycle_scale": self.cycle_scale,
            "rate_per_hour": self.rate_per_hour,
            "rate_per_core_hour": round(self.rate_per_core_hour, 5),
            "description": self.description,
        }


def _build_registry() -> dict[str, InstanceType]:
    k = 1024
    return {
        t.name: t
        for t in (
            # -- x86: 2 physical cores per xlarge (4 SMT vCPUs) --------
            InstanceType(
                name="c5.xlarge", isa="x86", config_name="bs_op",
                clock_ghz=3.4, cores=2, rate_per_hour=0.170, cycle_scale=0.93,
                description="compute-optimized x86 (Skylake-class)",
                uarch_overrides={
                    "l2": CacheParams(1024 * k, 16, latency=14),
                },
            ),
            InstanceType(
                name="m5.xlarge", isa="x86", config_name="be_op1",
                clock_ghz=3.1, cores=2, rate_per_hour=0.192, cycle_scale=0.81,
                description="general-purpose x86 (large data caches)",
            ),
            # -- arm: 4 physical cores per xlarge -----------------------
            InstanceType(
                name="c6g.xlarge", isa="arm", config_name="fe_op",
                clock_ghz=2.5, cores=4, rate_per_hour=0.136, cycle_scale=0.85,
                description="Graviton2-class Arm (Neoverse N1)",
                uarch_overrides={
                    "l1d": CacheParams(64 * k, 8, latency=4),
                    "l2": CacheParams(1024 * k, 8, latency=11),
                    "branch_predictor": "tage",
                },
            ),
            InstanceType(
                name="m6g.xlarge", isa="arm", config_name="be_op1",
                clock_ghz=2.5, cores=4, rate_per_hour=0.154, cycle_scale=0.72,
                description="general-purpose Graviton2-class Arm",
                uarch_overrides={
                    "l1i": CacheParams(64 * k, 8, latency=4),
                    "branch_predictor": "tage",
                },
            ),
            InstanceType(
                name="a1.xlarge", isa="arm", config_name="baseline",
                clock_ghz=2.3, cores=4, rate_per_hour=0.102, cycle_scale=1.18,
                description="first-gen Arm (Cortex-A72 class)",
                uarch_overrides={
                    "dispatch_width": 3,
                    "rob_size": 96,
                    "rs_size": 28,
                },
            ),
        )
    }


#: Name -> :class:`InstanceType` catalogue (the shipped profiles).
INSTANCE_TYPES: dict[str, InstanceType] = _build_registry()

#: Catalogue names, in declaration order.
INSTANCE_NAMES: tuple[str, ...] = tuple(INSTANCE_TYPES)


def instance_by_name(name: str) -> InstanceType:
    """Fetch an instance profile by catalogue name (ValueError if unknown)."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance type {name!r}; "
            f"choose from {', '.join(INSTANCE_NAMES)}"
        ) from None
