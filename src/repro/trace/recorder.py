"""Trace recorders: the interface the codec reports its execution through.

:class:`NullTracer` is a zero-cost sink for plain transcoding.
:class:`RecordingTracer` builds a :class:`~repro.trace.events.TraceStream`
for the µarch simulator: exact instruction accounting plus (optionally
sampled) memory and branch event streams.

:class:`AddressMap` gives the encoder a consistent virtual address space
for its planes and buffers, so data addresses behave like a real heap
(distinct pages per buffer, realistic strides) and ``refs`` growth
enlarges the live working set exactly as it does in FFmpeg.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import BranchEvent, KernelEvent, MemoryEvent, TraceStream
from repro.trace.program import Program

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "AddressMap"]

_PAGE = 4096


class AddressMap:
    """Bump allocator for the encoder's simulated heap."""

    HEAP_BASE = 0x1000_0000

    def __init__(self) -> None:
        self._cursor = self.HEAP_BASE
        self._regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, n_bytes: int) -> int:
        """Allocate (or return the existing) page-aligned region."""
        if name in self._regions:
            base, size = self._regions[name]
            if size < n_bytes:
                raise ValueError(
                    f"region {name!r} reallocated larger ({size} -> {n_bytes})"
                )
            return base
        size = max(int(n_bytes), 1)
        size = (size + _PAGE - 1) // _PAGE * _PAGE
        base = self._cursor
        self._cursor += size + _PAGE  # guard page between regions
        self._regions[name] = (base, size)
        return base

    def region(self, name: str) -> tuple[int, int]:
        return self._regions[name]

    @property
    def bytes_allocated(self) -> int:
        return self._cursor - self.HEAP_BASE


class Tracer:
    """No-op base tracer; also documents the recording interface.

    ``kernel`` is the single entry point the codec calls: one invocation
    of ``name`` executing ``iters`` innermost iterations, touching the
    given byte addresses and resolving the given data-dependent branch
    outcome arrays (keyed by site tag). Loop-control branches are derived
    from the kernel's instruction mix and need not be passed.
    """

    enabled = False

    def begin_frame(self, frame_type: str, index: int) -> None:
        pass

    def kernel(
        self,
        name: str,
        iters: float = 1.0,
        *,
        reads: np.ndarray | None = None,
        writes: np.ndarray | None = None,
        branches: dict[str, np.ndarray] | None = None,
    ) -> None:
        pass


class NullTracer(Tracer):
    """Discards everything (used for plain, untraced transcodes)."""


def _as_addrs(addrs: np.ndarray) -> np.ndarray:
    arr = np.asarray(addrs).ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("negative address in trace")
    return arr.astype(np.uint64, copy=False)


class RecordingTracer(Tracer):
    """Builds a :class:`TraceStream` from codec callbacks.

    Parameters
    ----------
    program:
        The static program model (kernels + code layout).
    sample:
        Invocation-level sampling rate for memory/branch/i-fetch events:
        1 records everything; N records every Nth invocation per kernel
        with weight N. Instruction counts are always exact.
    """

    enabled = True

    def __init__(self, program: Program, *, sample: int = 1) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.program = program
        self.sample = int(sample)
        self.stream = TraceStream()
        self._invocation_count: dict[str, int] = {}

    def begin_frame(self, frame_type: str, index: int) -> None:
        self.stream.n_frames += 1

    def kernel(
        self,
        name: str,
        iters: float = 1.0,
        *,
        reads: np.ndarray | None = None,
        writes: np.ndarray | None = None,
        branches: dict[str, np.ndarray] | None = None,
    ) -> None:
        spec = self.program.kernel(name)
        if iters < 0:
            raise ValueError(f"iters must be >= 0, got {iters}")
        mix = spec.instr_mix.scaled(iters) + spec.call_overhead
        self.stream.add_instr(name, mix)
        self.stream.kernel_calls[name] = self.stream.kernel_calls.get(name, 0) + 1
        self.stream.data_reads += mix.load
        self.stream.data_writes += mix.store

        count = self._invocation_count.get(name, 0)
        self._invocation_count[name] = count + 1
        if count % self.sample != 0:
            return
        weight = float(self.sample)
        events = self.stream.events
        # Instruction-side behaviour is derived from KernelEvents at
        # simulation time (analytic i-cache model over the layout's fetch
        # footprints), so no explicit i-fetch address events are stored.
        events.append(KernelEvent(name, float(iters), weight))
        if reads is not None:
            arr = _as_addrs(reads)
            if arr.size:
                events.append(MemoryEvent(name, arr, "r", weight))
        if writes is not None:
            arr = _as_addrs(writes)
            if arr.size:
                events.append(MemoryEvent(name, arr, "w", weight))
        if branches:
            for tag, outcomes in branches.items():
                out = np.asarray(outcomes, dtype=bool).ravel()
                if out.size:
                    events.append(BranchEvent(f"{name}:{tag}", out, weight))
