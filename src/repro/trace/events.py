"""Trace event containers.

A :class:`TraceStream` is the ordered record of one encoding run:
kernel invocations (instruction execution), memory accesses (data reads
and writes plus instruction fetches), and conditional-branch outcome
sequences per static branch site. Events may carry a ``weight`` > 1 when
the recorder sampled (recorded every Nth invocation): counters derived
from the event are scaled by the weight, while exact totals (instruction
counts) are kept separately and are never sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.program import InstrMix

__all__ = ["KernelEvent", "MemoryEvent", "BranchEvent", "TraceStream"]


@dataclass(frozen=True)
class KernelEvent:
    """One (possibly weighted) kernel invocation."""

    kernel: str
    iters: float
    weight: float = 1.0


@dataclass(frozen=True)
class MemoryEvent:
    """A batch of memory accesses from one kernel invocation.

    ``kind`` is ``"r"`` (data read), ``"w"`` (data write) or ``"i"``
    (instruction fetch). Addresses are byte addresses; the cache model
    reduces them to line granularity.
    """

    kernel: str
    addrs: np.ndarray  # uint64 byte addresses
    kind: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w", "i"):
            raise ValueError(f"kind must be 'r', 'w' or 'i', got {self.kind!r}")


@dataclass(frozen=True)
class BranchEvent:
    """Outcome sequence of one static branch site in one invocation."""

    site: str  # "kernel:tag"
    outcomes: np.ndarray  # bool
    weight: float = 1.0


@dataclass
class TraceStream:
    """The full trace of one encoding run."""

    events: list[object] = field(default_factory=list)
    # Exact (unsampled) aggregate counters.
    instr: InstrMix = field(default_factory=InstrMix)
    instr_by_kernel: dict[str, InstrMix] = field(default_factory=dict)
    kernel_calls: dict[str, int] = field(default_factory=dict)
    n_frames: int = 0
    # Exact totals of *data* traffic, for roofline operational intensity.
    data_reads: float = 0.0
    data_writes: float = 0.0

    @property
    def total_instructions(self) -> float:
        return self.instr.total

    @property
    def total_branches(self) -> float:
        return self.instr.branch

    def add_instr(self, kernel: str, mix: InstrMix) -> None:
        self.instr = self.instr + mix
        if kernel in self.instr_by_kernel:
            self.instr_by_kernel[kernel] = self.instr_by_kernel[kernel] + mix
        else:
            self.instr_by_kernel[kernel] = mix

    def iter_events(self):
        return iter(self.events)

    def summary(self) -> dict[str, float]:
        """Headline totals, mostly for logging and tests."""
        return {
            "instructions": self.total_instructions,
            "branches": self.total_branches,
            "loads": self.instr.load,
            "stores": self.instr.store,
            "events": float(len(self.events)),
            "frames": float(self.n_frames),
        }
