"""The kernel catalog: static models of the encoder's hot functions.

Each entry stands for a *family* of specialized routines in a real
encoder binary (x264 ships dozens of block-size and CPU-feature variants
of every primitive), which is why the code footprints are substantially
larger than a single textbook loop. Sizes are chosen so the per-frame
instruction working set is on the order of a hundred kilobytes — the
regime where the paper observes front-end (MITE/DSB, i-cache) issues —
while any single kernel still fits the L1i.

Instruction mixes are per innermost-loop iteration; what an "iteration"
means for each kernel is documented inline and must match what the
encoder passes to :meth:`Tracer.kernel`.
"""

from __future__ import annotations

from repro.trace.program import InstrMix, Kernel, LoopNest, Program

__all__ = ["KERNELS", "kernel_spec", "build_program"]


def _k(
    name: str,
    *,
    per_iter: InstrMix,
    per_call: InstrMix,
    hot: int,
    cold: int,
    nest: LoopNest | None = None,
) -> Kernel:
    return Kernel(
        name=name,
        instr_mix=per_iter,
        call_overhead=per_call,
        hot_lines=hot,
        cold_lines=cold,
        loop_nest=nest if nest is not None else LoopNest(),
    )


KERNELS: dict[str, Kernel] = {
    k.name: k
    for k in [
        # Motion estimation SAD: iteration = one 16-pixel row of one
        # candidate position (SIMD abs-diff + accumulate).
        _k(
            "me_sad",
            per_iter=InstrMix(alu=6, load=4, branch=1),
            per_call=InstrMix(alu=12, load=2, branch=3),
            hot=42,
            cold=30,
            nest=LoopNest(depth=3, tileable=False, stride_bytes=1),
        ),
        # Half/quarter-pel interpolation: iteration = one output row
        # (6-tap-ish filter, multiply heavy).
        _k(
            "me_interp",
            per_iter=InstrMix(alu=10, mul=6, load=6, store=2, branch=1),
            per_call=InstrMix(alu=16, branch=4),
            hot=64,
            cold=36,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=1),
        ),
        # Hadamard SATD: iteration = one 4x4 block.
        _k(
            "satd",
            per_iter=InstrMix(alu=36, load=8, branch=1),
            per_call=InstrMix(alu=10, branch=2),
            hot=36,
            cold=14,
        ),
        # Intra 16x16 prediction: iteration = one mode evaluated.
        _k(
            "intra_pred16",
            per_iter=InstrMix(alu=70, load=24, store=16, branch=6),
            per_call=InstrMix(alu=24, load=8, branch=6),
            hot=52,
            cold=40,
        ),
        # Intra 4x4 prediction: iteration = one mode of one 4x4 block
        # (sequential dependency chain, very branchy).
        _k(
            "intra_pred4",
            per_iter=InstrMix(alu=22, load=8, store=4, branch=5),
            per_call=InstrMix(alu=18, branch=6),
            hot=58,
            cold=44,
        ),
        # Forward transform: iteration = one 4x4 block.
        _k(
            "dct4",
            per_iter=InstrMix(alu=34, mul=8, load=6, store=5, branch=1),
            per_call=InstrMix(alu=8, branch=2),
            hot=22,
            cold=6,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=4),
        ),
        # Inverse transform + reconstruction add: iteration = one 4x4 block.
        _k(
            "idct4",
            per_iter=InstrMix(alu=36, mul=8, load=7, store=6, branch=1),
            per_call=InstrMix(alu=8, branch=2),
            hot=22,
            cold=6,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=4),
        ),
        # Quantization: iteration = one 4x4 coefficient block.
        _k(
            "quant",
            per_iter=InstrMix(alu=22, mul=16, load=5, store=4, branch=2),
            per_call=InstrMix(alu=6, branch=2),
            hot=18,
            cold=6,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=4),
        ),
        # Trellis RD quantization: iteration = one *coefficient* visited
        # (data-dependent, branch heavy).
        _k(
            "trellis",
            per_iter=InstrMix(alu=12, mul=3, load=3, store=1, branch=3),
            per_call=InstrMix(alu=14, branch=4),
            hot=66,
            cold=48,
        ),
        # Coefficient entropy coding: iteration = one nonzero token.
        _k(
            "entropy_coeff",
            per_iter=InstrMix(alu=10, load=2, store=1, branch=3),
            per_call=InstrMix(alu=8, load=2, branch=3),
            hot=54,
            cold=42,
        ),
        # Macroblock header coding: iteration = one macroblock.
        _k(
            "entropy_header",
            per_iter=InstrMix(alu=34, load=6, store=5, branch=8),
            per_call=InstrMix(),
            hot=28,
            cold=22,
        ),
        # Motion compensation / prediction copy: iteration = one row.
        _k(
            "mc_copy",
            per_iter=InstrMix(alu=4, load=4, store=3, branch=1),
            per_call=InstrMix(alu=6, branch=2),
            hot=14,
            cold=6,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=1),
        ),
        # Deblocking: iteration = one 4-pixel edge segment (branchy masks).
        _k(
            "deblock",
            per_iter=InstrMix(alu=16, load=6, store=3, branch=4),
            per_call=InstrMix(alu=12, branch=4),
            hot=46,
            cold=34,
            nest=LoopNest(depth=2, tileable=True, stride_bytes=1),
        ),
        # MV prediction + mode decision bookkeeping: iteration = one
        # candidate mode compared.
        _k(
            "mode_decide",
            per_iter=InstrMix(alu=26, mul=2, load=8, store=2, branch=7),
            per_call=InstrMix(alu=20, load=6, branch=6),
            hot=62,
            cold=52,
        ),
        # Rate control: iteration = one frame-level update.
        _k(
            "rc_update",
            per_iter=InstrMix(alu=90, mul=14, load=22, store=12, branch=12),
            per_call=InstrMix(),
            hot=24,
            cold=20,
        ),
        # Lookahead / GOP probes: iteration = one probe row.
        _k(
            "lookahead",
            per_iter=InstrMix(alu=6, load=4, branch=1),
            per_call=InstrMix(alu=10, branch=3),
            hot=30,
            cold=24,
        ),
        # Frame setup (copies, padding): iteration = one row.
        _k(
            "frame_setup",
            per_iter=InstrMix(alu=2, load=8, store=8, branch=1),
            per_call=InstrMix(alu=10, branch=2),
            hot=10,
            cold=4,
            nest=LoopNest(depth=2, tileable=False, stride_bytes=1),
        ),
    ]
}


def kernel_spec(name: str) -> Kernel:
    """Look up one kernel's static model."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}") from None


def build_program() -> Program:
    """A fresh :class:`Program` over the full catalog with default layout."""
    return Program(KERNELS)
