"""Static program model: kernels, instruction mixes, and code layout.

A :class:`Kernel` stands for one hot function of the encoder binary. Its
``instr_mix`` gives the dynamic instruction breakdown *per iteration* of
its innermost loop; ``call_overhead`` adds the per-invocation prologue /
setup instructions. ``hot_lines``/``cold_lines`` give the static code
footprint in 64-byte i-cache lines — the cold part models error handling
and rarely-taken paths that a naive compiler interleaves with the hot
path (exactly the layout problem AutoFDO exists to fix).

A :class:`CodeLayout` assigns every line a virtual address. The default
layout places each kernel's hot and cold lines contiguously in source
order, i.e. the hot working set is diluted by cold code. AutoFDO
(:mod:`repro.optim.autofdo`) produces an alternative layout that packs
hot lines together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InstrMix", "LoopNest", "Kernel", "CodeLayout", "Program", "CACHE_LINE"]

CACHE_LINE = 64
CODE_BASE = 0x0040_0000  # typical text-segment base


@dataclass(frozen=True)
class InstrMix:
    """Instruction counts by class (per loop iteration or per call)."""

    alu: float = 0.0  # integer/SIMD arithmetic
    mul: float = 0.0  # multiplies / long-latency ALU
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0

    @property
    def total(self) -> float:
        return self.alu + self.mul + self.load + self.store + self.branch

    def scaled(self, factor: float) -> "InstrMix":
        return InstrMix(
            self.alu * factor,
            self.mul * factor,
            self.load * factor,
            self.store * factor,
            self.branch * factor,
        )

    def __add__(self, other: "InstrMix") -> "InstrMix":
        return InstrMix(
            self.alu + other.alu,
            self.mul + other.mul,
            self.load + other.load,
            self.store + other.store,
            self.branch + other.branch,
        )


@dataclass(frozen=True)
class LoopNest:
    """Loop-nest metadata consumed by the Graphite model.

    ``depth`` is the nest depth; ``tileable`` marks nests whose iteration
    order can legally be tiled/interchanged (no loop-carried dependence on
    the traversal order); ``stride_bytes`` is the innermost access stride.
    """

    depth: int = 1
    tileable: bool = False
    stride_bytes: int = 1


@dataclass(frozen=True)
class Kernel:
    """One hot function of the modeled encoder binary."""

    name: str
    instr_mix: InstrMix  # per innermost-loop iteration
    call_overhead: InstrMix  # per invocation
    hot_lines: int  # i-cache lines of hot code
    cold_lines: int  # i-cache lines of cold code interleaved by default
    loop_nest: LoopNest = field(default_factory=LoopNest)

    @property
    def total_lines(self) -> int:
        return self.hot_lines + self.cold_lines


@dataclass
class CodeLayout:
    """Assignment of every kernel's code lines to virtual addresses.

    ``fetch_line_addrs[kernel]`` are the i-cache line addresses touched by
    one invocation of the kernel's hot path. In the default (source-order,
    interleaved) layout the hot instructions are spread across the whole
    hot+cold extent, so every line of the extent is partially hot and the
    per-invocation fetch footprint equals the full extent. A
    profile-guided layout packs hot instructions contiguously, shrinking
    the fetch footprint to exactly the hot lines — this is the i-cache
    mechanism behind AutoFDO's win.
    """

    hot_line_addrs: dict[str, np.ndarray]
    cold_line_addrs: dict[str, np.ndarray]
    fetch_line_addrs: dict[str, np.ndarray]
    total_lines: int
    description: str = "default"
    branch_hints: bool = False  # profile-informed static prediction

    def footprint_bytes(self) -> int:
        return self.total_lines * CACHE_LINE

    def fetch_footprint_lines(self) -> int:
        return int(sum(len(a) for a in self.fetch_line_addrs.values()))


class Program:
    """A set of kernels plus the active code layout."""

    def __init__(self, kernels: dict[str, Kernel], layout: CodeLayout | None = None):
        if not kernels:
            raise ValueError("Program requires at least one kernel")
        self.kernels = dict(kernels)
        self.layout = layout if layout is not None else default_layout(self.kernels)

    def kernel(self, name: str) -> Kernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise KeyError(
                f"unknown kernel {name!r}; known: {sorted(self.kernels)}"
            ) from None

    def with_layout(self, layout: CodeLayout) -> "Program":
        return Program(self.kernels, layout)


def default_layout(kernels: dict[str, Kernel]) -> CodeLayout:
    """Source-order layout with cold code interleaved into hot regions.

    Mirrors what a compiler emits without profile feedback: each
    function's hot basic blocks sit next to its own cold blocks, so
    fetching the hot path drags cold lines' worth of address space into
    the i-cache working set.
    """
    hot: dict[str, np.ndarray] = {}
    cold: dict[str, np.ndarray] = {}
    fetch: dict[str, np.ndarray] = {}
    cursor = 0
    for name in sorted(kernels):  # deterministic source order
        k = kernels[name]
        # Interleave: hot lines are spread across the hot+cold extent, so
        # the hot path's fetch footprint is the entire extent.
        extent = k.total_lines
        all_lines = np.arange(cursor, cursor + extent, dtype=np.int64)
        addrs = CODE_BASE + all_lines * CACHE_LINE
        if k.cold_lines > 0 and k.hot_lines > 0:
            hot_idx = np.linspace(0, extent - 1, k.hot_lines).astype(np.int64)
            mask = np.zeros(extent, dtype=bool)
            mask[hot_idx] = True
            hot[name] = addrs[mask]
            cold[name] = addrs[~mask]
        else:
            hot[name] = addrs[: k.hot_lines]
            cold[name] = addrs[k.hot_lines :]
        fetch[name] = addrs
        cursor += extent
    return CodeLayout(
        hot, cold, fetch, cursor, description="default(source-order)"
    )
