"""Execution tracing: the bridge between the codec and the µarch simulator.

The codec is a Python program, so we cannot profile its *own* machine code
and learn anything about x264. Instead, every codec kernel (SAD, DCT,
quantization, entropy coding, ...) is described once in
:mod:`repro.trace.kernels` — its per-iteration instruction mix, loop nest,
and static code footprint — and the encoder reports each kernel invocation
to a :class:`repro.trace.recorder.Tracer` together with the *actual* data
addresses it touched and the *actual* outcomes of its data-dependent
branches. The result is an instruction/memory/branch trace equivalent to
what a binary-instrumentation tool would capture from a native encoder,
driven by the real per-parameter behaviour of this one.
"""

from repro.trace.events import BranchEvent, KernelEvent, MemoryEvent, TraceStream
from repro.trace.kernels import KERNELS, kernel_spec
from repro.trace.program import CodeLayout, Kernel, Program
from repro.trace.recorder import NullTracer, RecordingTracer, Tracer

__all__ = [
    "Kernel",
    "Program",
    "CodeLayout",
    "KERNELS",
    "kernel_spec",
    "TraceStream",
    "KernelEvent",
    "MemoryEvent",
    "BranchEvent",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
]
