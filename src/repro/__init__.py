"""repro: a reproduction of "CPU Microarchitectural Performance
Characterization of Cloud Video Transcoding" (IISWC 2020).

Public API surface
------------------
- :mod:`repro.api` — **the blessed facade**: typed requests/results, the
  consolidated :class:`~repro.api.Settings`, and one entry point per
  workflow (encode, profile, sweep, schedule, serve);
- :mod:`repro.service` — the long-lived transcoding job service;
- :mod:`repro.video` — frames, synthetic vbench stand-ins, quality metrics;
- :mod:`repro.codec` — the x264-style encoder/decoder and the ten presets;
- :mod:`repro.ffmpeg` — the transcode pipeline and CLI facade;
- :mod:`repro.trace` — execution tracing (the codec -> simulator bridge);
- :mod:`repro.uarch` — the Sniper-style µarch simulator and Table IV configs;
- :mod:`repro.profiling` — VTune/perf-style profiling over the simulator;
- :mod:`repro.optim` — AutoFDO and Graphite compiler-optimization models;
- :mod:`repro.scheduling` — the smart-scheduler case study;
- :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import api

    result = api.encode("cricket", preset="medium", crf=23)
    profiled = api.profile("cricket")
    print(profiled.counters.backend_bound)

The historical top-level aliases ``repro.transcode`` and
``repro.profile_transcode`` still resolve, but emit a
``DeprecationWarning`` (once per symbol) pointing at their
:mod:`repro.api` replacements.
"""

import warnings

from repro.codec import EncoderOptions, decode, encode, preset_options
from repro.video import load_video

__version__ = "1.1.0"

__all__ = [
    "transcode",
    "encode",
    "decode",
    "EncoderOptions",
    "preset_options",
    "load_video",
    "profile_transcode",
    "__version__",
]

#: Deprecated top-level aliases: name -> (replacement hint, loader).
_DEPRECATED_ALIASES = {
    "transcode": "repro.api.encode",
    "profile_transcode": "repro.api.profile",
}

#: Symbols whose deprecation warning already fired (once per process).
_warned_deprecations: set[str] = set()


def _load_deprecated(name: str):
    if name == "transcode":
        from repro.ffmpeg import transcode as symbol
    else:
        from repro.profiling import profile_transcode as symbol
    return symbol


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        if name not in _warned_deprecations:
            _warned_deprecations.add(name)
            warnings.warn(
                f"repro.{name} is deprecated; use "
                f"{_DEPRECATED_ALIASES[name]} instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return _load_deprecated(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
