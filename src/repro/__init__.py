"""repro: a reproduction of "CPU Microarchitectural Performance
Characterization of Cloud Video Transcoding" (IISWC 2020).

Public API surface
------------------
- :mod:`repro.video` — frames, synthetic vbench stand-ins, quality metrics;
- :mod:`repro.codec` — the x264-style encoder/decoder and the ten presets;
- :mod:`repro.ffmpeg` — the transcode pipeline and CLI facade;
- :mod:`repro.trace` — execution tracing (the codec -> simulator bridge);
- :mod:`repro.uarch` — the Sniper-style µarch simulator and Table IV configs;
- :mod:`repro.profiling` — VTune/perf-style profiling over the simulator;
- :mod:`repro.optim` — AutoFDO and Graphite compiler-optimization models;
- :mod:`repro.scheduling` — the smart-scheduler case study;
- :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import transcode, load_video, profile_transcode

    clip = load_video("cricket")
    result = transcode(clip, preset="medium", crf=23)
    profiled = profile_transcode(clip)
    print(profiled.counters.backend_bound)
"""

from repro.codec import EncoderOptions, decode, encode, preset_options
from repro.ffmpeg import transcode
from repro.profiling import profile_transcode
from repro.video import load_video

__version__ = "1.0.0"

__all__ = [
    "transcode",
    "encode",
    "decode",
    "EncoderOptions",
    "preset_options",
    "load_video",
    "profile_transcode",
    "__version__",
]
