"""Profiling tools: the paper's VTune / Linux-perf equivalents.

- :mod:`repro.profiling.perf` — one-call "perf stat"-style profiling of a
  transcode (encode under a recording tracer, then simulate);
- :mod:`repro.profiling.counters` — the counter set the paper reports
  (MPKI, resource stalls, top-down percentages) as a flat record;
- :mod:`repro.profiling.vtune` — top-down report formatting;
- :mod:`repro.profiling.roofline` — the roofline model the paper uses to
  explain its trends (§IV-A).
"""

from repro.profiling.counters import CounterSet
from repro.profiling.perf import ProfileResult, profile_transcode
from repro.profiling.roofline import RooflineModel, RooflinePoint
from repro.profiling.vtune import topdown_report

__all__ = [
    "CounterSet",
    "ProfileResult",
    "profile_transcode",
    "RooflineModel",
    "RooflinePoint",
    "topdown_report",
]
