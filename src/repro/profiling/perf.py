"""One-call profiling of a transcode, perf-stat style.

``profile_transcode`` is the workhorse behind every experiment: it
encodes a clip under a recording tracer, simulates the resulting trace on
a microarchitecture configuration, and returns both the transcoding
metrics and the full counter set. The program (kernel catalog + code
layout) is injectable so the compiler-optimization experiments can swap
in AutoFDO layouts and Graphite loop transforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.encoder import EncodeResult, Encoder, LoopOptimizations
from repro.codec.options import EncoderOptions
from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.resilience.faults import fault_point
from repro.trace.kernels import build_program
from repro.trace.program import Program
from repro.trace.recorder import RecordingTracer
from repro.uarch.config import MicroarchConfig
from repro.uarch.configs import baseline_config
from repro.uarch.simulator import SimReport, simulate
from repro.video.frame import FrameSequence

__all__ = ["ProfileResult", "profile_transcode"]

#: Data-capacity scale used when callers do not pick one. Chosen so the
#: proxy clips' footprints relate to the (scaled) cache capacities the way
#: the paper's full-size clips relate to the real Xeon's (see DESIGN.md).
DEFAULT_DATA_SCALE = 48.0


@dataclass
class ProfileResult:
    """Everything one profiled transcode produced."""

    encode: EncodeResult
    report: SimReport
    counters: CounterSet
    program: Program

    @property
    def speedup_reference_cycles(self) -> float:
        return self.report.cycles


def profile_transcode(
    video: FrameSequence,
    options: EncoderOptions | None = None,
    *,
    config: MicroarchConfig | None = None,
    program: Program | None = None,
    loop_opts: LoopOptimizations | None = None,
    sample: int = 1,
    data_capacity_scale: float | None = None,
) -> ProfileResult:
    """Encode ``video`` under a tracer and simulate the trace.

    Parameters
    ----------
    config:
        Microarchitecture to simulate; defaults to the Table IV baseline.
    program:
        Kernel catalog + code layout; defaults to the stock (un-optimized)
        layout. Pass an AutoFDO-optimized program to measure FDO effects.
    loop_opts:
        Graphite loop transformations to apply to the encoder's access
        streams.
    sample:
        Trace sampling rate (1 = exact; N records every Nth invocation).
    data_capacity_scale:
        Overrides the config's data-side capacity scaling; defaults to
        :data:`DEFAULT_DATA_SCALE` when the config does not set one.
    """
    fault_point("encoder.profile", detail=video.name)
    opts = options if options is not None else EncoderOptions()
    prog = program if program is not None else build_program()
    cfg = config if config is not None else baseline_config()
    if data_capacity_scale is not None:
        cfg = cfg.with_updates(data_capacity_scale=data_capacity_scale)
    elif cfg.data_capacity_scale == 1.0:
        cfg = cfg.with_updates(data_capacity_scale=DEFAULT_DATA_SCALE)

    with obs.span(
        "profile_transcode",
        video=video.name,
        preset=opts.preset_name,
        crf=opts.crf,
        refs=opts.refs,
        config=cfg.name,
    ):
        tracer = RecordingTracer(prog, sample=sample)
        encoder = Encoder(opts, tracer=tracer, loop_opts=loop_opts)
        encode_result = encoder.encode(video)
        report = simulate(tracer.stream, prog, cfg)
    counters = CounterSet.from_report(
        report,
        psnr_db=encode_result.psnr_db,
        bitrate_kbps=encode_result.bitrate_kbps,
    )
    _absorb_profile(tracer, counters)
    return ProfileResult(
        encode=encode_result, report=report, counters=counters, program=prog
    )


def _absorb_profile(tracer: RecordingTracer, counters: CounterSet) -> None:
    """Fold one profiled transcode into the active metrics registry."""
    tel = obs.current()
    if tel is None:
        return
    m = tel.metrics
    m.counter("profile.transcodes").inc()
    for kernel, calls in tracer.stream.kernel_calls.items():
        m.counter(f"encoder.kernel_calls.{kernel}").inc(calls)
    # Top-down slot shares and the Fig. 2 triangle, as distributions over
    # the run's profiled points — run.json summarizes their means.
    for name in ("retiring", "bad_speculation", "frontend_bound",
                 "backend_bound", "memory_bound", "core_bound"):
        m.histogram(f"topdown.{name}").observe(getattr(counters, name))
    m.histogram("profile.time_seconds").observe(counters.time_seconds)
    m.histogram("profile.psnr_db").observe(counters.psnr_db)
    m.histogram("profile.bitrate_kbps").observe(counters.bitrate_kbps)
    m.histogram("profile.ipc").observe(counters.ipc)
