"""The roofline model [Williams et al., CACM'09].

The paper leans on the roofline model to explain every trend it observes
(§IV-A): raising crf or refs lowers *operational intensity* (computation
per byte of DRAM traffic), pushing the workload from the compute roof
onto the memory-bandwidth slope, which manifests as back-end/memory-bound
pipeline slots. This module computes operational intensity from a
simulated run and classifies it against a machine roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.uarch.simulator import SimReport

__all__ = ["RooflineModel", "RooflinePoint"]

_LINE_BYTES = 64


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    operational_intensity: float  # ops per DRAM byte
    performance: float  # ops per cycle achieved
    bound: str  # "memory" or "compute"

    @property
    def is_memory_bound(self) -> bool:
        return self.bound == "memory"


@dataclass(frozen=True)
class RooflineModel:
    """A machine roof: peak ops/cycle and DRAM bytes/cycle."""

    peak_ops_per_cycle: float = 4.0
    peak_bytes_per_cycle: float = 8.0

    def __post_init__(self) -> None:
        check_positive("peak_ops_per_cycle", self.peak_ops_per_cycle)
        check_positive("peak_bytes_per_cycle", self.peak_bytes_per_cycle)

    @property
    def ridge_point(self) -> float:
        """Operational intensity where the two roofs meet."""
        return self.peak_ops_per_cycle / self.peak_bytes_per_cycle

    def attainable(self, operational_intensity: float) -> float:
        """Attainable ops/cycle at the given intensity."""
        if operational_intensity < 0:
            raise ValueError("operational intensity must be >= 0")
        return min(
            self.peak_ops_per_cycle,
            self.peak_bytes_per_cycle * operational_intensity,
        )

    def classify(self, operational_intensity: float) -> str:
        return "memory" if operational_intensity < self.ridge_point else "compute"

    def place(self, report: SimReport) -> RooflinePoint:
        """Place a simulated run on this roofline.

        DRAM traffic is the simulated memory accesses (line granularity);
        ops are retired instructions.
        """
        mem_lines = report.extra.get("mem_lines", None)
        if mem_lines is None:
            # Fall back: misses at the last data level approximate DRAM lines.
            mem_lines = report.mpki["l3d"] * report.instructions / 1000.0
        dram_bytes = max(mem_lines * _LINE_BYTES, 1e-9)
        intensity = report.instructions / dram_bytes
        performance = report.ipc
        return RooflinePoint(
            operational_intensity=intensity,
            performance=performance,
            bound=self.classify(intensity),
        )
