"""VTune-style top-down report rendering.

Formats a :class:`~repro.uarch.simulator.SimReport` the way Intel VTune's
General Exploration / Microarchitecture Exploration view presents the
Top-down hierarchy: the four level-1 categories with the back end split
into memory and core bound, plus the supporting raw counters.
"""

from __future__ import annotations

from repro.uarch.simulator import SimReport

__all__ = ["topdown_report"]


def _bar(pct: float, width: int = 30) -> str:
    filled = int(round(pct / 100.0 * width))
    return "#" * filled + "." * (width - filled)


def topdown_report(report: SimReport, *, title: str = "transcode") -> str:
    """Render a human-readable top-down analysis."""
    td = report.topdown
    lines = [
        f"Top-down Microarchitecture Analysis — {title}",
        f"  config: {report.config_name}   instructions: {report.instructions:.3e}"
        f"   cycles: {report.cycles:.3e}   IPC: {report.ipc:.2f}",
        "",
        f"  Retiring          {td.retiring:6.2f}%  |{_bar(td.retiring)}|",
        f"  Bad Speculation   {td.bad_speculation:6.2f}%  |{_bar(td.bad_speculation)}|",
        f"  Front-End Bound   {td.frontend_bound:6.2f}%  |{_bar(td.frontend_bound)}|",
        "    (decode/MITE-DSB "
        f"{100 * report.extra.get('fe_decode_frac', 0.0):.0f}%, i-cache "
        f"{100 * report.extra.get('fe_icache_frac', 0.0):.0f}%, iTLB "
        f"{100 * report.extra.get('fe_itlb_frac', 0.0):.0f}%)",
        f"  Back-End Bound    {td.backend_bound:6.2f}%  |{_bar(td.backend_bound)}|",
        f"    Memory Bound    {td.memory_bound:6.2f}%",
        f"    Core Bound      {td.core_bound:6.2f}%",
        "",
        "  MPKI:  "
        + "  ".join(
            f"{k}={v:.3f}"
            for k, v in report.mpki.items()
            if k in ("l1d", "l2d", "l3d", "l1i", "branch")
        ),
        "  Resource stalls (cycles/kilo-instr):  "
        + "  ".join(f"{k}={v:.2f}" for k, v in report.resource_stalls_pki.items()),
    ]
    return "\n".join(lines)
