"""The flat counter record the experiments consume.

One :class:`CounterSet` captures everything a (VTune + perf) profiling
session of one transcode yields in the paper: top-down slot percentages,
cache and branch MPKI, and resource-stall counters, alongside the three
transcoding metrics (time, quality, size) from Figure 2's triangle.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.uarch.simulator import SimReport

__all__ = ["CounterSet"]


@dataclass(frozen=True)
class CounterSet:
    """Flattened profiling counters for one transcoding run."""

    # Transcoding metrics (the Fig. 2 triangle).
    time_seconds: float  # simulated transcode time (cycles / frequency)
    psnr_db: float
    bitrate_kbps: float
    # Top-down (% of pipeline slots).
    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float
    memory_bound: float
    core_bound: float
    # perf-style MPKI.
    branch_mpki: float
    l1d_mpki: float
    l2_mpki: float
    l3_mpki: float
    l1i_mpki: float
    itlb_mpki: float
    # Resource stalls (cycles per kilo instruction).
    stall_any_pki: float
    stall_rob_pki: float
    stall_rs_pki: float
    stall_sb_pki: float
    # Raw run facts.
    cycles: float
    instructions: float
    ipc: float

    @staticmethod
    def from_report(
        report: SimReport, *, psnr_db: float, bitrate_kbps: float
    ) -> "CounterSet":
        td = report.topdown
        return CounterSet(
            time_seconds=report.seconds,
            psnr_db=psnr_db,
            bitrate_kbps=bitrate_kbps,
            retiring=td.retiring,
            bad_speculation=td.bad_speculation,
            frontend_bound=td.frontend_bound,
            backend_bound=td.backend_bound,
            memory_bound=td.memory_bound,
            core_bound=td.core_bound,
            branch_mpki=report.mpki["branch"],
            l1d_mpki=report.mpki["l1d"],
            l2_mpki=report.mpki["l2d"],
            l3_mpki=report.mpki["l3d"],
            l1i_mpki=report.mpki["l1i"],
            itlb_mpki=report.mpki["itlb"],
            stall_any_pki=report.resource_stalls_pki["any"],
            stall_rob_pki=report.resource_stalls_pki["rob"],
            stall_rs_pki=report.resource_stalls_pki["rs"],
            stall_sb_pki=report.resource_stalls_pki["sb"],
            cycles=report.cycles,
            instructions=report.instructions,
            ipc=report.ipc,
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def field_names() -> list[str]:
        return [f.name for f in fields(CounterSet)]
