"""``repro`` / ``python -m repro``: run any paper experiment by id.

Examples::

    repro tab1                        # Table I with measured entropies
    repro fig3 --scale quick
    repro fig3 --jobs 4               # shard the sweep across 4 workers
    repro fig3 --cache-dir .cache/    # persist results; repeats are free
    repro fig3 --telemetry out/       # also write out/run.json etc.
    repro fig3 --resume               # restore completed cells and finish
    repro fig3 --fault-plan 'worker.task,at=3,kill'   # chaos testing
    repro all                         # every table and figure
    repro list                        # enumerate experiment ids
    repro cache stats                 # inspect the persistent result cache
    repro cache clear --cache-dir .cache/
    repro report out/run.json         # render a telemetry artifact
    repro report --diff a/run.json b/run.json
    repro report out/run.json --timeline 3      # one job's flame graph
    repro slo check out/run.json --spec examples/slo/serve.json
    repro backends                    # list kernel backends + availability
    repro bench                       # benchmark kernels + fig3 slice
    repro bench --compare BENCH_baseline.json   # CI regression gate
    repro bench --matrix examples/bench/kernel_workload.yaml --quick
    repro bench --history bench-history/        # speedup trend + drift gate
    repro matrix validate examples/bench/*.yaml examples/bench/*.json
    repro submit cricket --crf 30 --spool .repro/spool.jsonl
    repro serve --spool .repro/spool.jsonl --telemetry out-serve/
    repro serve --mix table3 --count 8          # the paper's §V task mix
    repro loadtest --arrivals poisson --rate 4,16,40 --duration 30 --quick
    repro loadtest --arrivals diurnal --rate 12 --amplitude 0.9 \
        --telemetry out-load/ --slo examples/slo/loadtest.json
    repro serve --mix table3 --fleet 'c6g.xlarge,a1.xlarge' \
        --objective min-cost --deadline-s 600
    repro fleet-compare --quick             # x86 vs Arm vs mixed, smart vs random
    repro fleet-compare --objective min-latency --budget-usd 0.05 \
        --fleet 'cheap=a1.xlarge:2' --fleet 'fast=c5.xlarge,c6g.xlarge'

Every flag falls back to its environment variable with one documented
precedence order — **CLI flag > environment > default** — implemented by
:class:`repro.api.Settings` (``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
``REPRO_KERNELS``, ``REPRO_SHM``, ``REPRO_FAULT_PLAN``, ``REPRO_RESUME``,
``REPRO_CHECKPOINT_DIR``, ``REPRO_RETRY_*``, ``REPRO_SLO_SPEC``,
``REPRO_METRICS_OUT``, ``REPRO_METRICS_INTERVAL``,
``REPRO_LOADTEST_*``, ``REPRO_FLEET``, ``REPRO_OBJECTIVE``,
``REPRO_BENCH_MATRIX``, ``REPRO_BENCH_HISTORY``).
Subcommands read only the resolved ``Settings``; nothing else consults
the environment. The full knob catalogue lives in
``docs/CONFIGURATION.md``.

A sweep whose cells exhaust their retry budget does not abort: every
computable cell completes and is stored, the failures are summarized on
stderr (and in ``run.json`` as ``status: "partial"`` with a ``failures``
list under ``--telemetry``), and the process exits with code 3.

``repro serve`` runs the long-lived transcoding job service over a
request spool (``repro submit`` appends to it) or the built-in Table III
mix, places jobs with the smart (or random-control) policy, and exits 1
if any job finished ``failed``. ``repro loadtest`` drives the same
service with sustained open-loop traffic — a deterministic, seeded
arrival schedule offered on a virtual clock — and prints the
offered-rate vs. achieved-throughput/latency table (shed load included;
exit 1 if any job finished ``failed``). With ``--slo SPEC.json`` the run is
evaluated against a declarative SLO spec (the verdict lands in
``run.json``); with ``--metrics-out DIR`` live Prometheus-text metric
snapshots are written while the service drains. Fleets mix Table IV
config workers with priced cloud instance types
(``c5.xlarge``/``c6g.xlarge``/...), and ``--objective min-cost
--deadline-s N`` / ``--objective min-latency --budget-usd R`` switch
smart placement onto its cost-aware Pareto objectives. ``repro
fleet-compare`` runs one workload across several named fleets — smart
placement against the seeded random control — and tabulates throughput
per provisioned dollar, p99 end-to-end latency, and cost per completed
job (exit 1 if any fleet shed or failed jobs). ``repro slo check
RUN.json --spec SPEC.json`` re-evaluates an exported artifact and exits
2 on breach (the CI gate). ``repro bench`` keeps its historical
behaviour (exit 4 on regression vs. the baseline artifact); ``repro
bench --matrix SPEC`` runs a declarative benchmark matrix (exit 1 if
any cell failed), ``repro bench --history DIR`` renders the speedup
trend over past artifacts and exits 5 when the rolling-window detector
flags drift, and ``repro matrix validate SPEC...`` checks specs without
running them. See ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import repro
from repro.experiments import EXPERIMENT_DESCRIPTIONS, EXPERIMENT_IDS
from repro.experiments.runner import SCALES

__all__ = ["main"]

#: Default spool file used by `repro submit` / `repro serve --spool`.
DEFAULT_SPOOL = Path(".repro") / "spool.jsonl"


def _run_one(exp_id: str, scale, telemetry_dir: Path | None) -> str:
    """Run one experiment through the blessed facade."""
    from repro.api import sweep

    return sweep(exp_id, scale, telemetry_dir=telemetry_dir)


def _cache_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent sweep result cache.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else "
             "~/.cache/repro/sweeps)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.cache import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        print(cache.stats().render())
    else:
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
    return 0


def _backends_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro backends",
        description="List the registered kernel backends, their "
                    "capabilities, and availability (an optional "
                    "backend whose dependency is missing shows why and "
                    "what it falls back to).",
    )
    parser.parse_args(argv)

    from repro.codec import kernels

    active = kernels.active_backend()
    rows = []
    for backend in kernels.all_backends():
        marker = "*" if backend.name == active else " "
        if backend.available:
            status = "available"
        else:
            status = f"unavailable ({backend.unavailable_reason})"
            if backend.base:
                status += f", falls back to {backend.base}"
        caps = ",".join(sorted(backend.capabilities)) or "-"
        rows.append((marker, backend.name, status, caps, backend.description))
    name_w = max(len(r[1]) for r in rows)
    status_w = max(len(r[2]) for r in rows)
    caps_w = max(max(len(r[3]) for r in rows), len("capabilities"))
    print(f"  {'backend':<{name_w}}  {'status':<{status_w}}  "
          f"{'capabilities':<{caps_w}}  description")
    for marker, name, status, caps, desc in rows:
        print(f"{marker} {name:<{name_w}}  {status:<{status_w}}  "
              f"{caps:<{caps_w}}  {desc}")
    print(f"\n* = active backend (select with --kernels/$REPRO_KERNELS; "
          f"default {kernels.DEFAULT_BACKEND})")
    return 0


def _bench_main(argv: list[str]) -> int:
    from repro.codec.kernels import KERNEL_BACKENDS

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the codec kernels across every available "
                    "backend and an end-to-end fig3 slice; or run a "
                    "declarative benchmark matrix (--matrix) / render "
                    "the speedup trend over past artifacts (--history).",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE.json",
        default=None,
        help="compare speedups against a baseline artifact; exit 4 on "
             "any regression beyond the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional speedup drop before a comparison counts "
             "as a regression (default 0.25)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="artifact path (default: BENCH_<rev>.json in the cwd; with "
             "--history, an optional trend-JSON path)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        metavar="N",
        help="kernel repetitions per backend; best-of-N is reported",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller e2e slice, single repetitions (smoke mode); with "
             "--matrix, small proxy clips per cell",
    )
    parser.add_argument(
        "--matrix",
        metavar="SPEC",
        default=None,
        help="run a declarative benchmark matrix from a YAML/JSON spec "
             "(default: $REPRO_BENCH_MATRIX; see docs/BENCHMARKS.md)",
    )
    parser.add_argument(
        "--matrix-out",
        metavar="PATH",
        default="matrix.json",
        help="matrix artifact path (default: matrix.json)",
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="render the speedup trend over the BENCH_*.json / "
             "matrix*.json artifacts in DIR; exit 5 when the rolling-"
             "window detector flags drift "
             "(default: $REPRO_BENCH_HISTORY)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="K",
        help="rolling-window size for --history (default: 5)",
    )
    parser.add_argument(
        "--drift",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed drop of the window median below the history best "
             "before --history flags drift (default: 0.10)",
    )
    parser.add_argument(
        "--kernels",
        choices=KERNEL_BACKENDS,
        default=None,
        help="CLI-layer kernel-backend override for matrix cells "
             "(spec < env < CLI; axes still pin their own cells)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="CLI-layer worker-count override for matrix sweep cells",
    )
    args = parser.parse_args(argv)

    from repro.api import Settings

    try:
        settings = Settings.resolve(
            kernels=args.kernels,
            jobs=args.jobs,
            bench_matrix=args.matrix,
            bench_history=args.history,
        )
    except ValueError as exc:
        parser.error(str(exc))

    if settings.bench_history is not None:
        return _bench_history(settings, args)
    if settings.bench_matrix is not None:
        return _bench_matrix(settings, args)

    from repro.bench import compare_bench, load_bench, render_bench, run_bench, write_bench

    payload = run_bench(reps=args.reps, quick=args.quick)
    path = write_bench(payload, args.output)
    print(render_bench(payload))
    print(f"\nwrote {path}")

    if args.compare is None:
        return 0
    try:
        baseline = load_bench(args.compare)
    except (OSError, ValueError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 1
    report, regressions = compare_bench(
        payload, baseline, threshold=args.threshold
    )
    print()
    print(report)
    return 4 if regressions else 0


def _bench_matrix(settings, args) -> int:
    """``repro bench --matrix``: run a declarative benchmark matrix."""
    from repro.api import bench_matrix
    from repro.bench import SpecError
    from repro.obs import render_matrix

    overrides: dict[str, object] = {}
    if args.kernels is not None:
        overrides["kernels"] = args.kernels
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    try:
        payload = bench_matrix(
            settings.bench_matrix,
            quick=args.quick,
            reps=args.reps,
            out=args.matrix_out,
            overrides=overrides,
        )
    except (SpecError, OSError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 1
    print(render_matrix(payload))
    print(f"\nwrote {args.matrix_out}")
    failed = [c for c in payload["cells"] if c["status"] != "ok"]
    return 1 if failed else 0


def _bench_history(settings, args) -> int:
    """``repro bench --history``: trend table + rolling-window gate."""
    from repro.bench import DEFAULT_DRIFT, DEFAULT_WINDOW, load_history, trend_payload
    from repro.obs import render_trend

    window = args.window if args.window is not None else DEFAULT_WINDOW
    drift = args.drift if args.drift is not None else DEFAULT_DRIFT
    try:
        entries = load_history(settings.bench_history)
        if not entries:
            print(
                f"repro bench: no BENCH_*.json / matrix*.json artifacts "
                f"in {settings.bench_history}",
                file=sys.stderr,
            )
            return 1
        trend = trend_payload(entries, window=window, drift=drift)
    except (OSError, ValueError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 1
    print(render_trend(trend))
    if args.output is not None:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(trend, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {out}")
    drifting = [v for v in trend["verdicts"] if v["status"] == "drift"]
    return 5 if drifting else 0


def _matrix_main(argv: list[str]) -> int:
    """``repro matrix validate``: check specs without running anything."""
    parser = argparse.ArgumentParser(
        prog="repro matrix",
        description="Validate declarative benchmark-matrix specs "
                    "(schema, axes, cell count) without running them.",
    )
    parser.add_argument("action", choices=("validate",))
    parser.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="YAML/JSON matrix spec file(s)",
    )
    args = parser.parse_args(argv)

    from repro.bench import SpecError, load_spec

    status = 0
    for path in args.specs:
        try:
            spec = load_spec(path)
        except SpecError as exc:
            print(f"repro matrix: {exc}", file=sys.stderr)
            status = 1
            continue
        axes = ", ".join(
            f"{name}[{len(values)}]" for name, values in spec.axes
        )
        print(
            f"{path}: ok — {spec.name} (leg={spec.leg}, axes: {axes}, "
            f"{spec.n_cells()} cells)"
        )
    return status


def _list_main() -> int:
    width = max(len(i) for i in EXPERIMENT_IDS)
    for exp_id in EXPERIMENT_IDS:
        print(f"{exp_id.ljust(width)}  {EXPERIMENT_DESCRIPTIONS[exp_id]}")
    return 0


def _report_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render or diff telemetry run.json artifacts.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="run.json",
        help="one artifact to render, or two with --diff",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="compare two artifacts metric by metric",
    )
    parser.add_argument(
        "--timeline",
        metavar="JOB_ID",
        default=None,
        help="render one service job's span tree from the events.jsonl "
             "next to the artifact (flame graph in text form)",
    )
    args = parser.parse_args(argv)

    from repro.obs import (
        diff_runs,
        load_run,
        read_events_jsonl,
        render_run,
        render_timeline,
    )

    try:
        if args.diff:
            if len(args.artifacts) != 2:
                parser.error("--diff needs exactly two run.json paths")
            print(diff_runs(load_run(args.artifacts[0]),
                            load_run(args.artifacts[1])))
        elif args.timeline is not None:
            if len(args.artifacts) != 1:
                parser.error("--timeline needs exactly one run.json path")
            artifact = Path(args.artifacts[0])
            events = (artifact if artifact.name.endswith(".jsonl")
                      else artifact.parent / "events.jsonl")
            if not events.exists():
                print(f"repro report: no event stream at {events}",
                      file=sys.stderr)
                return 1
            print(render_timeline(read_events_jsonl(events), args.timeline))
        else:
            for i, path in enumerate(args.artifacts):
                if i:
                    print()
                print(render_run(load_run(path)))
    except (OSError, ValueError) as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 1
    return 0


def _slo_main(argv: list[str]) -> int:
    """``repro slo check``: evaluate a run artifact against an SLO spec."""
    parser = argparse.ArgumentParser(
        prog="repro slo",
        description="Evaluate telemetry artifacts against declarative "
                    "service-level objectives.",
    )
    parser.add_argument("action", choices=("check",))
    parser.add_argument("artifact", metavar="run.json",
                        help="telemetry artifact to evaluate")
    parser.add_argument("--spec", metavar="SPEC.json", default=None,
                        help="SLO spec file (default: $REPRO_SLO_SPEC)")
    args = parser.parse_args(argv)

    from repro.api import Settings
    from repro.obs import evaluate_slo, load_run, load_slo_spec

    spec_path = args.spec or Settings.from_env().slo_spec
    if spec_path is None:
        parser.error("no SLO spec: pass --spec or set REPRO_SLO_SPEC")
    try:
        spec = load_slo_spec(spec_path)
        run = load_run(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"repro slo: {exc}", file=sys.stderr)
        return 1
    report = evaluate_slo(spec, run.get("metrics") or {})
    print(report.render())
    return 0 if report.ok else 2


def _submit_main(argv: list[str]) -> int:
    """``repro submit``: append one typed request to the spool file."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Queue one transcoding job for `repro serve`.",
    )
    parser.add_argument("clip", help="vbench clip short name, e.g. cricket")
    parser.add_argument("--preset", default="medium",
                        help="x264-style preset name (default: medium)")
    parser.add_argument("--crf", type=int, default=23,
                        help="rate factor in [0, 51] (default: 23)")
    parser.add_argument("--refs", type=int, default=None,
                        help="reference frames (default: the preset's own)")
    parser.add_argument("--priority", type=int, default=0,
                        help="dispatch priority; higher runs first")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="soft deadline carried into status artifacts")
    parser.add_argument("--spool", metavar="PATH", default=None,
                        help=f"spool file (default: {DEFAULT_SPOOL})")
    args = parser.parse_args(argv)

    from repro.api import TranscodeRequest

    try:
        request = TranscodeRequest(
            clip=args.clip, preset=args.preset, crf=args.crf,
            refs=args.refs, priority=args.priority,
            deadline_ms=args.deadline_ms,
        )
    except ValueError as exc:
        parser.error(str(exc))
    spool = Path(args.spool) if args.spool else DEFAULT_SPOOL
    spool.parent.mkdir(parents=True, exist_ok=True)
    with open(spool, "a", encoding="utf-8") as handle:
        json.dump(request.to_payload(), handle)
        handle.write("\n")
    print(f"queued {request.clip} preset={request.preset} "
          f"crf={request.crf} -> {spool}")
    return 0


def _read_spool(spool: Path):
    """Parse the spool file into requests (malformed lines are fatal)."""
    from repro.api import TranscodeRequest

    requests = []
    with open(spool, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                requests.append(
                    TranscodeRequest.from_payload(json.loads(line))
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{spool}:{lineno}: bad spool entry: {exc}")
    return requests


def _serve_main(argv: list[str]) -> int:
    """``repro serve``: one synchronous pass of the job service."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the transcoding job service over queued "
                    "submissions (or the paper's Table III mix).",
    )
    parser.add_argument("--spool", metavar="PATH", default=None,
                        help=f"consume requests from this spool file "
                             f"(default: {DEFAULT_SPOOL} if it exists)")
    parser.add_argument("--mix", choices=("table3",), default=None,
                        help="use a built-in request mix instead of a spool")
    parser.add_argument("--count", type=int, default=8,
                        help="number of jobs when using --mix (default: 8)")
    parser.add_argument("--policy", choices=("smart", "random"),
                        default="smart",
                        help="placement policy (default: smart)")
    parser.add_argument("--no-control", action="store_true",
                        help="skip the random-placement control pass")
    parser.add_argument("--fleet", metavar="SPEC", default=None,
                        help="worker fleet: 'name[:count][:$rate]' clauses "
                             "over Table IV configs and instance types, "
                             "e.g. 'fe_op,be_op1:2' or "
                             "'c5.xlarge,c6g.xlarge:2:$0.10' "
                             "(default: $REPRO_FLEET, else one worker per "
                             "Table IV variant)")
    parser.add_argument("--objective",
                        choices=("throughput", "min-cost", "min-latency"),
                        default=None,
                        help="smart-placement objective "
                             "(default: $REPRO_OBJECTIVE, else throughput)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job completion deadline constraining the "
                             "cost-aware objectives (virtual seconds)")
    parser.add_argument("--budget-usd", type=float, default=None,
                        metavar="RATE",
                        help="per-worker $/hour ceiling constraining the "
                             "cost-aware objectives")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="admission queue bound (default: 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the random placement policy")
    parser.add_argument("--quick", action="store_true",
                        help="small proxy clips (48x32, 4 frames) for "
                             "smokes and CI")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="checkpoint queue state to PATH after every "
                             "dispatch round")
    parser.add_argument("--resume", action="store_true",
                        help="restore queue state from --checkpoint "
                             "(default: $REPRO_RESUME)")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="inject deterministic faults, e.g. "
                             "'service.worker,at=3,raise=RuntimeError' "
                             "(default: $REPRO_FAULT_PLAN)")
    parser.add_argument("--telemetry", metavar="OUT_DIR", default=None,
                        help="write run.json/events.jsonl/trace.json and "
                             "the jobs.json status artifact into OUT_DIR")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="where to write jobs.json (default: the "
                             "--telemetry directory, else nowhere)")
    parser.add_argument("--slo", metavar="SPEC.json", default=None,
                        help="evaluate the run against this SLO spec; the "
                             "verdict lands in run.json and each metrics "
                             "snapshot (default: $REPRO_SLO_SPEC)")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="write live metrics.prom / slo.json snapshots "
                             "into DIR while the service runs "
                             "(default: $REPRO_METRICS_OUT)")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="snapshot interval for --metrics-out "
                             "(default: $REPRO_METRICS_INTERVAL, else 30)")
    args = parser.parse_args(argv)

    from repro.api import ServiceConfig, Settings, serve, table3_requests
    from repro.service import parse_fleet_spec

    try:
        settings = Settings.resolve(
            fault_plan=args.fault_plan,
            resume=True if args.resume else None,
            slo_spec=args.slo,
            metrics_out=args.metrics_out,
            metrics_interval=args.metrics_interval,
            fleet=args.fleet,
            objective=args.objective,
        ).apply()
    except ValueError as exc:
        parser.error(str(exc))

    if args.mix is not None:
        requests = table3_requests(args.count)
    else:
        spool = Path(args.spool) if args.spool else DEFAULT_SPOOL
        if not spool.exists():
            parser.error(
                f"no spool file at {spool}; `repro submit` jobs first or "
                "pass --mix table3"
            )
        try:
            requests = _read_spool(spool)
        except ValueError as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return 1
        if not requests:
            print(f"repro serve: spool {spool} is empty", file=sys.stderr)
            return 1

    sizing = {"width": 48, "height": 32, "n_frames": 4} if args.quick else {}
    try:
        config = ServiceConfig(
            fleet=(parse_fleet_spec(settings.fleet) if settings.fleet
                   else ServiceConfig.fleet),
            policy=args.policy,
            objective=settings.objective,
            deadline_s=args.deadline_s,
            budget_usd=args.budget_usd,
            seed=args.seed,
            queue_capacity=args.queue_capacity,
            checkpoint_path=(Path(args.checkpoint) if args.checkpoint
                             else None),
            **sizing,
        )
    except ValueError as exc:
        parser.error(str(exc))

    try:
        report = serve(
            requests,
            config,
            control=not args.no_control,
            resume=settings.resume,
            telemetry_dir=args.telemetry,
            slo_spec=settings.slo_spec,
            metrics_out=settings.metrics_out,
            metrics_interval=settings.metrics_interval,
        )
    except (OSError, ValueError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 1
    print(report.render())

    out_dir = args.out or args.telemetry
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        jobs_path = out / "jobs.json"
        with open(jobs_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[serve] status artifact: {jobs_path}", file=sys.stderr)
    return 1 if report.failed else 0


def _loadtest_main(argv: list[str]) -> int:
    """``repro loadtest``: sustained traffic against the job service."""
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Drive the transcoding job service with an open-loop "
                    "arrival schedule on a virtual clock (sustained-"
                    "traffic scenarios resolve in wall milliseconds).",
    )
    parser.add_argument("--arrivals",
                        choices=("poisson", "fixed", "diurnal", "mmpp"),
                        default=None,
                        help="arrival process "
                             "(default: $REPRO_LOADTEST_ARRIVALS, "
                             "else poisson)")
    parser.add_argument("--rate", metavar="R[,R...]", default=None,
                        help="offered rate(s) in req/s; a comma list runs "
                             "one leg per rate "
                             "(default: $REPRO_LOADTEST_RATE, else 8)")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="virtual seconds of offered traffic per leg "
                             "(default: $REPRO_LOADTEST_DURATION, else 30)")
    parser.add_argument("--mix", default=None,
                        help="workload mix name "
                             "(default: $REPRO_LOADTEST_MIX, else table3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for arrivals and mix sampling "
                             "(default: 0)")
    loop = parser.add_mutually_exclusive_group()
    loop.add_argument("--open-loop", dest="open_loop", action="store_true",
                      default=True,
                      help="offer every arrival on schedule; full queues "
                           "shed load (the default)")
    loop.add_argument("--closed-loop", dest="open_loop",
                      action="store_false",
                      help="hold admissions until the queue has room "
                           "(nothing sheds; hides overload)")
    parser.add_argument("--amplitude", type=float, default=0.5,
                        help="diurnal swing in [0, 1) (default: 0.5)")
    parser.add_argument("--period", type=float, default=60.0,
                        metavar="SECONDS",
                        help="diurnal period (default: 60)")
    parser.add_argument("--burst", type=float, default=8.0,
                        help="mmpp burst-to-quiet rate ratio (default: 8)")
    parser.add_argument("--sojourn", type=float, default=5.0,
                        metavar="SECONDS",
                        help="mmpp mean state sojourn (default: 5)")
    parser.add_argument("--fleet", metavar="SPEC", default=None,
                        help="worker fleet: 'name[:count][:$rate]' clauses "
                             "over Table IV configs and instance types "
                             "(default: $REPRO_FLEET, else one worker per "
                             "Table IV variant)")
    parser.add_argument("--policy", choices=("smart", "random"),
                        default="smart",
                        help="placement policy (default: smart)")
    parser.add_argument("--objective",
                        choices=("throughput", "min-cost", "min-latency"),
                        default=None,
                        help="smart-placement objective "
                             "(default: $REPRO_OBJECTIVE, else throughput)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job completion deadline constraining the "
                             "cost-aware objectives (virtual seconds)")
    parser.add_argument("--budget-usd", type=float, default=None,
                        metavar="RATE",
                        help="per-worker $/hour ceiling constraining the "
                             "cost-aware objectives")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="admission queue bound; the knob that decides "
                             "when overload sheds (default: 64)")
    parser.add_argument("--clock-hz", type=float, default=None,
                        metavar="HZ",
                        help="virtual core frequency for charging encode "
                             "cycles (default: 1e6)")
    parser.add_argument("--quick", action="store_true",
                        help="small proxy clips (48x32, 4 frames) for "
                             "smokes and CI")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="inject deterministic faults, e.g. "
                             "'service.worker,at=3,raise=RuntimeError' "
                             "(default: $REPRO_FAULT_PLAN)")
    parser.add_argument("--telemetry", metavar="OUT_DIR", default=None,
                        help="write run.json/events.jsonl/trace.json with "
                             "the offered/admitted/shed accounting under "
                             "meta.loadtest")
    parser.add_argument("--slo", metavar="SPEC.json", default=None,
                        help="evaluate the run against this SLO spec; the "
                             "verdict lands in run.json "
                             "(default: $REPRO_SLO_SPEC)")
    args = parser.parse_args(argv)

    from repro.api import (
        LoadtestSpec,
        ServiceConfig,
        Settings,
        loadtest,
    )
    from repro.service import parse_fleet_spec

    try:
        settings = Settings.resolve(
            fault_plan=args.fault_plan,
            slo_spec=args.slo,
            loadtest_arrivals=args.arrivals,
            loadtest_rate=args.rate,
            loadtest_duration=args.duration,
            loadtest_mix=args.mix,
            fleet=args.fleet,
            objective=args.objective,
        ).apply()
    except ValueError as exc:
        parser.error(str(exc))

    extras: dict[str, float] = {}
    if settings.loadtest_arrivals == "diurnal":
        extras = {"amplitude": args.amplitude, "period_s": args.period}
    elif settings.loadtest_arrivals == "mmpp":
        extras = {"burst": args.burst, "sojourn_s": args.sojourn}
    sizing = {"width": 48, "height": 32, "n_frames": 4} if args.quick else {}
    if args.clock_hz is not None:
        sizing["clock_hz"] = args.clock_hz
    try:
        spec = LoadtestSpec(
            arrivals=settings.loadtest_arrivals,
            rates=settings.loadtest_rate,
            duration_s=settings.loadtest_duration,
            mix=settings.loadtest_mix,
            seed=args.seed,
            open_loop=args.open_loop,
            arrival_extras=extras,
        )
        config = ServiceConfig(
            fleet=(parse_fleet_spec(settings.fleet) if settings.fleet
                   else ServiceConfig.fleet),
            policy=args.policy,
            objective=settings.objective,
            deadline_s=args.deadline_s,
            budget_usd=args.budget_usd,
            seed=args.seed,
            queue_capacity=args.queue_capacity,
            **sizing,
        )
    except ValueError as exc:
        parser.error(str(exc))

    try:
        report = loadtest(
            spec,
            config,
            telemetry_dir=args.telemetry,
            slo_spec=settings.slo_spec,
        )
    except (OSError, ValueError) as exc:
        print(f"repro loadtest: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 1 if any(leg.failed for leg in report.legs) else 0


def _fleet_compare_main(argv: list[str]) -> int:
    """``repro fleet-compare``: one workload across heterogeneous fleets."""
    parser = argparse.ArgumentParser(
        prog="repro fleet-compare",
        description="Run one workload across several fleet definitions "
                    "(smart cost-aware placement vs. the seeded random "
                    "control) and tabulate throughput per provisioned "
                    "dollar, p99 end-to-end latency, and cost per "
                    "completed job.",
    )
    parser.add_argument("--fleet", metavar="NAME=SPEC", action="append",
                        default=None,
                        help="add one fleet to the matrix, e.g. "
                             "'arm=c6g.xlarge,a1.xlarge'; repeatable "
                             "(default: the shipped x86/arm/mixed/table4 "
                             "matrix)")
    parser.add_argument("--objective",
                        choices=("throughput", "min-cost", "min-latency"),
                        default=None,
                        help="smart-placement objective "
                             "(default: $REPRO_OBJECTIVE if cost-aware, "
                             "else min-cost)")
    parser.add_argument("--mix", default="table3",
                        help="workload: 'table3' or a loadgen mix name "
                             "(default: table3)")
    parser.add_argument("--count", type=int, default=None,
                        help="jobs per fleet (default: 16, or 8 with "
                             "--quick)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the mix sampler and the random "
                             "control (default: 0)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job completion deadline constraining the "
                             "cost-aware objectives (virtual seconds)")
    parser.add_argument("--budget-usd", type=float, default=None,
                        metavar="RATE",
                        help="per-worker $/hour ceiling constraining the "
                             "cost-aware objectives")
    parser.add_argument("--quick", action="store_true",
                        help="small proxy clips (48x32, 4 frames) and 8 "
                             "jobs per fleet for smokes and CI")
    parser.add_argument("--telemetry", metavar="OUT_DIR", default=None,
                        help="write run.json (with the per-fleet table "
                             "under meta.fleet_compare) into OUT_DIR")
    args = parser.parse_args(argv)

    from repro.api import Settings, fleet_compare
    from repro.service import FleetDef

    try:
        settings = Settings.resolve(objective=args.objective).apply()
    except ValueError as exc:
        parser.error(str(exc))

    fleets = None
    if args.fleet:
        defs = []
        for clause in args.fleet:
            name, sep, spec = clause.partition("=")
            if not sep or not name.strip() or not spec.strip():
                parser.error(
                    f"bad --fleet {clause!r}: expected NAME=SPEC, e.g. "
                    "'arm=c6g.xlarge,a1.xlarge'"
                )
            try:
                defs.append(FleetDef(name=name.strip(), spec=spec.strip()))
            except ValueError as exc:
                parser.error(f"bad --fleet {clause!r}: {exc}")
        fleets = tuple(defs)

    count = args.count if args.count is not None else (8 if args.quick else 16)
    sizing = {"width": 48, "height": 32, "n_frames": 4} if args.quick else {}
    try:
        report = fleet_compare(
            fleets,
            objective=args.objective,
            mix=args.mix,
            count=count,
            seed=args.seed,
            deadline_s=args.deadline_s,
            budget_usd=args.budget_usd,
            telemetry_dir=args.telemetry,
            settings=settings,
            **sizing,
        )
    except (OSError, ValueError) as exc:
        print(f"repro fleet-compare: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 1 if any(r.failed for r in report.results) else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # `list`, `report`, `cache`, `bench`, `serve`, `loadtest`, and
    # `submit` are subcommands with their own options; the default
    # command (run an experiment) keeps its historical flat form.
    if argv[:1] == ["list"]:
        return _list_main()
    if argv[:1] == ["report"]:
        return _report_main(argv[1:])
    if argv[:1] == ["cache"]:
        return _cache_main(argv[1:])
    if argv[:1] == ["backends"]:
        return _backends_main(argv[1:])
    if argv[:1] == ["bench"]:
        return _bench_main(argv[1:])
    if argv[:1] == ["matrix"]:
        return _matrix_main(argv[1:])
    if argv[:1] == ["serve"]:
        return _serve_main(argv[1:])
    if argv[:1] == ["loadtest"]:
        return _loadtest_main(argv[1:])
    if argv[:1] == ["fleet-compare"]:
        return _fleet_compare_main(argv[1:])
    if argv[:1] == ["submit"]:
        return _submit_main(argv[1:])
    if argv[:1] == ["slo"]:
        return _slo_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        epilog="Subcommands: `repro list` enumerates experiment ids; "
               "`repro report <run.json> [--diff]` renders/diffs "
               "telemetry artifacts; `repro cache {stats,clear}` "
               "inspects/clears the persistent result cache; "
               "`repro backends` lists the registered kernel backends "
               "and their availability; "
               "`repro bench [--compare BASELINE.json]` benchmarks the "
               "codec kernels and the fig3 slice (`--matrix SPEC` runs "
               "a declarative benchmark matrix, `--history DIR` renders "
               "the speedup trend and gates on rolling-window drift); "
               "`repro matrix validate SPEC...` checks matrix specs; "
               "`repro submit CLIP` "
               "queues a job and `repro serve` runs the transcoding job "
               "service over the queue; `repro loadtest` drives the "
               "service with sustained open-loop traffic on a virtual "
               "clock; `repro fleet-compare` tabulates throughput/$ and "
               "cost per job across heterogeneous fleets; "
               "`repro slo check RUN.json --spec SPEC.json` gates "
               "an exported run on its SLOs (exit 2 on breach).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENT_IDS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="proxy sizing: quick (seconds-minutes), medium, full (hours)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT_DIR",
        default=None,
        help="write run.json / events.jsonl / trace.json telemetry "
             "artifacts into OUT_DIR (per-experiment subdirs under `all`)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard sweeps across N worker processes "
             "(default: $REPRO_JOBS, else 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist sweep results under DIR so repeat runs are "
             "near-free (default: $REPRO_CACHE_DIR, else no persistent "
             "cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache even if "
             "$REPRO_CACHE_DIR is set",
    )
    from repro.codec.kernels import KERNEL_BACKENDS

    parser.add_argument(
        "--kernels",
        choices=KERNEL_BACKENDS,
        default=None,
        help="codec kernel backend (default: $REPRO_KERNELS, else "
             "vectorized; `repro backends` lists availability)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="disable the shared-memory frame transport for multi-"
             "process sweeps and decode clips per worker instead "
             "(default: $REPRO_SHM, else enabled)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore cells completed by a previous interrupted run from "
             "its checkpoint manifest and compute only the missing ones "
             "(default: $REPRO_RESUME)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="where sweep checkpoint manifests live (default: "
             "$REPRO_CHECKPOINT_DIR, else checkpoints/ inside the "
             "persistent cache)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        help="inject deterministic faults, e.g. "
             "'sweep.compute,at=3,raise=InjectedFault;worker.task,at=5,kill' "
             "(default: $REPRO_FAULT_PLAN)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise experiment failures with the full traceback",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    out_root = Path(args.telemetry) if args.telemetry else None

    from repro.api import Settings
    from repro.experiments.runner import SweepFailure

    # Everything process-wide goes through one resolved Settings:
    # CLI flag > environment variable > default.
    try:
        Settings.resolve(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            kernels=args.kernels,
            no_shm=args.no_shm,
            fault_plan=args.fault_plan,
            resume=True if args.resume else None,
            checkpoint_dir=args.checkpoint_dir,
        ).apply()
    except ValueError as exc:
        parser.error(str(exc))

    ids = list(EXPERIMENT_IDS) if args.experiment == "all" else [args.experiment]
    succeeded: list[str] = []
    for exp_id in ids:
        out_dir = None
        if out_root is not None:
            out_dir = out_root / exp_id if len(ids) > 1 else out_root
        t0 = time.perf_counter()
        try:
            output = _run_one(exp_id, scale, out_dir)
        except SweepFailure as exc:
            # Every computable cell completed and was stored before this
            # raised; report the stragglers and exit partial (code 3).
            print(f"[{exp_id}] PARTIAL: {exc}", file=sys.stderr)
            for failure in exc.failures:
                print(
                    f"[{exp_id}]   failed cell {failure.video} "
                    f"crf={failure.crf} refs={failure.refs} "
                    f"preset={failure.preset}: {failure.error}: "
                    f"{failure.message} (after {failure.attempts} attempts)",
                    file=sys.stderr,
                )
            print(
                f"[{exp_id}] completed cells are checkpointed; re-run with "
                "--resume to retry only the failed ones",
                file=sys.stderr,
            )
            if args.debug:
                raise
            return 3
        except Exception as exc:  # surface which experiment failed
            if args.debug:
                raise
            print(f"[{exp_id}] FAILED: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            if succeeded:
                print(
                    f"[{exp_id}] experiments completed before the failure: "
                    + ", ".join(succeeded),
                    file=sys.stderr,
                )
            print("(re-run with --debug for the full traceback)",
                  file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - t0
        print(output)
        print(f"\n[{exp_id} done in {elapsed:.1f}s at scale={scale.name}]\n")
        succeeded.append(exp_id)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
