"""``repro`` / ``python -m repro``: run any paper experiment by id.

Examples::

    repro tab1              # Table I with measured entropies
    repro fig3 --scale quick
    repro fig8 --scale medium
    repro all               # every table and figure at the chosen scale
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENT_IDS
from repro.experiments.runner import SCALES

__all__ = ["main"]


def _render(exp_id: str, scale) -> str:
    # Imports are local so `repro tab2` does not pay for numpy-heavy
    # experiment modules it does not use.
    if exp_id == "tab1":
        from repro.experiments.tables import tab1

        return tab1(scale).render()
    if exp_id == "tab2":
        from repro.experiments.tables import tab2

        return tab2()
    if exp_id == "tab3":
        from repro.experiments.tables import tab3

        return tab3()
    if exp_id == "tab4":
        from repro.experiments.tables import tab4

        return tab4()
    if exp_id == "fig3":
        from repro.experiments import fig3_heatmaps

        return fig3_heatmaps.run(scale).render()
    if exp_id == "fig4":
        from repro.experiments import fig4_projections

        return fig4_projections.run(scale).render()
    if exp_id == "fig5":
        from repro.experiments import fig5_inefficiency

        return fig5_inefficiency.run(scale).render()
    if exp_id == "fig6":
        from repro.experiments import fig6_presets

        return fig6_presets.run(scale).render()
    if exp_id == "fig7":
        from repro.experiments import fig7_videos

        return fig7_videos.run(scale).render()
    if exp_id == "fig8":
        from repro.experiments import fig8_compiler

        return fig8_compiler.run(scale).render()
    if exp_id == "fig9":
        from repro.experiments import fig9_scheduler

        return fig9_scheduler.run(scale).render()
    if exp_id == "roofline":
        from repro.experiments import roofline_sweep

        return roofline_sweep.run(scale).render()
    raise KeyError(exp_id)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENT_IDS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="proxy sizing: quick (seconds-minutes), medium, full (hours)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    ids = list(EXPERIMENT_IDS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        t0 = time.perf_counter()
        try:
            output = _render(exp_id, scale)
        except Exception as exc:  # surface which experiment failed
            print(f"[{exp_id}] FAILED: {exc}", file=sys.stderr)
            raise
        elapsed = time.perf_counter() - t0
        print(output)
        print(f"\n[{exp_id} done in {elapsed:.1f}s at scale={scale.name}]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
