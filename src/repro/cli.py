"""``repro`` / ``python -m repro``: run any paper experiment by id.

Examples::

    repro tab1                        # Table I with measured entropies
    repro fig3 --scale quick
    repro fig3 --jobs 4               # shard the sweep across 4 workers
    repro fig3 --cache-dir .cache/    # persist results; repeats are free
    repro fig3 --telemetry out/       # also write out/run.json etc.
    repro fig3 --resume               # restore completed cells and finish
    repro fig3 --fault-plan 'worker.task,at=3,kill'   # chaos testing
    repro all                         # every table and figure
    repro list                        # enumerate experiment ids
    repro cache stats                 # inspect the persistent result cache
    repro cache clear --cache-dir .cache/
    repro report out/run.json         # render a telemetry artifact
    repro report --diff a/run.json b/run.json
    repro bench                       # benchmark kernels + fig3 slice
    repro bench --compare BENCH_baseline.json   # CI regression gate

``--jobs`` / ``--cache-dir`` fall back to the ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` environment variables when omitted; likewise
``--fault-plan`` / ``--resume`` / ``--checkpoint-dir`` fall back to
``REPRO_FAULT_PLAN`` / ``REPRO_RESUME`` / ``REPRO_CHECKPOINT_DIR``.

A sweep whose cells exhaust their retry budget does not abort: every
computable cell completes and is stored, the failures are summarized on
stderr (and in ``run.json`` as ``status: "partial"`` with a ``failures``
list under ``--telemetry``), and the process exits with code 3.

``repro bench`` times every backend-dispatched codec kernel under both
``REPRO_KERNELS`` backends plus an end-to-end fig3 slice, writes a
``BENCH_<rev>.json`` artifact, and with ``--compare`` exits with code 4
when any speedup regressed more than the threshold versus the baseline.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import repro
from repro.experiments import EXPERIMENT_DESCRIPTIONS, EXPERIMENT_IDS
from repro.experiments.runner import SCALES

__all__ = ["main"]


def _render(exp_id: str, scale) -> str:
    # Imports are local so `repro tab2` does not pay for numpy-heavy
    # experiment modules it does not use.
    if exp_id == "tab1":
        from repro.experiments.tables import tab1

        return tab1(scale).render()
    if exp_id == "tab2":
        from repro.experiments.tables import tab2

        return tab2()
    if exp_id == "tab3":
        from repro.experiments.tables import tab3

        return tab3()
    if exp_id == "tab4":
        from repro.experiments.tables import tab4

        return tab4()
    if exp_id == "fig3":
        from repro.experiments import fig3_heatmaps

        return fig3_heatmaps.run(scale).render()
    if exp_id == "fig4":
        from repro.experiments import fig4_projections

        return fig4_projections.run(scale).render()
    if exp_id == "fig5":
        from repro.experiments import fig5_inefficiency

        return fig5_inefficiency.run(scale).render()
    if exp_id == "fig6":
        from repro.experiments import fig6_presets

        return fig6_presets.run(scale).render()
    if exp_id == "fig7":
        from repro.experiments import fig7_videos

        return fig7_videos.run(scale).render()
    if exp_id == "fig8":
        from repro.experiments import fig8_compiler

        return fig8_compiler.run(scale).render()
    if exp_id == "fig9":
        from repro.experiments import fig9_scheduler

        return fig9_scheduler.run(scale).render()
    if exp_id == "roofline":
        from repro.experiments import roofline_sweep

        return roofline_sweep.run(scale).render()
    raise KeyError(exp_id)


def _run_one(exp_id: str, scale, telemetry_dir: Path | None) -> str:
    """Run one experiment, optionally under a telemetry session that
    exports ``run.json`` / ``events.jsonl`` / ``trace.json``.

    A :class:`~repro.experiments.runner.SweepFailure` propagates, but is
    first recorded in the artifact as ``status: "partial"`` with the
    failed cells listed under ``failures``.
    """
    if telemetry_dir is None:
        return _render(exp_id, scale)

    from repro.experiments.runner import SweepFailure
    from repro.obs import export_session, span, telemetry_session

    t0 = time.perf_counter()
    status = "ok"
    failures: list[dict[str, object]] | None = None
    with telemetry_session() as tel:
        tel.meta["argv_experiment"] = exp_id
        try:
            with span("experiment", id=exp_id, scale=scale.name):
                output = _render(exp_id, scale)
        except SweepFailure as exc:
            status = "partial"
            failures = exc.failure_payloads()
            raise
        except Exception:
            status = "failed"
            raise
        finally:
            paths = export_session(
                tel,
                telemetry_dir,
                experiment=exp_id,
                scale=scale.name,
                wall_seconds=time.perf_counter() - t0,
                status=status,
                failures=failures,
            )
            print(f"[{exp_id}] telemetry: {paths['run']}", file=sys.stderr)
    return output


def _cache_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent sweep result cache.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else "
             "~/.cache/repro/sweeps)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.cache import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        print(cache.stats().render())
    else:
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
    return 0


def _bench_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the codec kernels (both REPRO_KERNELS "
                    "backends) and an end-to-end fig3 slice.",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE.json",
        default=None,
        help="compare speedups against a baseline artifact; exit 4 on "
             "any regression beyond the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional speedup drop before a comparison counts "
             "as a regression (default 0.25)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="artifact path (default: BENCH_<rev>.json in the cwd)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        metavar="N",
        help="kernel repetitions per backend; best-of-N is reported",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller e2e slice, single repetitions (smoke mode)",
    )
    args = parser.parse_args(argv)

    from repro.bench import compare_bench, load_bench, render_bench, run_bench, write_bench

    payload = run_bench(reps=args.reps, quick=args.quick)
    path = write_bench(payload, args.output)
    print(render_bench(payload))
    print(f"\nwrote {path}")

    if args.compare is None:
        return 0
    try:
        baseline = load_bench(args.compare)
    except (OSError, ValueError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 1
    report, regressions = compare_bench(
        payload, baseline, threshold=args.threshold
    )
    print()
    print(report)
    return 4 if regressions else 0


def _list_main() -> int:
    width = max(len(i) for i in EXPERIMENT_IDS)
    for exp_id in EXPERIMENT_IDS:
        print(f"{exp_id.ljust(width)}  {EXPERIMENT_DESCRIPTIONS[exp_id]}")
    return 0


def _report_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render or diff telemetry run.json artifacts.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="run.json",
        help="one artifact to render, or two with --diff",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="compare two artifacts metric by metric",
    )
    args = parser.parse_args(argv)

    from repro.obs import diff_runs, load_run, render_run

    try:
        if args.diff:
            if len(args.artifacts) != 2:
                parser.error("--diff needs exactly two run.json paths")
            print(diff_runs(load_run(args.artifacts[0]),
                            load_run(args.artifacts[1])))
        else:
            for i, path in enumerate(args.artifacts):
                if i:
                    print()
                print(render_run(load_run(path)))
    except (OSError, ValueError) as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # `list` and `report` are subcommands with their own options; the
    # default command (run an experiment) keeps its historical flat form.
    if argv[:1] == ["list"]:
        return _list_main()
    if argv[:1] == ["report"]:
        return _report_main(argv[1:])
    if argv[:1] == ["cache"]:
        return _cache_main(argv[1:])
    if argv[:1] == ["bench"]:
        return _bench_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        epilog="Subcommands: `repro list` enumerates experiment ids; "
               "`repro report <run.json> [--diff]` renders/diffs "
               "telemetry artifacts; `repro cache {stats,clear}` "
               "inspects/clears the persistent result cache; "
               "`repro bench [--compare BASELINE.json]` benchmarks the "
               "codec kernels and the fig3 slice.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENT_IDS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="proxy sizing: quick (seconds-minutes), medium, full (hours)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT_DIR",
        default=None,
        help="write run.json / events.jsonl / trace.json telemetry "
             "artifacts into OUT_DIR (per-experiment subdirs under `all`)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard sweeps across N worker processes "
             "(default: $REPRO_JOBS, else 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist sweep results under DIR so repeat runs are "
             "near-free (default: $REPRO_CACHE_DIR, else no persistent "
             "cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache even if "
             "$REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore cells completed by a previous interrupted run from "
             "its checkpoint manifest and compute only the missing ones "
             "(default: $REPRO_RESUME)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="where sweep checkpoint manifests live (default: "
             "$REPRO_CHECKPOINT_DIR, else checkpoints/ inside the "
             "persistent cache)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        help="inject deterministic faults, e.g. "
             "'sweep.compute,at=3,raise=InjectedFault;worker.task,at=5,kill' "
             "(default: $REPRO_FAULT_PLAN)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise experiment failures with the full traceback",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    out_root = Path(args.telemetry) if args.telemetry else None

    from repro import resilience
    from repro.experiments import parallel as engine
    from repro.experiments.runner import SweepFailure

    engine.configure(
        jobs=args.jobs,
        cache_dir=False if args.no_cache else args.cache_dir,
    )
    try:
        resilience.configure(
            fault_plan=args.fault_plan,
            resume=True if args.resume else None,
            checkpoint_dir=args.checkpoint_dir,
        )
    except ValueError as exc:
        parser.error(f"--fault-plan: {exc}")

    ids = list(EXPERIMENT_IDS) if args.experiment == "all" else [args.experiment]
    succeeded: list[str] = []
    for exp_id in ids:
        out_dir = None
        if out_root is not None:
            out_dir = out_root / exp_id if len(ids) > 1 else out_root
        t0 = time.perf_counter()
        try:
            output = _run_one(exp_id, scale, out_dir)
        except SweepFailure as exc:
            # Every computable cell completed and was stored before this
            # raised; report the stragglers and exit partial (code 3).
            print(f"[{exp_id}] PARTIAL: {exc}", file=sys.stderr)
            for failure in exc.failures:
                print(
                    f"[{exp_id}]   failed cell {failure.video} "
                    f"crf={failure.crf} refs={failure.refs} "
                    f"preset={failure.preset}: {failure.error}: "
                    f"{failure.message} (after {failure.attempts} attempts)",
                    file=sys.stderr,
                )
            print(
                f"[{exp_id}] completed cells are checkpointed; re-run with "
                "--resume to retry only the failed ones",
                file=sys.stderr,
            )
            if args.debug:
                raise
            return 3
        except Exception as exc:  # surface which experiment failed
            if args.debug:
                raise
            print(f"[{exp_id}] FAILED: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            if succeeded:
                print(
                    f"[{exp_id}] experiments completed before the failure: "
                    + ", ".join(succeeded),
                    file=sys.stderr,
                )
            print("(re-run with --debug for the full traceback)",
                  file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - t0
        print(output)
        print(f"\n[{exp_id} done in {elapsed:.1f}s at scale={scale.name}]\n")
        succeeded.append(exp_id)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
