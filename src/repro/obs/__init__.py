"""Telemetry subsystem: spans, metrics, and machine-readable run artifacts.

The observability layer for the encode → simulate → schedule pipeline.
Three pieces:

- :mod:`repro.obs.spans` — nested wall-clock spans with attributes;
- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
- :mod:`repro.obs.export` — JSONL event stream, Chrome trace, and the
  validated ``run.json`` artifact (plus rendering/diffing for
  ``repro report``).

Instrumented code uses only the cheap front-door helpers re-exported
here (:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`,
:func:`current`, :func:`enabled`); they no-op when no
:func:`telemetry_session` is active, which is the default. The CLI's
``--telemetry OUT_DIR`` flag opens a session around each experiment and
exports its artifacts — see the README's "Telemetry & run artifacts"
section for the schema.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.session import (
    Telemetry,
    current,
    enabled,
    inc,
    merge_worker_metrics,
    observe,
    reset_for_subprocess,
    set_gauge,
    span,
    telemetry_session,
)
from repro.obs.spans import SpanRecord, SpanRecorder

#: Exporter symbols resolved lazily (PEP 562): the hot modules import
#: `repro.obs.session` at startup, and that must not drag in the
#: exporter's subprocess/json machinery on the untelemetered path.
_EXPORT_SYMBOLS = frozenset({
    "RUN_SCHEMA",
    "SCHEMA_VERSION",
    "build_run_artifact",
    "chrome_trace",
    "diff_runs",
    "export_session",
    "load_run",
    "read_events_jsonl",
    "render_run",
    "validate_run",
    "write_events_jsonl",
    "git_revision",
})


def __getattr__(name: str):
    if name in _EXPORT_SYMBOLS:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "RUN_SCHEMA",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanRecorder",
    "Telemetry",
    "build_run_artifact",
    "chrome_trace",
    "current",
    "diff_runs",
    "enabled",
    "export_session",
    "inc",
    "load_run",
    "merge_worker_metrics",
    "observe",
    "read_events_jsonl",
    "render_run",
    "reset_for_subprocess",
    "set_gauge",
    "span",
    "telemetry_session",
    "validate_run",
    "write_events_jsonl",
]
