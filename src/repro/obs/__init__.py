"""Telemetry subsystem: traces, metrics, SLOs, and run artifacts.

The observability layer for the encode → simulate → schedule pipeline
and the job service on top of it. Five pieces:

- :mod:`repro.obs.spans` — nested wall-clock spans with attributes,
  plus the :class:`~repro.obs.spans.TraceContext` that threads a trace
  across process boundaries (worker span trees are re-parented into the
  parent session on merge);
- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  all optionally labeled (Prometheus-style series);
- :mod:`repro.obs.slo` — declarative service-level objectives evaluated
  against live registries or exported ``run.json`` metrics;
- :mod:`repro.obs.expose` — Prometheus text rendering and the interval
  snapshotter behind ``repro serve --metrics-out``;
- :mod:`repro.obs.export` — JSONL event stream, Chrome trace, and the
  validated ``run.json`` artifact (plus rendering/diffing/timelines for
  ``repro report``).

Instrumented code uses only the cheap front-door helpers re-exported
here (:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`,
:func:`current`, :func:`enabled`); they no-op when no
:func:`telemetry_session` is active, which is the default. The CLI's
``--telemetry OUT_DIR`` flag opens a session around each experiment and
exports its artifacts — see the README's "Telemetry & run artifacts"
section for the schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
    latency_buckets,
    parse_label_key,
)
from repro.obs.session import (
    NestedSessionError,
    Telemetry,
    current,
    current_trace_context,
    enabled,
    inc,
    merge_worker_metrics,
    merge_worker_state,
    observe,
    reset_for_subprocess,
    set_gauge,
    span,
    telemetry_session,
)
from repro.obs.spans import SpanRecord, SpanRecorder, TraceContext

#: Exporter/SLO/exposition symbols resolved lazily (PEP 562): the hot
#: modules import `repro.obs.session` at startup, and that must not drag
#: in the exporter's subprocess/json machinery on the untelemetered path.
_EXPORT_SYMBOLS = frozenset({
    "RUN_SCHEMA",
    "SCHEMA_VERSION",
    "build_run_artifact",
    "chrome_trace",
    "diff_runs",
    "export_session",
    "load_run",
    "read_events_jsonl",
    "render_matrix",
    "render_run",
    "render_timeline",
    "render_trend",
    "validate_run",
    "write_events_jsonl",
    "git_revision",
})

_SLO_SYMBOLS = frozenset({
    "SloObjective",
    "SloReport",
    "SloSpec",
    "evaluate_slo",
    "load_slo_spec",
})

_EXPOSE_SYMBOLS = frozenset({
    "MetricsSnapshotter",
    "render_prometheus",
})


def __getattr__(name: str):
    if name in _EXPORT_SYMBOLS:
        from repro.obs import export

        return getattr(export, name)
    if name in _SLO_SYMBOLS:
        from repro.obs import slo

        return getattr(slo, name)
    if name in _EXPOSE_SYMBOLS:
        from repro.obs import expose

        return getattr(expose, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "RUN_SCHEMA",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "NestedSessionError",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "SpanRecord",
    "SpanRecorder",
    "Telemetry",
    "TraceContext",
    "build_run_artifact",
    "chrome_trace",
    "current",
    "current_trace_context",
    "diff_runs",
    "enabled",
    "evaluate_slo",
    "export_session",
    "inc",
    "label_key",
    "latency_buckets",
    "load_run",
    "load_slo_spec",
    "merge_worker_metrics",
    "merge_worker_state",
    "observe",
    "parse_label_key",
    "read_events_jsonl",
    "render_matrix",
    "render_prometheus",
    "render_run",
    "render_timeline",
    "render_trend",
    "reset_for_subprocess",
    "set_gauge",
    "span",
    "telemetry_session",
    "validate_run",
    "write_events_jsonl",
]
