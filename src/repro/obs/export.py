"""Exporters: JSONL event streams, ``run.json`` artifacts, Chrome traces.

One telemetry session produces three machine-readable artifacts:

``events.jsonl``
    One JSON object per closed span — the raw event stream, grep- and
    stream-friendly.
``trace.json``
    The span tree in Chrome trace-event format (``"X"`` complete
    events); load it at ``chrome://tracing`` or https://ui.perfetto.dev.
``run.json``
    The single-file summary of a run, validated against
    :data:`RUN_SCHEMA`: experiment id, scale, git revision, wall time,
    every metric in the registry, a Top-down summary, and per-span-name
    totals. This is the artifact the ``repro report`` subcommand renders
    and diffs, and the unit the benchmark trajectory tracks.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from repro._util import format_table
from repro.obs.metrics import parse_label_key
from repro.obs.session import Telemetry
from repro.obs.spans import SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "RUN_SCHEMA",
    "chrome_trace",
    "build_run_artifact",
    "validate_run",
    "load_run",
    "export_session",
    "write_events_jsonl",
    "read_events_jsonl",
    "render_run",
    "render_timeline",
    "render_matrix",
    "render_trend",
    "diff_runs",
    "git_revision",
]

SCHEMA_VERSION = 1

#: ``run.json`` top-level schema: field name -> (required, type(s), doc).
RUN_SCHEMA: dict[str, tuple[bool, tuple[type, ...], str]] = {
    "schema_version": (True, (int,), "artifact schema version (currently 1)"),
    "experiment": (True, (str,), "experiment id, e.g. 'fig3'"),
    "scale": (True, (str,), "proxy scale name: quick | medium | full"),
    "status": (True, (str,), "'ok', 'partial', or 'failed'"),
    "git_rev": (True, (str,), "short git revision ('unknown' outside a checkout)"),
    "created_unix": (True, (int, float), "artifact creation time (epoch seconds)"),
    "wall_seconds": (True, (int, float), "experiment wall-clock duration"),
    "metrics": (True, (dict,), "metrics registry snapshot: name -> scalar "
                               "(counter/gauge) or summary dict (histogram)"),
    "topdown": (True, (dict,), "mean Top-down slot percentages over the run's "
                               "profiled transcodes (may be empty)"),
    "spans": (True, (dict,), "per-span-name {calls, total_s} totals"),
    "meta": (False, (dict,), "free-form session metadata"),
    "failures": (False, (list,), "per-cell failure summaries of a partial "
                                 "sweep (video, crf, refs, preset, error, "
                                 "attempts)"),
    "slo": (False, (dict,), "evaluated SLO report (spec name, ok, breached "
                            "objectives, per-objective burn rates)"),
    "trace_id": (False, (str,), "the session's trace id (links run.json to "
                                "its events.jsonl / trace.json spans)"),
}


def git_revision() -> str:
    """Short revision of the repo this module lives in, or 'unknown'."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


# ----------------------------------------------------------------------
# Chrome trace + JSONL
# ----------------------------------------------------------------------

def chrome_trace(records: list[SpanRecord]) -> dict[str, object]:
    """Span records as a Chrome trace-event document (complete events).

    Spans carrying a ``job`` attribute land on a per-job thread lane
    (named ``job N`` via thread-name metadata events), so a service
    run's flame graph separates into one complete submit→encode track
    per job; everything else shares lane 0.
    """
    events: list[dict[str, object]] = []
    job_tids: dict[object, int] = {}
    for r in sorted(records, key=lambda r: (r.start_ns, r.depth)):
        job = r.attrs.get("job")
        if job is None:
            tid = 0
        else:
            tid = job_tids.setdefault(job, len(job_tids) + 1)
        events.append(
            {
                "name": r.name,
                "ph": "X",
                "ts": r.start_ns / 1000.0,  # trace-event timestamps are µs
                "dur": r.duration_ns / 1000.0,
                "pid": 1,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in r.attrs.items()},
            }
        )
    meta: list[dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": f"job {job}"},
        }
        for job, tid in job_tids.items()
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def _jsonable(v: object) -> object:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return str(v)


def write_events_jsonl(records: list[SpanRecord], path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for r in records:
            fh.write(json.dumps(r.as_dict(), default=str) + "\n")


def read_events_jsonl(path: str | Path) -> list[dict[str, object]]:
    rows = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# run.json
# ----------------------------------------------------------------------

def build_run_artifact(
    telemetry: Telemetry,
    *,
    experiment: str,
    scale: str,
    wall_seconds: float,
    status: str = "ok",
    failures: list[dict[str, object]] | None = None,
    slo: dict[str, object] | None = None,
) -> dict[str, object]:
    """Assemble the ``run.json`` document from a finished session.

    ``slo``, when given, is an evaluated
    :meth:`repro.obs.slo.SloReport.to_payload` embedded verbatim as the
    artifact's ``slo`` section.
    """
    metrics = telemetry.metrics.as_dict()
    topdown = {
        name.split(".", 1)[1]: snap["mean"]
        for name, snap in metrics.items()
        if name.startswith("topdown.") and isinstance(snap, dict)
    }
    artifact: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "scale": scale,
        "status": status,
        "git_rev": git_revision(),
        "created_unix": time.time(),
        "wall_seconds": float(wall_seconds),
        "metrics": metrics,
        "topdown": topdown,
        "spans": telemetry.spans.totals(),
        "meta": {k: _jsonable(v) for k, v in telemetry.meta.items()},
        "trace_id": telemetry.trace_id,
    }
    if failures is not None:
        artifact["failures"] = list(failures)
    if slo is not None:
        artifact["slo"] = dict(slo)
    validate_run(artifact)
    return artifact


def validate_run(obj: object) -> dict[str, object]:
    """Check ``obj`` against :data:`RUN_SCHEMA`; raise ``ValueError`` if bad."""
    if not isinstance(obj, dict):
        raise ValueError(f"run artifact must be an object, got {type(obj).__name__}")
    for name, (required, types, _doc) in RUN_SCHEMA.items():
        if name not in obj:
            if required:
                raise ValueError(f"run artifact missing required field {name!r}")
            continue
        if not isinstance(obj[name], types):
            expected = "/".join(t.__name__ for t in types)
            raise ValueError(
                f"run artifact field {name!r} must be {expected}, "
                f"got {type(obj[name]).__name__}"
            )
    unknown = set(obj) - set(RUN_SCHEMA)
    if unknown:
        raise ValueError(f"run artifact has unknown fields: {sorted(unknown)}")
    if obj["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {obj['schema_version']!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return obj


def load_run(path: str | Path) -> dict[str, object]:
    with open(path, encoding="utf-8") as fh:
        return validate_run(json.load(fh))


def export_session(
    telemetry: Telemetry,
    out_dir: str | Path,
    *,
    experiment: str,
    scale: str,
    wall_seconds: float,
    status: str = "ok",
    failures: list[dict[str, object]] | None = None,
    slo: dict[str, object] | None = None,
) -> dict[str, Path]:
    """Write run.json + events.jsonl + trace.json into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    artifact = build_run_artifact(
        telemetry,
        experiment=experiment,
        scale=scale,
        wall_seconds=wall_seconds,
        status=status,
        failures=failures,
        slo=slo,
    )
    paths = {
        "run": out / "run.json",
        "events": out / "events.jsonl",
        "trace": out / "trace.json",
    }
    with open(paths["run"], "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    write_events_jsonl(telemetry.spans.finished, paths["events"])
    with open(paths["trace"], "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(telemetry.spans.finished), fh)
    return paths


# ----------------------------------------------------------------------
# Rendering + diffing (the `repro report` subcommand)
# ----------------------------------------------------------------------

def _flatten_metrics(artifact: dict[str, object]) -> dict[str, float]:
    """Scalar view of a run's metrics: histograms contribute their
    mean/count, counters and gauges their value."""
    flat: dict[str, float] = {}
    for name, snap in artifact["metrics"].items():  # type: ignore[union-attr]
        if isinstance(snap, dict):
            flat[f"{name}.mean"] = float(snap.get("mean", 0.0))
            flat[f"{name}.count"] = float(snap.get("count", 0.0))
        else:
            flat[name] = float(snap)
    flat["wall_seconds"] = float(artifact["wall_seconds"])  # type: ignore[arg-type]
    return flat


def render_run(artifact: dict[str, object]) -> str:
    """Human-readable view of one ``run.json``."""
    head = (
        f"run: {artifact['experiment']} @ scale={artifact['scale']} "
        f"[{artifact['status']}]\n"
        f"git={artifact['git_rev']}  wall={artifact['wall_seconds']:.2f}s  "
        f"schema=v{artifact['schema_version']}"
    )
    parts = [head]
    failures = artifact.get("failures") or []
    if failures:
        rows = [
            [f.get("video", "?"), f.get("crf", "?"), f.get("refs", "?"),
             f.get("preset", "?"), f.get("error", "?"), f.get("attempts", "?")]
            for f in failures
        ]
        parts.append("\nfailed cells:\n"
                     + format_table(["video", "crf", "refs", "preset",
                                     "error", "attempts"], rows))
    topdown = artifact.get("topdown") or {}
    if topdown:
        rows = [[k, v] for k, v in sorted(topdown.items())]
        parts.append("\ntopdown (mean % of slots):\n"
                     + format_table(["slot", "%"], rows, floatfmt=".2f"))
    meta = artifact.get("meta")
    loadtest = meta.get("loadtest") if isinstance(meta, dict) else None
    if isinstance(loadtest, dict):
        parts.append("\n" + _render_loadtest_section(loadtest))
    fleet_compare = (
        meta.get("fleet_compare") if isinstance(meta, dict) else None
    )
    if isinstance(fleet_compare, dict):
        parts.append("\n" + _render_fleet_compare_section(fleet_compare))
    latency = _stage_latency_rows(artifact)
    if latency:
        parts.append("\nstage latency (per config):\n"
                     + format_table(
                         ["stage", "config", "count", "p50 s", "p90 s",
                          "p99 s"],
                         latency, floatfmt=".4g"))
    slo = artifact.get("slo")
    if isinstance(slo, dict):
        parts.append("\nslo:\n" + _render_slo_section(slo))
    flat = _flatten_metrics(artifact)
    rows = [[k, v] for k, v in sorted(flat.items())]
    parts.append("\nmetrics:\n" + format_table(["metric", "value"], rows,
                                               floatfmt=".4g"))
    spans = artifact.get("spans") or {}
    if spans:
        rows = [[name, agg["calls"], agg["total_s"]]
                for name, agg in sorted(spans.items())]
        parts.append("\nspans:\n"
                     + format_table(["span", "calls", "total s"], rows,
                                    floatfmt=".4g"))
    return "\n".join(parts)


def _stage_latency_rows(artifact: dict[str, object]) -> list[list[object]]:
    """Rows for the per-config stage-latency table: every labeled
    histogram series carrying a ``stage`` label, grouped by stage then by
    the remaining labels (config, policy, ...)."""
    rows: list[list[object]] = []
    for key, snap in sorted(artifact["metrics"].items()):  # type: ignore[union-attr]
        if not isinstance(snap, dict) or "{" not in key:
            continue
        _name, labels = parse_label_key(key)
        stage = labels.pop("stage", None)
        if stage is None:
            continue
        config = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rows.append([
            stage, config or "-", snap.get("count", 0),
            snap.get("p50", 0.0), snap.get("p90", 0.0),
            snap.get("p99", 0.0),
        ])
    return rows


def _render_loadtest_section(loadtest: dict[str, object]) -> str:
    """The offered-rate vs. achieved-throughput/latency table from a
    load-test artifact's ``meta.loadtest`` payload."""
    spec = loadtest.get("spec") or {}
    head = (
        f"loadtest: {spec.get('arrivals', '?')} arrivals, "
        f"mix={spec.get('mix', '?')}, "
        f"duration={spec.get('duration_s', '?')}s, "
        f"seed={spec.get('seed', '?')}, "
        f"{'open' if spec.get('open_loop', True) else 'closed'} loop"
    )
    rows = [
        [leg.get("rate", 0.0), leg.get("achieved_rps", 0.0),
         leg.get("offered", 0), leg.get("admitted", 0),
         leg.get("shed", 0), leg.get("completed", 0),
         leg.get("failed", 0),
         leg.get("queue_wait_p50_s", 0.0), leg.get("queue_wait_p99_s", 0.0),
         leg.get("e2e_p50_s", 0.0), leg.get("e2e_p99_s", 0.0)]
        for leg in loadtest.get("legs") or []
    ]
    table = format_table(
        ["offered/s", "achieved/s", "offered", "admitted", "shed", "done",
         "failed", "wait p50", "wait p99", "e2e p50", "e2e p99"],
        rows, floatfmt=".4g",
    )
    return f"{head}\n{table}"


def _render_fleet_compare_section(fc: dict[str, object]) -> str:
    """The per-fleet cost table from an artifact's ``meta.fleet_compare``
    payload: throughput per provisioned dollar, p99 end-to-end latency,
    and cost per completed job, best throughput/$ first."""
    head = (
        f"fleet-compare: objective={fc.get('objective', '?')}, "
        f"mix={fc.get('mix', '?')}, jobs={fc.get('count', '?')}, "
        f"seed={fc.get('seed', '?')}"
    )
    if fc.get("deadline_s") is not None:
        head += f", deadline={fc['deadline_s']}s"
    if fc.get("budget_usd") is not None:
        head += f", budget=${fc['budget_usd']}/h"
    fleets = [f for f in fc.get("fleets") or [] if isinstance(f, dict)]
    fleets.sort(key=lambda f: float(f.get("jobs_per_dollar", 0.0)),
                reverse=True)
    rows = [
        [(f.get("fleet") or {}).get("name", "?"), f.get("workers", 0),
         f.get("hourly_usd", 0.0), f.get("completed", 0),
         f.get("failed", 0), f.get("jobs_per_dollar", 0.0),
         f.get("e2e_p99_s", 0.0), f.get("cost_per_completed_usd", 0.0),
         f"{float(f.get('cost_margin_vs_control_pct', 0.0)):+.1f}%"]
        for f in fleets
    ]
    table = format_table(
        ["fleet", "workers", "$/hour", "done", "failed", "jobs/$",
         "e2e p99 s", "$/job", "vs random"],
        rows, floatfmt=".4g",
    )
    return f"{head}\n{table}"


def _render_slo_section(slo: dict[str, object]) -> str:
    """The embedded SLO report as a verdict line plus objective table."""
    verdict = "OK" if slo.get("ok") else (
        "BREACHED: " + ", ".join(str(n) for n in slo.get("breached") or []))
    rows = [
        [obj.get("name", "?"), obj.get("kind", "?"),
         "pass" if obj.get("ok") else "FAIL",
         obj.get("actual", 0.0), obj.get("target", 0.0),
         obj.get("burn_rate", 0.0)]
        for obj in slo.get("objectives") or []
    ]
    table = format_table(
        ["objective", "kind", "verdict", "actual", "target", "burn"],
        rows, floatfmt=".4g")
    return f"spec: {slo.get('spec', '?')}  [{verdict}]\n{table}"


def render_timeline(records: list[dict[str, object]], job: object) -> str:
    """Per-job flame graph in text form, from ``events.jsonl`` rows.

    Selects the spans belonging to ``job`` — those whose ``job``
    attribute matches, plus their ancestors (the submit/round scaffolding
    they hang under) — and renders them as a depth-indented tree with
    millisecond offsets relative to the earliest selected span.
    """
    job_str = str(job)
    spans = [r for r in records if r.get("kind", "span") == "span"]
    by_id = {int(r["span_id"]): r for r in spans}  # type: ignore[arg-type]
    selected: set[int] = set()
    for r in spans:
        attrs = r.get("attrs") or {}
        if str(attrs.get("job")) != job_str:  # type: ignore[union-attr]
            continue
        sid: int | None = int(r["span_id"])  # type: ignore[arg-type]
        while sid is not None and sid not in selected:
            selected.add(sid)
            parent = by_id[sid].get("parent_id")
            sid = int(parent) if parent is not None else None
            if sid is not None and sid not in by_id:
                break
    if not selected:
        return f"no spans found for job {job_str}"
    chosen = sorted(
        (by_id[sid] for sid in selected),
        key=lambda r: (int(r["start_ns"]), int(r.get("depth", 0))),  # type: ignore[arg-type]
    )
    t0 = min(int(r["start_ns"]) for r in chosen)  # type: ignore[arg-type]
    lines = [f"timeline for job {job_str} ({len(chosen)} spans):"]
    for r in chosen:
        depth = int(r.get("depth", 0))  # type: ignore[arg-type]
        start_ms = (int(r["start_ns"]) - t0) / 1e6  # type: ignore[arg-type]
        dur_ms = (int(r["end_ns"]) - int(r["start_ns"])) / 1e6  # type: ignore[arg-type]
        attrs = r.get("attrs") or {}
        extras = " ".join(
            f"{k}={v}" for k, v in sorted(attrs.items())  # type: ignore[union-attr]
            if k not in ("job",) and isinstance(v, (str, int, float, bool))
        )
        tail = f"  [{extras}]" if extras else ""
        lines.append(
            f"  {'  ' * depth}{r['name']:<24s} "
            f"+{start_ms:9.3f}ms  {dur_ms:9.3f}ms{tail}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Benchmark-matrix / trend rendering (the `repro bench` subcommand)
# ----------------------------------------------------------------------

def render_matrix(payload: dict[str, object]) -> str:
    """Benchmark-status table for one matrix artifact.

    One row per cell: the axis values, status, wall time, and the union
    of the cells' numeric metrics as columns (``-`` where a cell did not
    record a metric — legs differ in what they measure).
    """
    cells = [c for c in payload.get("cells") or [] if isinstance(c, dict)]
    failed = [c for c in cells if c.get("status") != "ok"]
    head = (
        f"matrix: {payload.get('name', '?')} leg={payload.get('leg', '?')} "
        f"rev={payload.get('rev', '?')}"
        + ("+dirty" if payload.get("dirty") else "")
        + (" (quick)" if payload.get("quick") else "")
        + f" — {len(cells)} cells, {len(cells) - len(failed)} ok, "
        f"{len(failed)} failed"
    )
    axes = payload.get("axes") or {}
    axis_names = list(axes)
    lines = [head]
    for name in axis_names:
        lines.append(f"  axis {name}: "
                     + ", ".join(str(v) for v in axes[name]))
    metric_names = sorted(
        {m for c in cells for m in (c.get("metrics") or {})}
    )
    rows = []
    for c in cells:
        values = c.get("values") or {}
        metrics = c.get("metrics") or {}
        row: list[object] = [values.get(n, "-") for n in axis_names]
        row.append(c.get("status", "?"))
        row.append(c.get("wall_s", 0.0))
        row.extend(
            format(metrics[m], ".4g") if m in metrics else "-"
            for m in metric_names
        )
        rows.append(row)
    lines.append(
        format_table(
            axis_names + ["status", "wall s"] + metric_names,
            rows, floatfmt=".3g",
        )
    )
    if failed:
        lines.append("")
        for c in failed:
            lines.append(f"  FAILED {c.get('id')}: {c.get('error')}")
    return "\n".join(lines)


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float | None]) -> str:
    """Unicode sparkline; ``·`` marks gaps (series absent in a run)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    chars = []
    for v in values:
        if v is None:
            chars.append("·")
        elif hi == lo:
            chars.append(_SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2])
        else:
            idx = round((v - lo) / (hi - lo) * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[idx])
    return "".join(chars)


def render_trend(trend: dict[str, object]) -> str:
    """Trend table for a history payload (``repro bench --history``).

    One row per tracked series: run count, sparkline over the ordered
    history, first/best/last values, the rolling-window median, and the
    verdict (``DRIFT`` when the median of the last K runs fell more than
    the drift fraction below the history's best).
    """
    entries = [e for e in trend.get("entries") or [] if isinstance(e, dict)]
    series: dict[str, list[float | None]] = trend.get("series") or {}  # type: ignore[assignment]
    verdicts = [v for v in trend.get("verdicts") or [] if isinstance(v, dict)]
    window = trend.get("window", "?")
    drift = float(trend.get("drift", 0.0))
    head = (
        f"bench history: {len(entries)} artifacts, "
        f"{len(series)} tracked series — flag when median(last {window}) "
        f"drops >{drift:.0%} below the history best"
    )
    revs = " → ".join(
        str(e.get("rev", "?")) + ("+dirty" if e.get("dirty") else "")
        for e in entries
    )
    lines = [head, f"revisions: {revs}"]
    by_name = {str(v.get("series")): v for v in verdicts}
    rows = []
    for name in sorted(series):
        values = series[name]
        present = [v for v in values if v is not None]
        v = by_name.get(name, {})
        status = str(v.get("status", "?"))
        rows.append([
            name,
            len(present),
            _sparkline(values),
            format(present[0], ".3g") if present else "-",
            format(float(v.get("best", 0.0)), ".3g"),
            format(float(v.get("last", 0.0)), ".3g"),
            format(float(v.get("median_recent", 0.0)), ".3g"),
            f"{-float(v.get('drop_frac', 0.0)):+.1%}",
            "DRIFT" if status == "drift" else status,
        ])
    lines.append(
        format_table(
            ["series", "n", "trend", "first", "best", "last",
             f"med(last {window})", "vs best", "verdict"],
            rows,
        )
    )
    drifting = [str(v.get("series")) for v in verdicts
                if v.get("status") == "drift"]
    lines.append("")
    if drifting:
        lines.append(
            f"{len(drifting)} series drifting: " + ", ".join(drifting)
        )
    else:
        lines.append("no drift beyond the rolling-window threshold")
    return "\n".join(lines)


def diff_runs(a: dict[str, object], b: dict[str, object]) -> str:
    """Metric-by-metric comparison of two run artifacts."""
    head = (
        f"diff: {a['experiment']}@{a['scale']} ({a['git_rev']})  vs  "
        f"{b['experiment']}@{b['scale']} ({b['git_rev']})"
    )
    fa, fb = _flatten_metrics(a), _flatten_metrics(b)
    rows = []
    for name in sorted(set(fa) | set(fb)):
        va, vb = fa.get(name), fb.get(name)
        if va is None or vb is None:
            rows.append([name,
                         "-" if va is None else format(va, ".4g"),
                         "-" if vb is None else format(vb, ".4g"),
                         "(only one run)", ""])
            continue
        delta = vb - va
        pct = f"{delta / va * 100.0:+.2f}%" if va else ("+inf%" if delta else "0%")
        rows.append([name, format(va, ".4g"), format(vb, ".4g"),
                     format(delta, "+.4g"), pct])
    table = format_table(["metric", "a", "b", "delta", "delta %"], rows)
    parts = [head, table]
    la, lb = _stage_latency_rows(a), _stage_latency_rows(b)
    if la or lb:
        index_a = {(r[0], r[1]): r for r in la}
        index_b = {(r[0], r[1]): r for r in lb}
        rows = []
        for key in sorted(set(index_a) | set(index_b)):
            ra, rb = index_a.get(key), index_b.get(key)
            p99a = format(ra[5], ".4g") if ra else "-"
            p99b = format(rb[5], ".4g") if rb else "-"
            delta = (format(rb[5] - ra[5], "+.4g")
                     if ra and rb else "(only one run)")
            rows.append([key[0], key[1], p99a, p99b, delta])
        parts.append("stage latency p99 (per config):\n"
                     + format_table(["stage", "config", "a", "b", "delta"],
                                    rows))
    def _fleet_index(artifact: dict[str, object]) -> dict[str, dict]:
        meta = artifact.get("meta")
        fc = meta.get("fleet_compare") if isinstance(meta, dict) else None
        if not isinstance(fc, dict):
            return {}
        return {
            (f.get("fleet") or {}).get("name", "?"): f
            for f in fc.get("fleets") or []
            if isinstance(f, dict)
        }

    fca, fcb = _fleet_index(a), _fleet_index(b)
    if fca or fcb:
        rows = []
        for name in sorted(set(fca) | set(fcb)):
            ra, rb = fca.get(name), fcb.get(name)
            jpd_a = float(ra.get("jobs_per_dollar", 0.0)) if ra else None
            jpd_b = float(rb.get("jobs_per_dollar", 0.0)) if rb else None
            if jpd_a is None or jpd_b is None:
                delta = "(only one run)"
            else:
                delta = format(jpd_b - jpd_a, "+.4g")
                if jpd_a:
                    delta += f" ({(jpd_b - jpd_a) / jpd_a * 100.0:+.2f}%)"
            rows.append([
                name,
                "-" if jpd_a is None else format(jpd_a, ".4g"),
                "-" if jpd_b is None else format(jpd_b, ".4g"),
                delta,
            ])
        parts.append("fleet-compare throughput/$ (jobs per provisioned "
                     "dollar):\n"
                     + format_table(["fleet", "a", "b", "delta"], rows))
    sa, sb = a.get("slo"), b.get("slo")
    if isinstance(sa, dict) or isinstance(sb, dict):
        objs_a = {o.get("name"): o for o in
                  (sa.get("objectives") if isinstance(sa, dict) else None)
                  or []}
        objs_b = {o.get("name"): o for o in
                  (sb.get("objectives") if isinstance(sb, dict) else None)
                  or []}
        rows = []
        for name in sorted(set(objs_a) | set(objs_b)):
            oa, ob = objs_a.get(name), objs_b.get(name)

            def _cell(o):
                if o is None:
                    return "-"
                return ("pass" if o.get("ok") else "FAIL") \
                    + f" (burn {format(float(o.get('burn_rate', 0.0)), '.3g')})"

            rows.append([name, _cell(oa), _cell(ob)])
        parts.append("slo objectives:\n"
                     + format_table(["objective", "a", "b"], rows))
    return "\n".join(parts)
