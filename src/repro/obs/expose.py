"""Live exposition: Prometheus text rendering + interval snapshots.

Two pieces turn the in-process :class:`~repro.obs.metrics.MetricsRegistry`
into something an external scrape/alerting stack can consume:

- :func:`render_prometheus` — the registry in Prometheus text exposition
  format (version 0.0.4): counters as ``*_total``, gauges verbatim,
  histograms as cumulative ``*_bucket{le=...}`` series plus ``*_sum`` /
  ``*_count``, with metric labels carried through. Metric names are
  sanitized (``service.queue_depth`` → ``repro_service_queue_depth``).
- :class:`MetricsSnapshotter` — a background thread that atomically
  writes ``metrics.prom`` (and, with an SLO spec, ``slo.json``) into a
  directory at a configurable interval, appending one line per tick to
  ``snapshots.jsonl``. ``repro serve --metrics-out DIR`` wraps the
  service pass in one of these, which is what the CI smoke scrapes.

The snapshotter reads the registry while the service thread writes it;
a tick that races a registry mutation is skipped and retried at the next
interval (the final flush on ``__exit__`` runs after the run finished,
so the last snapshot is always consistent and always written).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, parse_label_key

__all__ = [
    "MetricsSnapshotter",
    "render_prometheus",
    "sanitize_metric_name",
]

#: Prefix every exposed metric name, per Prometheus naming conventions.
_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto a legal Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return _PREFIX + sanitized


def _fmt_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_NAME_RE.sub("_", k)}="{_escape(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(v: float) -> str:
    f = float(v)
    return repr(int(f)) if f.is_integer() else repr(f)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    state = registry.export_state()
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key in sorted(state["counters"]):  # type: ignore[index]
        name, labels = parse_label_key(key)
        family = sanitize_metric_name(name) + "_total"
        header(family, "counter")
        lines.append(
            f"{family}{_fmt_labels(labels)} "
            f"{_fmt_value(state['counters'][key])}"  # type: ignore[index]
        )
    for key in sorted(state["gauges"]):  # type: ignore[index]
        name, labels = parse_label_key(key)
        family = sanitize_metric_name(name)
        header(family, "gauge")
        lines.append(
            f"{family}{_fmt_labels(labels)} "
            f"{_fmt_value(state['gauges'][key])}"  # type: ignore[index]
        )
    for key in sorted(state["histograms"]):  # type: ignore[index]
        hist = state["histograms"][key]  # type: ignore[index]
        name, labels = parse_label_key(key)
        family = sanitize_metric_name(name)
        header(family, "histogram")
        cumulative = 0.0
        for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += count
            le = _fmt_labels(labels, f'le="{bound:g}"')
            lines.append(f"{family}_bucket{le} {_fmt_value(cumulative)}")
        le = _fmt_labels(labels, 'le="+Inf"')
        lines.append(f"{family}_bucket{le} {_fmt_value(hist['count'])}")
        lines.append(
            f"{family}_sum{_fmt_labels(labels)} {_fmt_value(hist['sum'])}"
        )
        lines.append(
            f"{family}_count{_fmt_labels(labels)} {_fmt_value(hist['count'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _write_atomic(path: Path, content: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class MetricsSnapshotter:
    """Periodically snapshot a registry (and SLO state) into a directory.

    Use as a context manager around the instrumented work::

        with MetricsSnapshotter(tel.metrics, "out/metrics",
                                interval_s=5.0, slo_spec=spec):
            run_service(...)

    Every ``interval_s`` seconds — and once more on exit — the thread
    writes ``metrics.prom`` (Prometheus text format) and, when a spec is
    given, ``slo.json`` (the evaluated :class:`~repro.obs.slo.SloReport`
    payload), both atomically, and appends a summary row to
    ``snapshots.jsonl``. ``interval_s <= 0`` disables the thread; only
    the exit snapshot is written.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        out_dir: str | Path,
        *,
        interval_s: float = 30.0,
        slo_spec=None,
    ) -> None:
        self.registry = registry
        self.out_dir = Path(out_dir)
        self.interval_s = float(interval_s)
        self.slo_spec = slo_spec
        self.ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- one snapshot ---------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Write one snapshot now; returns the summary row appended to
        ``snapshots.jsonl``."""
        _write_atomic(self.out_dir / "metrics.prom",
                      render_prometheus(self.registry))
        row: dict[str, object] = {
            "seq": self.ticks,
            "unix": time.time(),
            "metrics": len(self.registry),
        }
        if self.slo_spec is not None:
            from repro.obs.slo import evaluate_slo

            report = evaluate_slo(self.slo_spec, self.registry.as_dict())
            _write_atomic(
                self.out_dir / "slo.json",
                json.dumps(report.to_payload(), indent=2, sort_keys=True)
                + "\n",
            )
            row["slo_ok"] = report.ok
            row["breached"] = list(report.breached)
        with open(self.out_dir / "snapshots.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(row) + "\n")
        self.ticks += 1
        return row

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.snapshot()
            except RuntimeError:
                # Raced a registry mutation mid-iteration; the next tick
                # (or the exit flush) will capture a consistent view.
                continue

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "MetricsSnapshotter":
        self.out_dir.mkdir(parents=True, exist_ok=True)
        if self.interval_s > 0:
            self._thread = threading.Thread(
                target=self._run, name="repro-metrics-snapshotter",
                daemon=True,
            )
            self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.snapshot()  # final, consistent flush
        return False
