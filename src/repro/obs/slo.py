"""Declarative SLOs: JSON-declared objectives evaluated against metrics.

An :class:`SloSpec` is a plain-JSON document declaring service level
objectives over the metrics registry — per-stage latency percentile
targets, error-rate ceilings, deadline-miss-rate ceilings::

    {
      "name": "serve-slos",
      "objectives": [
        {"name": "queue-wait-p99", "kind": "latency",
         "metric": "service.stage_latency_s",
         "labels": {"stage": "queue_wait"},
         "percentile": 99, "threshold_s": 0.5},
        {"name": "requeue-rate", "kind": "error_rate",
         "bad": "service.requeues", "total": "service.jobs_submitted",
         "max_rate": 0.03},
        {"name": "deadline-misses", "kind": "deadline_miss_rate",
         "max_rate": 0.01}
      ]
    }

:func:`evaluate_slo` checks a spec against any flat metrics mapping —
``MetricsRegistry.as_dict()`` live, or the ``metrics`` section of a
``run.json`` artifact — so the same spec gates a running service
(``repro serve --slo``) and a finished artifact
(``repro slo check RUN.json --spec SPEC.json``). Latency objectives
match every series of the metric family whose labels are a superset of
the objective's ``labels`` and take the *worst* series (per-series
alerting semantics); empty families pass vacuously.

Each :class:`ObjectiveResult` carries the error-budget view: the burn
rate (actual over target — 1.0 means the budget is exactly spent) and
the budget fraction remaining, which is what the CI smoke asserts goes
negative when an injected crash pushes retry overhead over budget.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro._util import format_table
from repro.obs.metrics import parse_label_key

__all__ = [
    "SLO_KINDS",
    "ObjectiveResult",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "evaluate_slo",
    "load_slo_spec",
]

#: Supported objective kinds.
SLO_KINDS = ("latency", "error_rate", "deadline_miss_rate")

#: Percentiles a run.json histogram snapshot records; specs are limited
#: to these so live and artifact evaluation agree exactly.
_SNAPSHOT_PERCENTILES = (50.0, 90.0, 99.0)

#: Default counter pair for ``deadline_miss_rate`` objectives.
_DEADLINE_BAD = "service.deadline_misses"
_DEADLINE_TOTAL = "service.jobs_with_deadline"

#: Burn-rate ceiling used instead of infinity when the target is zero,
#: so reports stay strict-JSON serializable.
_BURN_CAP = 1e9


@dataclass(frozen=True)
class SloObjective:
    """One declared objective.

    ``latency`` objectives target a histogram family
    (``metric`` + ``labels`` match, ``percentile`` ∈ {50, 90, 99},
    ``threshold_s`` upper bound); ``error_rate`` objectives bound the
    ratio of two counters (``bad`` / ``total`` ≤ ``max_rate``);
    ``deadline_miss_rate`` is an ``error_rate`` over the service's
    deadline counters unless ``bad`` / ``total`` override them.
    """

    name: str
    kind: str
    metric: str | None = None
    labels: dict[str, str] = field(default_factory=dict)
    percentile: float = 99.0
    threshold_s: float | None = None
    bad: str | None = None
    total: str | None = None
    max_rate: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"objective {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {', '.join(SLO_KINDS)}"
            )
        if self.kind == "latency":
            if not self.metric:
                raise ValueError(
                    f"objective {self.name!r}: latency objectives need a "
                    "'metric' (histogram family name)"
                )
            if float(self.percentile) not in _SNAPSHOT_PERCENTILES:
                raise ValueError(
                    f"objective {self.name!r}: percentile must be one of "
                    f"{sorted(int(p) for p in _SNAPSHOT_PERCENTILES)} "
                    "(the percentiles run.json snapshots record), got "
                    f"{self.percentile}"
                )
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    f"objective {self.name!r}: latency objectives need a "
                    "positive 'threshold_s'"
                )
        else:
            if self.max_rate is None or self.max_rate < 0:
                raise ValueError(
                    f"objective {self.name!r}: {self.kind} objectives need "
                    "a non-negative 'max_rate'"
                )
            if self.kind == "error_rate" and not (self.bad and self.total):
                raise ValueError(
                    f"objective {self.name!r}: error_rate objectives need "
                    "'bad' and 'total' counter names"
                )

    # -- serde ---------------------------------------------------------
    def to_payload(self) -> dict[str, object]:
        """Plain-JSON form (inverse of :meth:`from_payload`)."""
        doc: dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.kind == "latency":
            doc["metric"] = self.metric
            if self.labels:
                doc["labels"] = dict(self.labels)
            doc["percentile"] = self.percentile
            doc["threshold_s"] = self.threshold_s
        else:
            if self.bad:
                doc["bad"] = self.bad
            if self.total:
                doc["total"] = self.total
            doc["max_rate"] = self.max_rate
        return doc

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "SloObjective":
        """Build an objective from one spec-file entry; unknown keys are
        rejected so typos fail loudly at load time."""
        known = {"name", "kind", "metric", "labels", "percentile",
                 "threshold_s", "bad", "total", "max_rate"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"objective has unknown fields: {sorted(unknown)}"
            )
        kwargs = dict(payload)
        labels = kwargs.get("labels")
        if labels is not None:
            kwargs["labels"] = {str(k): str(v) for k, v in labels.items()}  # type: ignore[union-attr]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SloSpec:
    """A named set of objectives (one spec file)."""

    name: str
    objectives: tuple[SloObjective, ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError(f"SLO spec {self.name!r} declares no objectives")
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(
                f"SLO spec {self.name!r} has duplicate objective names"
            )

    def to_payload(self) -> dict[str, object]:
        """Plain-JSON form (inverse of :meth:`from_payload`)."""
        return {
            "name": self.name,
            "objectives": [o.to_payload() for o in self.objectives],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "SloSpec":
        """Build a spec from a parsed JSON document."""
        if not isinstance(payload, Mapping):
            raise ValueError("SLO spec must be a JSON object")
        objectives = payload.get("objectives")
        if not isinstance(objectives, list):
            raise ValueError("SLO spec needs an 'objectives' list")
        return cls(
            name=str(payload.get("name", "slo")),
            objectives=tuple(
                SloObjective.from_payload(o) for o in objectives
            ),
        )


def load_slo_spec(path: str | Path) -> SloSpec:
    """Read and validate an SLO spec file."""
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    try:
        return SloSpec.from_payload(doc)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: bad SLO spec: {exc}") from exc


# ----------------------------------------------------------------------
# Evaluation.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ObjectiveResult:
    """One objective's evaluation against one metrics mapping."""

    name: str
    kind: str
    ok: bool
    actual: float            # worst percentile estimate, or the bad-rate
    target: float            # threshold_s or max_rate
    burn_rate: float         # actual / target (1.0 = budget exactly spent)
    budget_remaining: float  # 1 - burn_rate, floored at -BURN_CAP
    detail: str              # which series / counters drove the verdict

    def to_payload(self) -> dict[str, object]:
        """Plain-JSON form (the ``slo.objectives[]`` rows in run.json)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "actual": self.actual,
            "target": self.target,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SloReport:
    """A full spec evaluation: per-objective results plus the verdict."""

    spec_name: str
    results: tuple[ObjectiveResult, ...]

    @property
    def ok(self) -> bool:
        """Whether every objective held."""
        return all(r.ok for r in self.results)

    @property
    def breached(self) -> tuple[str, ...]:
        """Names of the objectives that did not hold."""
        return tuple(r.name for r in self.results if not r.ok)

    def to_payload(self) -> dict[str, object]:
        """The ``slo`` section embedded in run.json."""
        return {
            "spec": self.spec_name,
            "ok": self.ok,
            "breached": list(self.breached),
            "objectives": [r.to_payload() for r in self.results],
        }

    def render(self) -> str:
        """Human-readable table for ``repro slo check`` / ``repro serve``."""
        rows = []
        for r in self.results:
            rows.append([
                r.name, r.kind, "ok" if r.ok else "BREACH",
                format(r.actual, ".4g"), format(r.target, ".4g"),
                format(r.burn_rate, ".3f"),
                format(r.budget_remaining, "+.3f"),
            ])
        table = format_table(
            ["objective", "kind", "verdict", "actual", "target",
             "burn", "budget left"],
            rows,
        )
        verdict = ("all objectives met" if self.ok else
                   f"BREACHED: {', '.join(self.breached)}")
        return f"slo {self.spec_name}: {verdict}\n{table}"


def _burn(actual: float, target: float) -> float:
    if target > 0:
        return min(actual / target, _BURN_CAP)
    return 0.0 if actual <= 0 else _BURN_CAP


def _latency_result(obj: SloObjective,
                    metrics: Mapping[str, object]) -> ObjectiveResult:
    """Worst matching series' p{percentile} against the threshold."""
    pkey = f"p{int(obj.percentile)}"
    worst = 0.0
    worst_series = "(no observations)"
    matched = 0
    for key, snap in metrics.items():
        if not isinstance(snap, Mapping):
            continue
        name, labels = parse_label_key(key)
        if name != obj.metric:
            continue
        if any(labels.get(k) != v for k, v in obj.labels.items()):
            continue
        if not snap.get("count"):
            continue
        matched += 1
        estimate = float(snap.get(pkey, 0.0))
        if estimate >= worst:
            worst = estimate
            worst_series = key
    threshold = float(obj.threshold_s)  # type: ignore[arg-type]
    burn = _burn(worst, threshold)
    return ObjectiveResult(
        name=obj.name,
        kind=obj.kind,
        ok=worst <= threshold,
        actual=worst,
        target=threshold,
        burn_rate=burn,
        budget_remaining=max(1.0 - burn, -_BURN_CAP),
        detail=(f"{pkey} of {matched} series; worst: {worst_series}"
                if matched else "no matching series (vacuous pass)"),
    )


def _scalar(metrics: Mapping[str, object], name: str) -> float:
    value = metrics.get(name, 0.0)
    if isinstance(value, Mapping):  # histogram snapshot: use its count
        return float(value.get("count", 0.0))
    return float(value)  # type: ignore[arg-type]


def _ratio_result(obj: SloObjective,
                  metrics: Mapping[str, object]) -> ObjectiveResult:
    """bad / total counters against the max_rate ceiling."""
    bad_name = obj.bad or _DEADLINE_BAD
    total_name = obj.total or _DEADLINE_TOTAL
    bad = _scalar(metrics, bad_name)
    total = _scalar(metrics, total_name)
    rate = bad / total if total > 0 else 0.0
    target = float(obj.max_rate)  # type: ignore[arg-type]
    burn = _burn(rate, target)
    return ObjectiveResult(
        name=obj.name,
        kind=obj.kind,
        ok=rate <= target,
        actual=rate,
        target=target,
        burn_rate=burn,
        budget_remaining=max(1.0 - burn, -_BURN_CAP),
        detail=(f"{bad_name}={bad:g} / {total_name}={total:g}"
                if total > 0 else
                f"{total_name} is zero (vacuous pass)"),
    )


def evaluate_slo(spec: SloSpec,
                 metrics: Mapping[str, object]) -> SloReport:
    """Evaluate every objective of ``spec`` against ``metrics``.

    ``metrics`` is any flat series-key → value mapping:
    ``MetricsRegistry.as_dict()`` for a live registry, or a run.json
    artifact's ``metrics`` section — both record the same histogram
    percentile estimates, so the verdict is identical either way.
    """
    results = []
    for obj in spec.objectives:
        if obj.kind == "latency":
            results.append(_latency_result(obj, metrics))
        else:
            results.append(_ratio_result(obj, metrics))
    return SloReport(spec_name=spec.name, results=tuple(results))
