"""The telemetry session: one global slot, cheap front-door helpers.

Instrumented code throughout the pipeline calls the module-level helpers
(:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`) without
caring whether telemetry is on. The contract is:

- **disabled (default)**: no session is installed; every helper is a
  single attribute load plus a ``None`` check and returns immediately
  (``span`` returns a shared no-op context manager). Nothing is
  allocated beyond the kwargs dict at the call site, which is why the
  instrumentation sits at frame/window/task granularity rather than
  per-macroblock.
- **enabled**: :func:`telemetry_session` installs a :class:`Telemetry`
  (span recorder + metrics registry) for the duration of a ``with``
  block, and the helpers route into it.

The slot is process-global and sessions do not nest: experiments are
run one at a time by the CLI, and the one-run-one-artifact model is what
makes ``run.json`` comparable across invocations.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanRecorder

__all__ = [
    "Telemetry",
    "telemetry_session",
    "current",
    "enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "merge_worker_metrics",
    "reset_for_subprocess",
]


class Telemetry:
    """One session's telemetry state: span tree + metrics registry."""

    def __init__(self) -> None:
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.meta: dict[str, object] = {}


_current: Telemetry | None = None


def current() -> Telemetry | None:
    """The installed session, or ``None`` when telemetry is disabled."""
    return _current


def enabled() -> bool:
    return _current is not None


@contextmanager
def telemetry_session():
    """Install a fresh :class:`Telemetry` for the duration of the block."""
    global _current
    if _current is not None:
        raise RuntimeError("a telemetry session is already active")
    tel = Telemetry()
    _current = tel
    try:
        yield tel
    finally:
        _current = None


# ----------------------------------------------------------------------
# Front-door helpers (the only API instrumented modules should use).
# ----------------------------------------------------------------------

def span(name: str, **attrs: object):
    """Open a nested wall-clock span (no-op context manager if disabled)."""
    tel = _current
    if tel is None:
        return NULL_SPAN
    return tel.spans.span(name, **attrs)


def inc(name: str, n: float = 1.0) -> None:
    """Increment counter ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.gauge(name).set(value)


def merge_worker_metrics(state: dict[str, object] | None) -> None:
    """Fold a worker process's exported metrics registry state into the
    active session (no-op if disabled or ``state`` is empty).

    The parallel sweep engine runs each worker under its own telemetry
    session, ships ``MetricsRegistry.export_state()`` back with the
    results, and the parent calls this so ``run.json`` aggregates the
    whole fan-out exactly as a serial run would. Worker span trees are
    intentionally dropped — only the parent's wall-clock structure is
    meaningful in the artifact.
    """
    tel = _current
    if tel is not None and state:
        tel.metrics.merge_state(state)


def reset_for_subprocess() -> None:
    """Drop a session inherited across ``fork``.

    Worker processes spawned while a session is active inherit the
    parent's ``_current`` slot; they must clear it before opening their
    own session (sessions do not nest, and the inherited object's state
    would be silently discarded at worker exit anyway).
    """
    global _current
    _current = None
