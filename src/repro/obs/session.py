"""The telemetry session: one global slot, cheap front-door helpers.

Instrumented code throughout the pipeline calls the module-level helpers
(:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`) without
caring whether telemetry is on. The contract is:

- **disabled (default)**: no session is installed; every helper is a
  single attribute load plus a ``None`` check and returns immediately
  (``span`` returns a shared no-op context manager). Nothing is
  allocated beyond the kwargs dict at the call site, which is why the
  instrumentation sits at frame/window/task granularity rather than
  per-macroblock.
- **enabled**: :func:`telemetry_session` installs a :class:`Telemetry`
  (span recorder + metrics registry) for the duration of a ``with``
  block, and the helpers route into it.

The slot is process-global and **sessions do not nest**: experiments are
run one at a time by the CLI, and the one-run-one-artifact model is what
makes ``run.json`` comparable across invocations. A nested
``telemetry_session()`` entry raises :class:`NestedSessionError` rather
than silently shadowing (and discarding) the active session's state;
callers that can run either standalone or inside a larger session reuse
:func:`current` (see ``repro.api.facade.serve``).

Cross-process flow: a parent session exposes its identity via
:func:`current_trace_context`; a worker process clears the inherited
slot (:func:`reset_for_subprocess`), opens its own session *under that
context*, and ships ``Telemetry.export_state()`` back with its results.
The parent folds the whole thing — metrics *and* the worker's span tree,
re-parented under the span that spawned the work — with
:func:`merge_worker_state`. (:func:`merge_worker_metrics` remains as the
metrics-only path for callers that have no span payload.)
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanRecorder, TraceContext

__all__ = [
    "NestedSessionError",
    "Telemetry",
    "telemetry_session",
    "current",
    "current_trace_context",
    "enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "merge_worker_metrics",
    "merge_worker_state",
    "reset_for_subprocess",
]


class NestedSessionError(RuntimeError):
    """Raised when ``telemetry_session()`` is entered while another
    session is active — sessions are process-global and do not nest."""


class Telemetry:
    """One session's telemetry state: span tree + metrics registry."""

    def __init__(self, context: TraceContext | None = None) -> None:
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.meta: dict[str, object] = {}
        self.context = context
        self.trace_id = (context.trace_id if context is not None
                         else uuid.uuid4().hex[:16])

    def export_state(self) -> dict[str, object]:
        """Everything a worker ships back to its parent session: the
        metrics registry state, the finished span tree, and the trace id
        the spans were recorded under (JSON- and pickle-safe)."""
        return {
            "trace_id": self.trace_id,
            "metrics": self.metrics.export_state(),
            "spans": [s.as_dict() for s in self.spans.finished],
        }


_current: Telemetry | None = None


def current() -> Telemetry | None:
    """The installed session, or ``None`` when telemetry is disabled."""
    return _current


def enabled() -> bool:
    return _current is not None


def current_trace_context() -> TraceContext | None:
    """The active session's propagatable identity: its trace id plus the
    innermost open span, ready to hand to a worker process. ``None``
    when telemetry is disabled."""
    tel = _current
    if tel is None:
        return None
    return TraceContext(
        trace_id=tel.trace_id,
        parent_span_id=tel.spans.open_span_id,
    )


@contextmanager
def telemetry_session(context: TraceContext | None = None):
    """Install a fresh :class:`Telemetry` for the duration of the block.

    ``context``, when given, threads a parent process's trace identity
    into this session (worker-side use; see
    :func:`current_trace_context`). Raises :class:`NestedSessionError`
    on nested entry — sessions do not nest, and silently replacing the
    active session would discard its spans and metrics.
    """
    global _current
    if _current is not None:
        raise NestedSessionError(
            "telemetry sessions do not nest: a session is already active "
            "in this process. Reuse it via repro.obs.current(), or — in a "
            "worker process that inherited the parent's slot across fork "
            "— call reset_for_subprocess() first."
        )
    tel = Telemetry(context)
    _current = tel
    try:
        yield tel
    finally:
        _current = None


# ----------------------------------------------------------------------
# Front-door helpers (the only API instrumented modules should use).
# ----------------------------------------------------------------------

def span(name: str, **attrs: object):
    """Open a nested wall-clock span (no-op context manager if disabled)."""
    tel = _current
    if tel is None:
        return NULL_SPAN
    return tel.spans.span(name, **attrs)


def inc(name: str, n: float = 1.0,
        labels: dict[str, str] | None = None) -> None:
    """Increment counter ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.counter(name, labels).inc(n)


def observe(name: str, value: float, *,
            labels: dict[str, str] | None = None,
            bounds: tuple[float, ...] | None = None) -> None:
    """Record ``value`` into histogram ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.histogram(name, bounds, labels).observe(value)


def set_gauge(name: str, value: float,
              labels: dict[str, str] | None = None) -> None:
    """Set gauge ``name`` (no-op if disabled)."""
    tel = _current
    if tel is not None:
        tel.metrics.gauge(name, labels).set(value)


def merge_worker_metrics(state: dict[str, object] | None) -> None:
    """Fold a worker process's exported metrics registry state into the
    active session (no-op if disabled or ``state`` is empty).

    Metrics-only path: counters add, gauges last-write-win, histograms
    merge bucket-by-bucket. Callers holding a full
    :meth:`Telemetry.export_state` payload (spans included) should use
    :func:`merge_worker_state` instead so the worker's span tree lands in
    the artifact too.
    """
    tel = _current
    if tel is not None and state:
        tel.metrics.merge_state(state)


def merge_worker_state(state: dict[str, object] | None) -> None:
    """Fold a worker's full :meth:`Telemetry.export_state` payload —
    metrics *and* span tree — into the active session.

    The worker's spans are re-parented under the innermost span open
    *right now* (for the sweep engine that is the ``parallel.fan_out``
    span active at merge time) with ids remapped into this session's id
    space, so the Chrome-trace export shows one flame graph spanning
    submit → worker compute across the process boundary. Each adopted
    span is tagged with the worker's ``trace`` id so per-trace timelines
    can be filtered back out. No-op if disabled or ``state`` is empty;
    bare metrics payloads (no ``spans`` key) degrade to
    :func:`merge_worker_metrics` behaviour.
    """
    tel = _current
    if tel is None or not state:
        return
    if "metrics" not in state and "spans" not in state:
        tel.metrics.merge_state(state)  # legacy metrics-only payload
        return
    metrics = state.get("metrics")
    if metrics:
        tel.metrics.merge_state(metrics)  # type: ignore[arg-type]
    spans = state.get("spans")
    if spans:
        extra = {}
        trace_id = state.get("trace_id")
        if trace_id and trace_id != tel.trace_id:
            extra["trace"] = trace_id
        tel.spans.adopt(list(spans), extra_attrs=extra or None)  # type: ignore[arg-type]


def reset_for_subprocess() -> None:
    """Drop a session inherited across ``fork``.

    Worker processes spawned while a session is active inherit the
    parent's ``_current`` slot; they must clear it before opening their
    own session (sessions do not nest — see :class:`NestedSessionError` —
    and the inherited object's state would be discarded at worker exit
    anyway).
    """
    global _current
    _current = None
