"""Metrics registry: counters, gauges, and fixed-bucket histograms.

This is the aggregation side of the telemetry subsystem — the place the
pipeline's previously ad-hoc numbers land: encoder kernel invocation
counts, simulator cache/branch event totals, scheduler queue depths,
tracer heap bytes. Everything is plain Python floats and dicts so a
registry snapshot serializes straight into ``run.json``.

Histograms use fixed bucket bounds (default: log-spaced decades with
1-2-5 subdivision, covering nanoseconds-to-hours and bytes-to-GiB-scale
magnitudes) and estimate percentiles by linear interpolation inside the
bucket containing the requested rank — the classic Prometheus-style
scheme, with exact min/max tracked alongside so the interpolation is
clamped to observed values. Service-latency histograms should use the
tighter :func:`latency_buckets` preset (µs → minutes), which keeps the
interpolation error sub-bucket at serving timescales.

Every metric kind optionally carries a **label dimension**: a small
``{key: value}`` string map identifying one series of a metric family
(``service.stage_latency_s{config="fe_op",stage="encode"}``). Labeled
series are stored, snapshotted, exported, and merged under their
Prometheus-style labeled key, so ``run.json`` and the worker→parent
merge path handle them with no schema change.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_buckets", "label_key", "latency_buckets",
           "parse_label_key"]


def default_buckets() -> tuple[float, ...]:
    """Log-spaced 1-2-5 bucket upper bounds from 1e-9 up to 1e9."""
    bounds: list[float] = []
    for exp in range(-9, 10):
        for mant in (1.0, 2.0, 5.0):
            bounds.append(mant * 10.0 ** exp)
    return tuple(bounds)


def latency_buckets() -> tuple[float, ...]:
    """Log-spaced 1-2-5 bucket upper bounds from 1 µs up to ~8 minutes.

    The :func:`default_buckets` decade grid spans 18 orders of magnitude,
    which leaves sub-second service latencies only ~3 buckets per decade
    over the whole range it will realistically see — too coarse for
    percentile targets at serving granularity. This preset covers the
    serving range (microseconds to minutes) with the same 1-2-5
    subdivision, so every stage-latency histogram resolves p99s at the
    scale SLOs are written in.
    """
    bounds: list[float] = []
    for exp in range(-6, 3):
        for mant in (1.0, 2.0, 5.0):
            bounds.append(mant * 10.0 ** exp)
    return tuple(bounds)


_DEFAULT_BUCKETS = default_buckets()


# ----------------------------------------------------------------------
# Labeled series keys (Prometheus-style).
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def label_key(name: str, labels: dict[str, str] | None = None) -> str:
    """The canonical series key for ``name`` + ``labels``.

    Unlabeled metrics keep their bare name; labeled ones get the
    Prometheus form ``name{k="v",...}`` with keys sorted, so the same
    label set always maps to the same series regardless of call-site
    ordering.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def parse_label_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`label_key`: split a series key into (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    if not rest.endswith("}"):
        raise ValueError(f"malformed label key {key!r}")
    labels: dict[str, str] = {}
    body = rest[:-1]
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        label = body[i:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"malformed label key {key!r}")
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"malformed label key {key!r}")
        labels[label] = _unescape_label_value("".join(raw))
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"malformed label key {key!r}")
            i += 1
    return name, labels


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str,
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value (queue depth, heap bytes, config knobs)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str,
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything above the last edge. Exact count/sum/min/max are
    kept alongside the bucket counts.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "labels")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None,
                 labels: dict[str, str] | None = None):
        edges = tuple(bounds) if bounds is not None else _DEFAULT_BUCKETS
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.bounds = edges
        self.bucket_counts = [0.0] * (len(edges) + 1)  # + overflow
        self.count = 0.0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float, weight: float = 1.0) -> None:
        v = float(v)
        self.count += weight
        self.total += v * weight
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self.bucket_counts[self._bucket_index(v)] += weight

    def _bucket_index(self, v: float) -> int:
        # Binary search over the inclusive upper edges.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cum = 0.0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= rank:
                # Interpolate inside bucket i, clamped to observed range.
                lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                frac = (rank - cum) / n
                return lower + frac * (upper - lower)
            cum += n
        return self.max

    def fraction_below(self, threshold: float) -> float:
        """Estimated fraction of observations ``<= threshold`` — the
        "good events" ratio an SLO error budget is charged against.

        Same interpolation scheme as :meth:`percentile`, clamped to the
        observed range; an empty histogram reports 1.0 (no observation
        has violated the objective yet).
        """
        if self.count == 0:
            return 1.0
        if threshold >= self.max:
            return 1.0
        if threshold < self.min:
            return 0.0
        below = 0.0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
            upper = self.bounds[i] if i < len(self.bounds) else self.max
            lower = max(lower, self.min)
            upper = min(upper, self.max)
            if threshold >= upper:
                below += n
            elif threshold > lower:
                below += n * (threshold - lower) / (upper - lower)
        return min(below / self.count, 1.0)

    def snapshot(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def export_state(self) -> dict[str, object]:
        """Full mergeable state (unlike :meth:`snapshot`, which only
        summarizes): bucket counts plus exact count/sum/min/max."""
        state: dict[str, object] = {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }
        if self.labels:
            state["labels"] = dict(self.labels)
        if self.count:
            state["min"] = self.min
            state["max"] = self.max
        return state

    def merge_state(self, state: dict[str, object]) -> None:
        """Fold another histogram's exported state into this one."""
        if tuple(state["bounds"]) != self.bounds:  # type: ignore[arg-type]
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket bounds"
            )
        if not state["count"]:
            return
        other_counts: list[float] = state["bucket_counts"]  # type: ignore[assignment]
        if len(other_counts) != len(self.bucket_counts):
            raise ValueError(
                f"histogram {self.name!r}: bucket count length mismatch"
            )
        for i, n in enumerate(other_counts):
            self.bucket_counts[i] += n
        self.count += state["count"]  # type: ignore[operator]
        self.total += state["sum"]  # type: ignore[operator]
        self.min = min(self.min, float(state["min"]))  # type: ignore[arg-type]
        self.max = max(self.max, float(state["max"]))  # type: ignore[arg-type]


class MetricsRegistry:
    """Series-key → metric map with get-or-create accessors.

    Unlabeled metrics are keyed by their bare name (the historical
    behaviour); labeled series are keyed by :func:`label_key`, so one
    metric family fans out into one entry per label combination.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, key: str, cls, factory):
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str,
                labels: dict[str, str] | None = None) -> Counter:
        key = label_key(name, labels)
        return self._get(key, Counter, lambda: Counter(name, labels))

    def gauge(self, name: str,
              labels: dict[str, str] | None = None) -> Gauge:
        key = label_key(name, labels)
        return self._get(key, Gauge, lambda: Gauge(name, labels))

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None,
                  labels: dict[str, str] | None = None) -> Histogram:
        key = label_key(name, labels)
        return self._get(key, Histogram,
                         lambda: Histogram(name, bounds, labels))

    def series(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every series of the metric family ``name`` (labeled and not),
        in sorted series-key order."""
        return [self._metrics[key] for key in sorted(self._metrics)
                if self._metrics[key].name == name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, object]:
        """Snapshot every metric: scalars for counters/gauges, summary
        dicts for histograms. Sorted by name for stable artifacts."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    # -- cross-process merge (the sweep engine's worker -> parent path) --
    def export_state(self) -> dict[str, object]:
        """Everything needed to fold this registry into another one:
        counter/gauge scalars plus full histogram states."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, object]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.export_state()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_state(self, state: dict[str, object]) -> None:
        """Fold an :meth:`export_state` payload (typically from a worker
        process) into this registry: counters add, gauges last-write-win,
        histograms merge bucket-by-bucket. Labeled series round-trip
        through their series keys."""
        for key, value in state.get("counters", {}).items():  # type: ignore[union-attr]
            name, labels = parse_label_key(key)
            self.counter(name, labels or None).inc(value)
        for key, value in state.get("gauges", {}).items():  # type: ignore[union-attr]
            name, labels = parse_label_key(key)
            self.gauge(name, labels or None).set(value)
        for key, hist_state in state.get("histograms", {}).items():  # type: ignore[union-attr]
            name, labels = parse_label_key(key)
            bounds = tuple(hist_state["bounds"])
            self.histogram(name, bounds, labels or None).merge_state(hist_state)
