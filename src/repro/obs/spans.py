"""Wall-clock span tree: the trace side of the telemetry subsystem.

A :class:`SpanRecorder` hands out context managers that time nested
regions of the pipeline (experiment → sweep → transcode → encode/frame →
simulate/window → schedule/place). Every closed span becomes an immutable
:class:`SpanRecord` carrying its parent linkage, nesting depth, and
free-form attributes, which is exactly the shape the Chrome-trace and
JSONL exporters in :mod:`repro.obs.export` need.

The recorder is deliberately dumb and fast: a monotonic clock read on
enter and exit, one list append on exit. When telemetry is disabled the
instrumented code never reaches this module at all — the
:func:`repro.obs.session.span` front door returns a shared no-op context
manager instead (see that module for the near-zero-overhead contract).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "SpanRecorder", "NULL_SPAN"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed (closed) span."""

    span_id: int
    parent_id: int | None
    name: str
    start_ns: int
    end_ns: int
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def as_dict(self) -> dict[str, object]:
        """JSON-ready flat representation (JSONL event stream rows)."""
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager for one open span; records itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id",
                 "depth", "start_ns")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 attrs: dict[str, object]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        rec = self._recorder
        self.span_id = rec._next_id
        rec._next_id += 1
        stack = rec._stack
        self.parent_id = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.span_id)
        self.start_ns = rec._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._recorder
        end_ns = rec._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        rec._stack.pop()
        rec.finished.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_ns=self.start_ns,
                end_ns=end_ns,
                depth=self.depth,
                attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span used when telemetry is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects a session's span tree.

    Parameters
    ----------
    clock:
        Nanosecond monotonic clock; injectable so tests can assert exact
        durations.
    """

    def __init__(self, *, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: list[int] = []
        self.finished: list[SpanRecord] = []

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def roots(self) -> list[SpanRecord]:
        return [s for s in self.finished if s.parent_id is None]

    def by_name(self) -> dict[str, list[SpanRecord]]:
        out: dict[str, list[SpanRecord]] = {}
        for s in self.finished:
            out.setdefault(s.name, []).append(s)
        return out

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name call counts and total self-inclusive seconds."""
        out: dict[str, dict[str, float]] = {}
        for s in self.finished:
            agg = out.setdefault(s.name, {"calls": 0.0, "total_s": 0.0})
            agg["calls"] += 1
            agg["total_s"] += s.duration_s
        return out

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()
