"""Wall-clock span tree: the trace side of the telemetry subsystem.

A :class:`SpanRecorder` hands out context managers that time nested
regions of the pipeline (experiment → sweep → transcode → encode/frame →
simulate/window → schedule/place). Every closed span becomes an immutable
:class:`SpanRecord` carrying its parent linkage, nesting depth, and
free-form attributes, which is exactly the shape the Chrome-trace and
JSONL exporters in :mod:`repro.obs.export` need.

The recorder is deliberately dumb and fast: a monotonic clock read on
enter and exit, one list append on exit. When telemetry is disabled the
instrumented code never reaches this module at all — the
:func:`repro.obs.session.span` front door returns a shared no-op context
manager instead (see that module for the near-zero-overhead contract).

Cross-process tracing: a parent session hands a :class:`TraceContext`
(its ``trace_id`` plus the id of the span that spawned the work) to a
worker process; the worker's session records under that ``trace_id`` and
ships its finished spans back, and the parent's
:meth:`SpanRecorder.adopt` re-parents the worker tree under the spawning
span — with ids remapped into the parent's id space — so the exported
Chrome trace shows one flame graph spanning both processes.
(``perf_counter_ns`` is CLOCK_MONOTONIC-based on Linux, so worker
timestamps share the parent's time axis.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "SpanRecorder", "TraceContext", "NULL_SPAN"]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of an in-progress trace.

    ``trace_id`` names the end-to-end unit of work (one job, one sweep);
    ``parent_span_id`` is the id — in the *originating* recorder's id
    space — of the span under which remote work should hang.
    """

    trace_id: str
    parent_span_id: int | None = None

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form (crosses the process boundary via pickle or
        JSON alongside the task payload)."""
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TraceContext":
        """Inverse of :meth:`as_dict`."""
        parent = payload.get("parent_span_id")
        return cls(
            trace_id=str(payload["trace_id"]),
            parent_span_id=None if parent is None else int(parent),
        )


@dataclass(frozen=True)
class SpanRecord:
    """One completed (closed) span."""

    span_id: int
    parent_id: int | None
    name: str
    start_ns: int
    end_ns: int
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def as_dict(self) -> dict[str, object]:
        """JSON-ready flat representation (JSONL event stream rows)."""
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager for one open span; records itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id",
                 "depth", "start_ns")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 attrs: dict[str, object]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        rec = self._recorder
        self.span_id = rec._next_id
        rec._next_id += 1
        stack = rec._stack
        self.parent_id = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.span_id)
        self.start_ns = rec._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._recorder
        end_ns = rec._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        rec._stack.pop()
        rec.finished.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_ns=self.start_ns,
                end_ns=end_ns,
                depth=self.depth,
                attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span used when telemetry is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects a session's span tree.

    Parameters
    ----------
    clock:
        Nanosecond monotonic clock; injectable so tests can assert exact
        durations.
    """

    def __init__(self, *, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: list[int] = []
        self.finished: list[SpanRecord] = []

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def roots(self) -> list[SpanRecord]:
        return [s for s in self.finished if s.parent_id is None]

    def by_name(self) -> dict[str, list[SpanRecord]]:
        out: dict[str, list[SpanRecord]] = {}
        for s in self.finished:
            out.setdefault(s.name, []).append(s)
        return out

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name call counts and total self-inclusive seconds."""
        out: dict[str, dict[str, float]] = {}
        for s in self.finished:
            agg = out.setdefault(s.name, {"calls": 0.0, "total_s": 0.0})
            agg["calls"] += 1
            agg["total_s"] += s.duration_s
        return out

    @property
    def open_span_id(self) -> int | None:
        """Id of the innermost currently open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def adopt(
        self,
        records: list[dict[str, object]],
        *,
        parent_id: int | None = None,
        extra_attrs: dict[str, object] | None = None,
    ) -> int:
        """Graft a foreign span forest (``SpanRecord.as_dict`` rows from
        another recorder, typically a worker process) into this tree.

        Foreign ids are remapped into this recorder's id space, roots are
        re-parented under ``parent_id`` (default: the innermost open
        span), and depths are shifted accordingly, so the adopted spans
        are indistinguishable from locally recorded ones in every export.
        ``extra_attrs`` is merged into each adopted span's attributes
        (e.g. the worker's trace id). Returns the number of spans
        adopted.
        """
        if not records:
            return 0
        if parent_id is None:
            parent_id = self.open_span_id
        base_depth = (len(self._stack) if parent_id == self.open_span_id
                      else 0)
        if parent_id is not None and parent_id != self.open_span_id:
            by_id = {s.span_id: s for s in self.finished}
            anchor = by_id.get(parent_id)
            base_depth = anchor.depth + 1 if anchor is not None else 0
        id_map: dict[int, int] = {}
        # Parents get ids at __enter__, before their children, so sorting
        # by foreign id maps every parent before its children.
        for row in sorted(records, key=lambda r: int(r["span_id"])):  # type: ignore[arg-type]
            new_id = self._next_id
            self._next_id += 1
            foreign_id = int(row["span_id"])  # type: ignore[arg-type]
            id_map[foreign_id] = new_id
            foreign_parent = row.get("parent_id")
            if foreign_parent is None:
                mapped_parent: int | None = parent_id
                depth = base_depth
            else:
                mapped_parent = id_map.get(int(foreign_parent))  # type: ignore[arg-type]
                if mapped_parent is None:  # orphan: hang it off the root
                    mapped_parent = parent_id
                    depth = base_depth
                else:
                    depth = int(row.get("depth", 0)) + base_depth  # type: ignore[arg-type]
            attrs = dict(row.get("attrs") or {})  # type: ignore[arg-type]
            if extra_attrs:
                attrs.update(extra_attrs)
            self.finished.append(
                SpanRecord(
                    span_id=new_id,
                    parent_id=mapped_parent,
                    name=str(row["name"]),
                    start_ns=int(row["start_ns"]),  # type: ignore[arg-type]
                    end_ns=int(row["end_ns"]),  # type: ignore[arg-type]
                    depth=depth,
                    attrs=attrs,
                )
            )
        return len(id_map)

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()
