"""Transcoding tasks: a clip plus its parameter set (paper Table III)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.options import EncoderOptions
from repro.codec.presets import preset_options
from repro.video.frame import FrameSequence
from repro.video.vbench import load_video

__all__ = ["TranscodeTask", "TABLE_III_TASKS"]


@dataclass(frozen=True)
class TranscodeTask:
    """One transcoding job to be placed on a server."""

    task_id: int
    video: str  # vbench short name
    crf: int
    refs: int
    preset: str

    def options(self) -> EncoderOptions:
        return preset_options(self.preset, crf=self.crf, refs=self.refs)

    def load(
        self,
        *,
        width: int | None = None,
        height: int | None = None,
        n_frames: int | None = None,
    ) -> FrameSequence:
        return self.video_sequence(width=width, height=height, n_frames=n_frames)

    def video_sequence(
        self,
        *,
        width: int | None = None,
        height: int | None = None,
        n_frames: int | None = None,
    ) -> FrameSequence:
        return load_video(
            self.video, width=width, height=height, n_frames=n_frames
        )

    def describe(self) -> str:
        return (
            f"task {self.task_id}: {self.video} crf={self.crf} "
            f"refs={self.refs} preset={self.preset}"
        )


#: Table III, verbatim.
TABLE_III_TASKS: tuple[TranscodeTask, ...] = (
    TranscodeTask(1, "desktop", 30, 8, "veryfast"),
    TranscodeTask(2, "holi", 10, 1, "slow"),
    TranscodeTask(3, "presentation", 35, 6, "veryfast"),
    TranscodeTask(4, "game2", 15, 2, "medium"),
)
