"""The paper's scheduler case study (Figure 9).

Simulates each Table III task on the baseline and all four Table IV
variants, then evaluates the random / smart / best schedulers. The smart
scheduler only gets the baseline profiling counters (the
characterization), never the per-variant runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.counters import CounterSet
from repro.profiling.perf import profile_transcode
from repro.scheduling.schedulers import (
    Assignment,
    BestScheduler,
    RandomScheduler,
    SmartScheduler,
)
from repro.scheduling.task import TABLE_III_TASKS, TranscodeTask
from repro.trace.kernels import build_program
from repro.trace.recorder import RecordingTracer
from repro.uarch.configs import config_by_name
from repro.uarch.simulator import simulate

__all__ = ["CaseStudyResult", "run_case_study"]

_VARIANTS = ("fe_op", "be_op1", "be_op2", "bs_op")


@dataclass
class CaseStudyResult:
    """Everything Figure 9 needs."""

    tasks: list[TranscodeTask]
    config_names: list[str]
    cycles: dict[int, dict[str, float]]  # task -> config -> cycles
    baseline_cycles: dict[int, float]
    counters: dict[int, CounterSet]
    assignments: dict[str, Assignment]

    @property
    def smart_vs_random_pct(self) -> float:
        """How much the smart scheduler beats random, in percentage points
        of mean speedup (the paper's 3.72% number)."""
        return (
            self.assignments["smart"].mean_speedup_pct
            - self.assignments["random"].mean_speedup_pct
        )

    @property
    def smart_matches_best_fraction(self) -> float:
        """Fraction of tasks the smart scheduler placed exactly where the
        best scheduler did (the paper's 75%)."""
        smart = self.assignments["smart"].placement
        best = self.assignments["best"].placement
        matches = sum(1 for t in smart if smart[t] == best[t])
        return matches / len(smart)


def run_case_study(
    tasks: tuple[TranscodeTask, ...] = TABLE_III_TASKS,
    *,
    width: int = 112,
    height: int = 64,
    n_frames: int = 10,
    data_capacity_scale: float = 48.0,
) -> CaseStudyResult:
    """Run the full Figure 9 experiment at the given proxy scale."""
    program = build_program()
    config_names = list(_VARIANTS)

    cycles: dict[int, dict[str, float]] = {}
    baseline_cycles: dict[int, float] = {}
    counters: dict[int, CounterSet] = {}

    for task in tasks:
        video = task.load(width=width, height=height, n_frames=n_frames)
        options = task.options()
        # One traced encode per task; the trace replays on every config.
        tracer = RecordingTracer(program)
        from repro.codec.encoder import Encoder

        encode_result = Encoder(options, tracer=tracer).encode(video)
        base_cfg = config_by_name(
            "baseline", data_capacity_scale=data_capacity_scale
        )
        base_report = simulate(tracer.stream, program, base_cfg)
        baseline_cycles[task.task_id] = base_report.cycles
        counters[task.task_id] = CounterSet.from_report(
            base_report,
            psnr_db=encode_result.psnr_db,
            bitrate_kbps=encode_result.bitrate_kbps,
        )
        cycles[task.task_id] = {}
        for name in config_names:
            cfg = config_by_name(name, data_capacity_scale=data_capacity_scale)
            report = simulate(tracer.stream, program, cfg)
            cycles[task.task_id][name] = report.cycles

    task_list = list(tasks)
    assignments = {
        s.name: s.schedule(
            task_list, cycles, config_names, baseline_cycles, counters
        )
        for s in (RandomScheduler(), SmartScheduler(), BestScheduler())
    }
    return CaseStudyResult(
        tasks=task_list,
        config_names=config_names,
        cycles=cycles,
        baseline_cycles=baseline_cycles,
        counters=counters,
        assignments=assignments,
    )
