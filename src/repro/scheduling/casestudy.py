"""The paper's scheduler case study (Figure 9).

Simulates each Table III task on the baseline and all four Table IV
variants, then evaluates the random / smart / best schedulers. The smart
scheduler only gets the baseline profiling counters (the
characterization), never the per-variant runtimes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.profiling.counters import CounterSet
from repro.resilience.faults import fault_point
from repro.scheduling.schedulers import (
    Assignment,
    BestScheduler,
    RandomScheduler,
    SmartScheduler,
)
from repro.scheduling.task import TABLE_III_TASKS, TranscodeTask
from repro.trace.kernels import build_program
from repro.trace.recorder import RecordingTracer
from repro.uarch.configs import config_by_name
from repro.uarch.simulator import simulate

__all__ = ["CaseStudyResult", "run_case_study", "simulate_task"]

_VARIANTS = ("fe_op", "be_op1", "be_op2", "bs_op")


@dataclass
class CaseStudyResult:
    """Everything Figure 9 needs."""

    tasks: list[TranscodeTask]
    config_names: list[str]
    cycles: dict[int, dict[str, float]]  # task -> config -> cycles
    baseline_cycles: dict[int, float]
    counters: dict[int, CounterSet]
    assignments: dict[str, Assignment]

    @property
    def smart_vs_random_pct(self) -> float:
        """How much the smart scheduler beats random, in percentage points
        of mean speedup (the paper's 3.72% number)."""
        return (
            self.assignments["smart"].mean_speedup_pct
            - self.assignments["random"].mean_speedup_pct
        )

    @property
    def smart_matches_best_fraction(self) -> float:
        """Fraction of tasks the smart scheduler placed exactly where the
        best scheduler did (the paper's 75%)."""
        smart = self.assignments["smart"].placement
        best = self.assignments["best"].placement
        if not smart:  # a zero-task run has no placements to match
            return 0.0
        matches = sum(1 for t in smart if smart[t] == best[t])
        return matches / len(smart)


@dataclass(frozen=True)
class TaskJob:
    """One task's simulation job, shippable to a worker process."""

    task: TranscodeTask
    width: int
    height: int
    n_frames: int
    data_capacity_scale: float
    config_names: tuple[str, ...]


def simulate_task(job: TaskJob) -> dict[str, object]:
    """Trace one task's encode and replay it on every configuration.

    Module-level with a JSON-friendly return shape so the experiment
    layer can fan jobs out to worker processes and persist the payloads.
    """
    task = job.task
    fault_point("casestudy.simulate", detail=str(task.task_id))
    program = build_program()
    video = task.load(width=job.width, height=job.height, n_frames=job.n_frames)
    # One traced encode per task; the trace replays on every config.
    tracer = RecordingTracer(program)
    from repro.codec.encoder import Encoder

    encode_result = Encoder(task.options(), tracer=tracer).encode(video)
    base_cfg = config_by_name(
        "baseline", data_capacity_scale=job.data_capacity_scale
    )
    base_report = simulate(tracer.stream, program, base_cfg)
    counters = CounterSet.from_report(
        base_report,
        psnr_db=encode_result.psnr_db,
        bitrate_kbps=encode_result.bitrate_kbps,
    )
    per_config: dict[str, float] = {}
    for name in job.config_names:
        cfg = config_by_name(name, data_capacity_scale=job.data_capacity_scale)
        per_config[name] = simulate(tracer.stream, program, cfg).cycles
    return {
        "task_id": task.task_id,
        "baseline_cycles": base_report.cycles,
        "counters": counters.as_dict(),
        "cycles": per_config,
    }


def run_case_study(
    tasks: tuple[TranscodeTask, ...] = TABLE_III_TASKS,
    *,
    width: int = 112,
    height: int = 64,
    n_frames: int = 10,
    data_capacity_scale: float = 48.0,
    mapper: Callable[..., Sequence[dict[str, object]]] | None = None,
) -> CaseStudyResult:
    """Run the full Figure 9 experiment at the given proxy scale.

    ``mapper(fn, jobs)`` controls how the per-task simulations execute;
    the default is a serial in-process map, and the experiment layer
    injects the parallel/cached sweep-engine mapper.
    """
    config_names = list(_VARIANTS)
    jobs = [
        TaskJob(
            task=task, width=width, height=height, n_frames=n_frames,
            data_capacity_scale=data_capacity_scale,
            config_names=tuple(config_names),
        )
        for task in tasks
    ]
    if mapper is None:
        payloads = [simulate_task(job) for job in jobs]
    else:
        payloads = list(mapper(simulate_task, jobs))

    cycles: dict[int, dict[str, float]] = {}
    baseline_cycles: dict[int, float] = {}
    counters: dict[int, CounterSet] = {}
    names = CounterSet.field_names()
    for payload in payloads:
        task_id = int(payload["task_id"])  # type: ignore[arg-type]
        baseline_cycles[task_id] = float(payload["baseline_cycles"])  # type: ignore[arg-type]
        raw = payload["counters"]
        counters[task_id] = CounterSet(**{n: float(raw[n]) for n in names})  # type: ignore[index]
        cycles[task_id] = {
            name: float(c) for name, c in payload["cycles"].items()  # type: ignore[union-attr]
        }

    task_list = list(tasks)
    assignments = {
        s.name: s.schedule(
            task_list, cycles, config_names, baseline_cycles, counters
        )
        for s in (RandomScheduler(), SmartScheduler(), BestScheduler())
    }
    return CaseStudyResult(
        tasks=task_list,
        config_names=config_names,
        cycles=cycles,
        baseline_cycles=baseline_cycles,
        counters=counters,
        assignments=assignments,
    )
