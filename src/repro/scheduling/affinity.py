"""Characterization-driven task↔configuration affinity scoring.

The smart scheduler never sees the per-configuration runtimes (that would
be the oracle). Instead it profiles each task once on the *baseline*
configuration and scores how much each Table IV variant should help,
using the paper's own characterization logic: a task's dominant top-down
bottleneck points at the configuration built to relieve it —

- high front-end bound / L1i MPKI   → ``fe_op``  (bigger L1i + iTLB),
- high memory bound / L2-L3 MPKI    → ``be_op1`` (bigger data caches),
- high back-end resource stalls     → ``be_op2`` (bigger ROB/RS window),
- high bad speculation / branch MPKI → ``bs_op`` (TAGE predictor).
"""

from __future__ import annotations

from repro.profiling.counters import CounterSet

__all__ = ["affinity_scores"]


def affinity_scores(counters: CounterSet) -> dict[str, float]:
    """Predicted relative benefit of each config for one profiled task.

    Scores are in arbitrary comparable units (bigger = better fit); each
    is the share of pipeline slots (plus a counter-based tiebreaker) that
    the configuration's extra resources attack.
    """
    # Counter tiebreakers are scaled to stay subordinate to slot shares.
    fe = counters.frontend_bound + 0.1 * counters.l1i_mpki
    be1 = counters.memory_bound + 0.1 * (counters.l2_mpki + counters.l3_mpki)
    be2 = counters.core_bound + 0.5 * counters.memory_bound + 0.01 * (
        counters.stall_rob_pki + counters.stall_rs_pki
    )
    bs = counters.bad_speculation + 0.1 * counters.branch_mpki
    return {"fe_op": fe, "be_op1": be1, "be_op2": be2, "bs_op": bs}
