"""Adaptive-streaming parameter selection (extension, paper §V).

The paper's closing argument: "As we investigate the impact of changes in
transcoding parameters, our results can guide better resource utilization
for these adaptive video streaming services." This module implements that
guidance: given profiled sweep records for a clip, it builds the
rate-quality-compute frontier and answers the two questions an adaptive
service asks per segment:

- :func:`select_for_bandwidth` — the best-quality operating point whose
  bitrate fits the client's bandwidth;
- :func:`select_for_deadline` — the best-quality point whose (simulated)
  transcode time fits the compute budget, e.g. for live re-encodes.

Points that are dominated on all three axes are pruned first, so the
selectors only ever pick Pareto-efficient parameter combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.experiments.runner import SweepRecord

__all__ = [
    "OperatingPoint",
    "pareto_frontier",
    "select_for_bandwidth",
    "select_for_deadline",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One encodable configuration with its measured outcomes."""

    crf: int
    refs: int
    preset: str
    psnr_db: float
    bitrate_kbps: float
    time_seconds: float

    @staticmethod
    def from_record(record: SweepRecord) -> "OperatingPoint":
        c = record.counters
        return OperatingPoint(
            crf=record.crf,
            refs=record.refs,
            preset=record.preset,
            psnr_db=c.psnr_db,
            bitrate_kbps=c.bitrate_kbps,
            time_seconds=c.time_seconds,
        )

    def dominates(self, other: "OperatingPoint") -> bool:
        """Better-or-equal on all three axes, strictly better on one."""
        ge = (
            self.psnr_db >= other.psnr_db
            and self.bitrate_kbps <= other.bitrate_kbps
            and self.time_seconds <= other.time_seconds
        )
        gt = (
            self.psnr_db > other.psnr_db
            or self.bitrate_kbps < other.bitrate_kbps
            or self.time_seconds < other.time_seconds
        )
        return ge and gt


def pareto_frontier(records: list[SweepRecord]) -> list[OperatingPoint]:
    """Non-dominated operating points, sorted by bitrate ascending."""
    if not records:
        raise ValueError("need at least one sweep record")
    points = [OperatingPoint.from_record(r) for r in records]
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    frontier.sort(key=lambda p: (p.bitrate_kbps, -p.psnr_db))
    return frontier


def select_for_bandwidth(
    records: list[SweepRecord], bandwidth_kbps: float
) -> OperatingPoint | None:
    """Best-quality Pareto point whose bitrate fits ``bandwidth_kbps``.

    Returns ``None`` when even the smallest point exceeds the budget (the
    service should then drop resolution, which is outside this sweep).
    """
    check_positive("bandwidth_kbps", bandwidth_kbps)
    feasible = [
        p for p in pareto_frontier(records) if p.bitrate_kbps <= bandwidth_kbps
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda p: (p.psnr_db, -p.bitrate_kbps))


def select_for_deadline(
    records: list[SweepRecord], deadline_seconds: float
) -> OperatingPoint | None:
    """Best-quality Pareto point transcodable within ``deadline_seconds``."""
    check_positive("deadline_seconds", deadline_seconds)
    feasible = [
        p for p in pareto_frontier(records) if p.time_seconds <= deadline_seconds
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda p: (p.psnr_db, -p.time_seconds))
