"""The three schedulers of Figure 9: random, smart, best.

All schedulers place N transcoding tasks onto M µarch configurations
("servers"). They differ in the information they may use:

- :class:`RandomScheduler` knows nothing; its expected performance is the
  average over all placements (exactly how the paper evaluates it);
- :class:`SmartScheduler` sees only baseline profiling counters and the
  one-to-one constraint (each server gets exactly one task), solving the
  resulting assignment problem over predicted-affinity scores;
- :class:`BestScheduler` is the oracle: it sees the true runtime of every
  (task, config) pair and places each task on its fastest server, with no
  one-to-one constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.scheduling.affinity import affinity_scores
from repro.scheduling.task import TranscodeTask

__all__ = ["Assignment", "RandomScheduler", "SmartScheduler", "BestScheduler"]


@dataclass(frozen=True)
class Assignment:
    """A scheduler's decision plus its achieved performance."""

    scheduler: str
    placement: dict[int, str]  # task_id -> config name ("" for random/average)
    task_cycles: dict[int, float]  # achieved cycles per task
    baseline_cycles: dict[int, float]

    @property
    def mean_speedup_pct(self) -> float:
        """Mean per-task speedup over the baseline configuration, in %."""
        speedups = [
            (self.baseline_cycles[t] / c - 1.0) * 100.0
            for t, c in self.task_cycles.items()
        ]
        return float(np.mean(speedups))

    @property
    def total_cycles(self) -> float:
        return float(sum(self.task_cycles.values()))


def _check_inputs(
    tasks: list[TranscodeTask],
    cycles: dict[int, dict[str, float]],
    config_names: list[str],
) -> None:
    if not tasks:
        raise ValueError("no tasks to schedule")
    for task in tasks:
        if task.task_id not in cycles:
            raise ValueError(f"missing cycle measurements for task {task.task_id}")
        for name in config_names:
            if name not in cycles[task.task_id]:
                raise ValueError(
                    f"missing cycles for task {task.task_id} on {name!r}"
                )


def _observe_schedule(assignment: Assignment, n_tasks: int) -> Assignment:
    """Absorb one scheduling decision into the metrics registry."""
    tel = obs.current()
    if tel is not None:
        m = tel.metrics
        m.counter("scheduler.schedules").inc()
        m.counter(f"scheduler.{assignment.scheduler}.tasks_placed").inc(
            len(assignment.task_cycles)
        )
        # Queue depth at placement time: all tasks arrive at once in the
        # paper's case study, so depth == batch size per decision.
        m.histogram("scheduler.queue_depth").observe(n_tasks)
        m.histogram(
            f"scheduler.{assignment.scheduler}.speedup_pct"
        ).observe(assignment.mean_speedup_pct)
    return assignment


class RandomScheduler:
    """Uniform random placement, evaluated in expectation."""

    name = "random"

    def schedule(
        self,
        tasks: list[TranscodeTask],
        cycles: dict[int, dict[str, float]],
        config_names: list[str],
        baseline_cycles: dict[int, float],
        counters: dict[int, CounterSet] | None = None,
    ) -> Assignment:
        _check_inputs(tasks, cycles, config_names)
        task_cycles: dict[int, float] = {}
        with obs.span("schedule", scheduler=self.name, tasks=len(tasks)):
            for t in tasks:
                with obs.span("schedule.place", scheduler=self.name,
                              task=t.task_id, config="<average>"):
                    task_cycles[t.task_id] = float(
                        np.mean([cycles[t.task_id][c] for c in config_names])
                    )
        return _observe_schedule(
            Assignment(
                scheduler=self.name,
                placement={t.task_id: "<average>" for t in tasks},
                task_cycles=task_cycles,
                baseline_cycles=dict(baseline_cycles),
            ),
            len(tasks),
        )


class SmartScheduler:
    """Characterization-driven one-to-one assignment.

    Builds the affinity matrix from baseline profiling counters and
    solves the assignment problem (Hungarian algorithm) maximizing total
    predicted benefit — the one-to-one constraint prevents any server
    from being over- or under-utilized, as the paper requires.
    """

    name = "smart"

    def schedule(
        self,
        tasks: list[TranscodeTask],
        cycles: dict[int, dict[str, float]],
        config_names: list[str],
        baseline_cycles: dict[int, float],
        counters: dict[int, CounterSet] | None = None,
    ) -> Assignment:
        _check_inputs(tasks, cycles, config_names)
        if counters is None:
            raise ValueError("SmartScheduler requires baseline counters")
        if len(tasks) != len(config_names):
            raise ValueError(
                "one-to-one scheduling needs as many servers as tasks "
                f"({len(tasks)} tasks, {len(config_names)} servers)"
            )
        with obs.span("schedule", scheduler=self.name, tasks=len(tasks)):
            with obs.span("schedule.affinity", tasks=len(tasks)):
                score = np.zeros((len(tasks), len(config_names)))
                for i, task in enumerate(tasks):
                    scores = affinity_scores(counters[task.task_id])
                    for j, name in enumerate(config_names):
                        score[i, j] = scores.get(name, 0.0)
                # Deterministic tie-break: among equal-score assignments
                # prefer lower task then lower config index, so identical
                # inputs always yield identical placements.
                score -= 1e-9 * (
                    np.arange(len(tasks))[:, None] * len(config_names)
                    + np.arange(len(config_names))[None, :]
                )
            with obs.span("schedule.assign", algorithm="hungarian"):
                rows, cols = linear_sum_assignment(-score)  # maximize
            placement = {
                tasks[i].task_id: config_names[j] for i, j in zip(rows, cols)
            }
            task_cycles = {
                tid: cycles[tid][cfg] for tid, cfg in placement.items()
            }
        return _observe_schedule(
            Assignment(
                scheduler=self.name,
                placement=placement,
                task_cycles=task_cycles,
                baseline_cycles=dict(baseline_cycles),
            ),
            len(tasks),
        )


class BestScheduler:
    """Oracle: fastest configuration per task, no constraint."""

    name = "best"

    def schedule(
        self,
        tasks: list[TranscodeTask],
        cycles: dict[int, dict[str, float]],
        config_names: list[str],
        baseline_cycles: dict[int, float],
        counters: dict[int, CounterSet] | None = None,
    ) -> Assignment:
        _check_inputs(tasks, cycles, config_names)
        placement: dict[int, str] = {}
        with obs.span("schedule", scheduler=self.name, tasks=len(tasks)):
            for t in tasks:
                best = min(config_names, key=lambda c: cycles[t.task_id][c])
                with obs.span("schedule.place", scheduler=self.name,
                              task=t.task_id, config=best):
                    placement[t.task_id] = best
        task_cycles = {tid: cycles[tid][cfg] for tid, cfg in placement.items()}
        return _observe_schedule(
            Assignment(
                scheduler=self.name,
                placement=placement,
                task_cycles=task_cycles,
                baseline_cycles=dict(baseline_cycles),
            ),
            len(tasks),
        )
