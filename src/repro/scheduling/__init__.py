"""Smart transcoding-task scheduling across µarch configurations (§III-D2).

Streaming providers run fleets with heterogeneous server generations; the
paper shows that characterization-driven placement of transcoding tasks
onto the configuration that relieves each task's dominant bottleneck
recovers most of the oracle scheduler's benefit. This package implements
the paper's case study: the four Table III tasks, the four Table IV
configuration variants, and the random / smart / best schedulers of
Figure 9.
"""

from repro.scheduling.adaptive import (
    OperatingPoint,
    pareto_frontier,
    select_for_bandwidth,
    select_for_deadline,
)
from repro.scheduling.casestudy import CaseStudyResult, run_case_study
from repro.scheduling.schedulers import (
    Assignment,
    BestScheduler,
    RandomScheduler,
    SmartScheduler,
)
from repro.scheduling.task import TABLE_III_TASKS, TranscodeTask

__all__ = [
    "TranscodeTask",
    "TABLE_III_TASKS",
    "Assignment",
    "RandomScheduler",
    "SmartScheduler",
    "BestScheduler",
    "run_case_study",
    "CaseStudyResult",
    "OperatingPoint",
    "pareto_frontier",
    "select_for_bandwidth",
    "select_for_deadline",
]
