"""Zero-copy frame transport between the sweep parent and its workers.

Without this layer every worker process decodes its own copy of each
clip (deterministically, so results are identical — but at N x the
decode time and N x the plane memory for an N-worker pool). The
transport publishes each clip's planes once, from the parent, into
:mod:`multiprocessing.shared_memory` segments; forked workers attach
NumPy views directly onto the shared pages — no pickling, no per-worker
decode, one physical copy of every plane.

Design constraints, in order:

1. **Byte-identity** — a worker reading shared planes sees exactly the
   arrays the parent decoded (the synthetic decoder is deterministic, so
   the shm path and the per-worker-decode fallback produce identical
   sweep payloads; the equivalence test asserts it).
2. **Safe fallback** — any failure to create, publish, or attach a
   segment logs once (visibly, to stderr) and degrades to the historical
   per-worker decode. Shared memory is an optimization, never a
   correctness dependency.
3. **Clear ownership** — only the publishing (parent) process unlinks.
   Workers hold read-only views for their lifetime; their mappings die
   with them. The parent releases segments as soon as the worker pool
   they served has drained, plus a belt-and-braces ``atexit`` sweep.

The knob: ``Settings.shm`` / ``REPRO_SHM`` / ``--no-shm`` (default on).
"""

from __future__ import annotations

import atexit
import os
import sys
import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "cached_video",
    "configure",
    "enabled",
    "fetch",
    "publish_video",
    "release",
    "release_all",
    "transport_stats",
]

_TRUTHY = ("1", "true", "yes", "on")

#: Process-wide override installed by ``Settings.apply`` / ``configure``;
#: ``None`` defers to the ``REPRO_SHM`` environment variable.
_enabled: bool | None = None

#: Clip key -> published segment. Forked workers inherit this registry
#: (and the parent's mappings) copy-on-write, which is what lets them
#: attach without any name exchange.
_SEGMENTS: dict[tuple, "_Segment"] = {}

#: Per-process cache of attached (worker-side) frame sequences.
_ATTACHED: dict[tuple, object] = {}

#: Process-wide decoded-clip cache for the service layer (see
#: :func:`cached_video`).
_DECODE_CACHE: dict[tuple, object] = {}

#: Warned failure categories (once per process).
_warned: set[str] = set()


@dataclass
class _Segment:
    shm: object  # multiprocessing.shared_memory.SharedMemory
    owner_pid: int
    clip: str
    fps: float
    n_frames: int
    height: int
    width: int
    has_chroma: bool
    chroma_h: int
    chroma_w: int


def configure(enabled: bool | None = None) -> None:
    """Install a process-wide on/off override (``None`` = env fallback)."""
    global _enabled
    _enabled = enabled


def enabled() -> bool:
    """Whether frame publishing is on (override > ``REPRO_SHM`` > on)."""
    if _enabled is not None:
        return _enabled
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if raw:
        return raw in _TRUTHY
    return True


def _warn_once(category: str, message: str) -> None:
    if category in _warned:
        return
    _warned.add(category)
    text = f"shared-memory transport: {message}; falling back to per-worker decode"
    warnings.warn(text, UserWarning, stacklevel=3)
    print(f"repro.experiments.transport: {text}", file=sys.stderr)


def publish_video(key: tuple, video) -> bool:
    """Copy one decoded clip's planes into a shared segment.

    ``key`` is the sweep engine's clip-cache key ``(name, width, height,
    n_frames)``; ``video`` a :class:`~repro.video.frame.FrameSequence`.
    Returns ``True`` on success; on any failure warns once and returns
    ``False`` (callers then rely on the historical per-worker decode).
    """
    if key in _SEGMENTS:
        return True
    try:
        from multiprocessing import shared_memory

        frames = video.frames
        n = len(frames)
        h, w = frames[0].luma.shape
        chroma = frames[0].chroma
        has_chroma = chroma is not None
        if any((f.chroma is not None) != has_chroma for f in frames):
            raise ValueError("mixed chroma presence across frames")
        ch, cw = chroma[0].shape if has_chroma else (0, 0)
        luma_bytes = n * h * w
        total = luma_bytes + (2 * n * ch * cw if has_chroma else 0)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = np.frombuffer(shm.buf, dtype=np.uint8)
        lumas = buf[:luma_bytes].reshape(n, h, w)
        for i, frame in enumerate(frames):
            lumas[i] = frame.luma
        if has_chroma:
            plane = n * ch * cw
            cb = buf[luma_bytes : luma_bytes + plane].reshape(n, ch, cw)
            cr = buf[luma_bytes + plane : luma_bytes + 2 * plane].reshape(
                n, ch, cw
            )
            for i, frame in enumerate(frames):
                cb[i], cr[i] = frame.chroma  # type: ignore[misc]
        del lumas, buf  # drop exported views so release() can close
        if has_chroma:
            del cb, cr
        _SEGMENTS[key] = _Segment(
            shm=shm,
            owner_pid=os.getpid(),
            clip=str(video.name),
            fps=float(video.fps),
            n_frames=n,
            height=h,
            width=w,
            has_chroma=has_chroma,
            chroma_h=ch,
            chroma_w=cw,
        )
        return True
    except Exception as exc:
        _warn_once("publish", f"publishing {key[0]!r} failed ({exc})")
        return False


def fetch(key: tuple):
    """A zero-copy :class:`FrameSequence` over a published segment.

    Only meaningful in a forked worker (the publisher keeps using its own
    decoded copy); returns ``None`` when nothing was published for
    ``key``, the caller *is* the publisher, or attaching fails — callers
    then decode normally.
    """
    seg = _SEGMENTS.get(key)
    if seg is None or seg.owner_pid == os.getpid():
        return None
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached
    try:
        from repro.video.frame import Frame, FrameSequence

        n, h, w = seg.n_frames, seg.height, seg.width
        buf = np.frombuffer(seg.shm.buf, dtype=np.uint8)
        luma_bytes = n * h * w
        lumas = buf[:luma_bytes].reshape(n, h, w)
        lumas.flags.writeable = False
        chroma_pairs: list = [None] * n
        if seg.has_chroma:
            plane = n * seg.chroma_h * seg.chroma_w
            cb = buf[luma_bytes : luma_bytes + plane].reshape(
                n, seg.chroma_h, seg.chroma_w
            )
            cr = buf[luma_bytes + plane : luma_bytes + 2 * plane].reshape(
                n, seg.chroma_h, seg.chroma_w
            )
            cb.flags.writeable = False
            cr.flags.writeable = False
            chroma_pairs = [(cb[i], cr[i]) for i in range(n)]
        video = FrameSequence(
            frames=[
                Frame(luma=lumas[i], chroma=chroma_pairs[i]) for i in range(n)
            ],
            fps=seg.fps,
            name=seg.clip,
        )
        _ATTACHED[key] = video
        return video
    except Exception as exc:
        _warn_once("attach", f"attaching {key[0]!r} failed ({exc})")
        return None


def release(keys) -> None:
    """Close and unlink the given published segments (publisher only)."""
    for key in list(keys):
        seg = _SEGMENTS.pop(key, None)
        if seg is None or seg.owner_pid != os.getpid():
            continue
        try:
            seg.shm.close()
            seg.shm.unlink()
        except Exception:
            # Best effort: a leaked segment is reclaimed by the resource
            # tracker at process exit; never fail a finished sweep here.
            pass


def release_all() -> None:
    """Release every segment this process published."""
    release(tuple(_SEGMENTS))


def cached_video(name: str, *, width: int, height: int, n_frames: int):
    """Process-wide decoded-clip cache with a shared-memory fast path.

    The service layer routes its per-request decodes here: repeated
    service instances (serve + its random-placement control, loadtest
    legs, fleet comparisons) share one decoded copy per clip geometry,
    and a forked child of a sweep parent that already published the clip
    attaches the shared planes instead of decoding at all.
    """
    key = (name, width, height, n_frames)
    video = _DECODE_CACHE.get(key)
    if video is None:
        video = fetch(key)
        if video is None:
            from repro.video.vbench import load_video

            video = load_video(
                name, width=width, height=height, n_frames=n_frames
            )
        _DECODE_CACHE[key] = video
    return video


def transport_stats() -> dict[str, int]:
    """Counts of live published/attached segments (for tests and debug)."""
    return {
        "published": sum(
            1 for s in _SEGMENTS.values() if s.owner_pid == os.getpid()
        ),
        "inherited": sum(
            1 for s in _SEGMENTS.values() if s.owner_pid != os.getpid()
        ),
        "attached": len(_ATTACHED),
        "decoded": len(_DECODE_CACHE),
    }


atexit.register(release_all)
