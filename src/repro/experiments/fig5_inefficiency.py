"""Figure 5: microarchitectural-resource inefficiency across crf x refs.

Eight heatmaps over the same grid as Figure 3: (a) branch MPKI, (b-d)
L1/L2/L3 data-cache MPKI, (e-h) resource stalls (any / ROB / RS / SB).
Headline shapes: branch MPKI *falls* as crf or refs grow; cache MPKI and
ROB/RS stalls *rise*; the store buffer is the exception — its stalls fall
as refs grows (better compression means fewer stores per instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.report import ascii_heatmap
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner

__all__ = ["Fig5Result", "run", "PANELS"]

#: (panel key, CounterSet attribute, title)
PANELS = (
    ("branch", "branch_mpki", "(a) Branch MPKI"),
    ("l1", "l1d_mpki", "(b) L1 data cache MPKI"),
    ("l2", "l2_mpki", "(c) L2 cache MPKI"),
    ("l3", "l3_mpki", "(d) L3 cache MPKI"),
    ("any", "stall_any_pki", "(e) Resource stalls - Any (cycles/KI)"),
    ("rob", "stall_rob_pki", "(f) Resource stalls - ROB (cycles/KI)"),
    ("rs", "stall_rs_pki", "(g) Resource stalls - RS (cycles/KI)"),
    ("sb", "stall_sb_pki", "(h) Resource stalls - SB (cycles/KI)"),
)


@dataclass
class Fig5Result:
    crf_values: tuple[int, ...]
    refs_values: tuple[int, ...]
    grids: dict[str, np.ndarray] = field(default_factory=dict)

    def trend_along_crf(self, panel: str, refs_index: int = 0) -> float:
        """Last-minus-first value along crf at a fixed refs row."""
        grid = self.grids[panel]
        return float(grid[refs_index, -1] - grid[refs_index, 0])

    def trend_along_refs(self, panel: str, crf_index: int | None = None) -> float:
        """Last-minus-first value along refs at a fixed crf column."""
        grid = self.grids[panel]
        j = crf_index if crf_index is not None else grid.shape[1] // 2
        return float(grid[-1, j] - grid[0, j])

    def render(self) -> str:
        kwargs = dict(
            row_labels=[f"refs={r}" for r in self.refs_values],
            col_labels=list(self.crf_values),
        )
        parts = ["Figure 5 — µarch resource inefficiency (rows: refs, cols: crf)"]
        for key, _attr, title in PANELS:
            parts.append("")
            parts.append(
                ascii_heatmap(self.grids[key], title=title, value_fmt=".2f", **kwargs)
            )
        return "\n".join(parts)


def run(scale: ExperimentScale = QUICK) -> Fig5Result:
    runner = shared_runner(scale)
    records = runner.crf_refs_sweep()
    by_key = {(r.crf, r.refs): r.counters for r in records}
    shape = (len(scale.refs_values), len(scale.crf_values))
    result = Fig5Result(crf_values=scale.crf_values, refs_values=scale.refs_values)
    for key, attr, _title in PANELS:
        grid = np.zeros(shape)
        for i, refs in enumerate(scale.refs_values):
            for j, crf in enumerate(scale.crf_values):
                grid[i, j] = getattr(by_key[(crf, refs)], attr)
        result.grids[key] = grid
    return result
