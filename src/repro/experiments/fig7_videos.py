"""Figure 7: profiling across the vbench videos (medium, crf=23, refs=3).

Videos are grouped by resolution and ordered by entropy within each
group, exactly like the paper's x-axis. Headline shapes: rising entropy
raises front-end and bad-speculation bound slots and branch MPKI, and
lowers back-end bound slots and data-cache MPKI (complex videos have
higher operational intensity under the same quality constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import series_table
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner
from repro.profiling.counters import CounterSet
from repro.video.vbench import video_info

__all__ = ["Fig7Result", "run", "entropy_correlation"]


def _paper_order(names: tuple[str, ...]) -> list[str]:
    """Group by resolution label, then sort each group by entropy."""
    infos = [video_info(n) for n in names]
    groups: dict[str, list] = {}
    for info in infos:
        groups.setdefault(info.resolution_label, []).append(info)
    ordered = []
    for label in sorted(groups, key=lambda s: int(s[:-1])):
        ordered.extend(sorted(groups[label], key=lambda i: i.entropy))
    return [i.short_name for i in ordered]


def entropy_correlation(entropies: list[float], values: list[float]) -> float:
    """Pearson correlation between entropy and a counter series."""
    if len(entropies) != len(values) or len(entropies) < 3:
        raise ValueError("need >= 3 paired points")
    return float(np.corrcoef(entropies, values)[0, 1])


@dataclass
class Fig7Result:
    videos: tuple[str, ...]  # paper order
    counters: dict[str, CounterSet]

    def series(self, attr: str) -> list[float]:
        return [getattr(self.counters[v], attr) for v in self.videos]

    def entropies(self) -> list[float]:
        return [video_info(v).entropy for v in self.videos]

    def correlation(self, attr: str) -> float:
        return entropy_correlation(self.entropies(), self.series(attr))

    def render(self) -> str:
        xs = [
            f"{v}({video_info(v).resolution_label},H={video_info(v).entropy:g})"
            for v in self.videos
        ]
        a = series_table(
            "video",
            xs,
            {
                "FE%": self.series("frontend_bound"),
                "BE%": self.series("backend_bound"),
                "BS%": self.series("bad_speculation"),
            },
        )
        b = series_table(
            "video",
            xs,
            {
                "branch": self.series("branch_mpki"),
                "L1d": self.series("l1d_mpki"),
                "L2": self.series("l2_mpki"),
                "L3": self.series("l3_mpki"),
            },
        )
        c = series_table(
            "video",
            xs,
            {
                "any": self.series("stall_any_pki"),
                "ROB": self.series("stall_rob_pki"),
                "RS": self.series("stall_rs_pki"),
                "SB": self.series("stall_sb_pki"),
            },
        )
        corr = (
            f"entropy correlations: BS%={self.correlation('bad_speculation'):+.2f} "
            f"BE%={self.correlation('backend_bound'):+.2f} "
            f"branchMPKI={self.correlation('branch_mpki'):+.2f}"
        )
        return (
            "Figure 7 — across videos (medium, crf=23, refs=3)\n"
            "(a) top-down bound slots (%)\n" + a +
            "\n\n(b) branch & cache MPKI\n" + b +
            "\n\n(c) resource stalls (cycles/KI)\n" + c +
            "\n\n" + corr
        )


def run(scale: ExperimentScale = QUICK) -> Fig7Result:
    runner = shared_runner(scale)
    order = _paper_order(scale.videos)
    records = {r.video: r for r in runner.video_sweep()}
    counters = {v: records[v].counters for v in order}
    return Fig7Result(videos=tuple(order), counters=counters)
