"""Figure 8: AutoFDO and Graphite speedups per video.

Methodology mirrors §III-D1: AutoFDO trains on transcodes of a few
representative clips (profiles collected with the tracer — our ``perf``),
the binary is "recompiled" with the profile, and each video is then
measured over a set of (crf, refs, preset) combinations; the reported
number is the average speedup per video. Graphite is a plain recompile
with the polyhedral flags. Paper numbers: AutoFDO 4.66% average (max
5.2%), Graphite 4.42% average (max 4.87%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import format_table
from repro.codec.encoder import Encoder
from repro.codec.presets import preset_options
from repro.experiments import parallel
from repro.experiments.cache import content_key
from repro.experiments.runner import ExperimentScale, QUICK
from repro.obs import session as obs
from repro.optim import build_autofdo, build_default, build_graphite, collect_profile
from repro.optim.pipeline import Build
from repro.profiling.perf import profile_transcode
from repro.trace.recorder import RecordingTracer
from repro.video.vbench import load_video

__all__ = ["Fig8Result", "run", "PARAM_COMBOS"]

#: The (crf, refs, preset) combinations each video is measured over; the
#: paper averages 32 — the scale's ``fig8_combos`` selects a prefix.
PARAM_COMBOS: tuple[tuple[int, int, str], ...] = (
    (23, 3, "medium"),
    (35, 2, "veryfast"),
    (12, 4, "fast"),
    (28, 8, "slow"),
    (18, 1, "superfast"),
    (40, 2, "medium"),
    (8, 6, "slower"),
    (32, 3, "faster"),
    (5, 2, "fast"),
    (45, 1, "veryfast"),
    (26, 16, "veryslow"),
    (15, 3, "medium"),
    (21, 5, "slow"),
    (38, 2, "fast"),
    (10, 8, "slower"),
    (30, 1, "ultrafast"),
    (24, 2, "faster"),
    (33, 6, "slow"),
    (7, 3, "medium"),
    (42, 4, "fast"),
    (19, 2, "veryfast"),
    (27, 12, "veryslow"),
    (14, 1, "superfast"),
    (36, 3, "medium"),
    (22, 8, "slower"),
    (11, 2, "fast"),
    (47, 3, "veryfast"),
    (25, 4, "slow"),
    (17, 6, "slower"),
    (29, 2, "medium"),
    (9, 1, "faster"),
    (34, 16, "veryslow"),
)

#: Training clips for the AutoFDO profile (representative, per §III-D1).
_TRAIN_VIDEOS = ("cricket", "desktop", "holi")


@dataclass
class Fig8Result:
    videos: tuple[str, ...]
    autofdo_speedup_pct: dict[str, float]
    graphite_speedup_pct: dict[str, float]

    @property
    def autofdo_average(self) -> float:
        return float(np.mean(list(self.autofdo_speedup_pct.values())))

    @property
    def graphite_average(self) -> float:
        return float(np.mean(list(self.graphite_speedup_pct.values())))

    @property
    def autofdo_max(self) -> float:
        return float(max(self.autofdo_speedup_pct.values()))

    @property
    def graphite_max(self) -> float:
        return float(max(self.graphite_speedup_pct.values()))

    def render(self) -> str:
        rows = [
            [v, self.autofdo_speedup_pct[v], self.graphite_speedup_pct[v]]
            for v in self.videos
        ]
        rows.append(["AVERAGE", self.autofdo_average, self.graphite_average])
        table = format_table(["video", "AutoFDO %", "Graphite %"], rows)
        return (
            "Figure 8 — compiler-optimization speedups per video\n"
            + table
            + f"\n\npaper: AutoFDO avg 4.66% (max 5.2%); "
            f"Graphite avg 4.42% (max 4.87%)\n"
            f"ours : AutoFDO avg {self.autofdo_average:.2f}% "
            f"(max {self.autofdo_max:.2f}%); "
            f"Graphite avg {self.graphite_average:.2f}% "
            f"(max {self.graphite_max:.2f}%)"
        )


def _train_profile(scale: ExperimentScale):
    """Collect the AutoFDO training profile (the ``perf record`` step)."""
    streams = []
    for name in _TRAIN_VIDEOS:
        video = load_video(
            name, width=scale.width, height=scale.height,
            n_frames=max(scale.n_frames // 2, 4),
        )
        build = build_default()
        tracer = RecordingTracer(build.program)
        Encoder(preset_options("medium", crf=23, refs=3), tracer=tracer).encode(video)
        streams.append(tracer.stream)
    return collect_profile(streams)


@dataclass(frozen=True)
class _VideoTask:
    """One video's measurement job, shippable to a worker process."""

    scale: ExperimentScale
    video: str
    combos: tuple[tuple[int, int, str], ...]
    fdo_build: Build
    graphite_build: Build


def _video_key(scale: ExperimentScale, video: str,
               combos: tuple[tuple[int, int, str], ...]) -> str:
    return content_key(
        "fig8",
        video={
            "name": video,
            "width": scale.width,
            "height": scale.height,
            "n_frames": scale.n_frames,
        },
        combos=[list(c) for c in combos],
        train_videos=list(_TRAIN_VIDEOS),
        train_n_frames=max(scale.n_frames // 2, 4),
        sim={"data_capacity_scale": scale.data_capacity_scale},
    )


def _measure_video(task: _VideoTask) -> tuple[str, float, float]:
    """Average AutoFDO/Graphite speedups for one video over the combos."""
    scale = task.scale
    video = load_video(
        task.video, width=scale.width, height=scale.height,
        n_frames=scale.n_frames,
    )
    fdo_speedups = []
    g_speedups = []
    for crf, refs, preset in task.combos:
        opts = preset_options(preset, crf=crf, refs=refs)
        base = profile_transcode(
            video, opts, data_capacity_scale=scale.data_capacity_scale
        )
        fdo = profile_transcode(
            video, opts, program=task.fdo_build.program,
            data_capacity_scale=scale.data_capacity_scale,
        )
        gr = profile_transcode(
            video, opts, program=task.graphite_build.program,
            loop_opts=task.graphite_build.loop_opts,
            data_capacity_scale=scale.data_capacity_scale,
        )
        fdo_speedups.append((base.report.cycles / fdo.report.cycles - 1) * 100)
        g_speedups.append((base.report.cycles / gr.report.cycles - 1) * 100)
    return task.video, float(np.mean(fdo_speedups)), float(np.mean(g_speedups))


def run(scale: ExperimentScale = QUICK) -> Fig8Result:
    combos = PARAM_COMBOS[: max(scale.fig8_combos, 1)]
    videos = scale.fig8_videos if scale.fig8_videos else scale.videos
    cache = parallel.default_cache()

    autofdo: dict[str, float] = {}
    graphite: dict[str, float] = {}
    missing: list[str] = []
    for name in videos:
        payload = cache.get_value(_video_key(scale, name, combos)) if cache else None
        if isinstance(payload, dict) and {"autofdo", "graphite"} <= set(payload):
            obs.inc("fig8.cache_hits")
            autofdo[name] = float(payload["autofdo"])  # type: ignore[arg-type]
            graphite[name] = float(payload["graphite"])  # type: ignore[arg-type]
        else:
            missing.append(name)

    if missing:
        # Training (and the Graphite recompile) only happen on a miss, so
        # a cache-warm run does zero encodes.
        fdo_build = build_autofdo(_train_profile(scale))
        graphite_build = build_graphite()
        tasks = [
            _VideoTask(
                scale=scale, video=name, combos=combos,
                fdo_build=fdo_build, graphite_build=graphite_build,
            )
            for name in missing
        ]
        for name, fdo_pct, g_pct in parallel.fan_out(
            _measure_video, tasks, label="fig8"
        ):
            autofdo[name] = fdo_pct
            graphite[name] = g_pct
            if cache is not None:
                cache.put_value(
                    _video_key(scale, name, combos),
                    {"autofdo": fdo_pct, "graphite": g_pct},
                    kind="fig8",
                )
    return Fig8Result(
        videos=tuple(videos),
        autofdo_speedup_pct=autofdo,
        graphite_speedup_pct=graphite,
    )
