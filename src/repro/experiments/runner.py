"""Sweep engine: parameter grids, proxy scaling, and result caching.

The paper's §III-C sweeps are expensive (816 crf x refs combinations);
this runner executes them at configurable proxy scale and memoizes
completed runs in-process, so the figure/benchmark modules that share a
sweep (Fig 3, 4, 5 all use the crf x refs grid) only pay for it once per
session.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codec.options import EncoderOptions
from repro.codec.presets import preset_options
from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.profiling.perf import profile_transcode
from repro.video.vbench import load_video

__all__ = ["ExperimentScale", "SweepRecord", "SweepRunner", "QUICK", "MEDIUM", "FULL"]


@dataclass(frozen=True)
class ExperimentScale:
    """Proxy sizing knobs for every experiment."""

    name: str = "quick"
    width: int = 112
    height: int = 64
    n_frames: int = 12
    crf_values: tuple[int, ...] = (1, 10, 23, 32, 40, 51)
    refs_values: tuple[int, ...] = (1, 2, 4, 8)
    sweep_video: str = "cricket"
    videos: tuple[str, ...] = (
        "desktop",
        "presentation",
        "bike",
        "funny",
        "cricket",
        "house",
        "game1",
        "game2",
        "girl",
        "chicken",
        "game3",
        "cat",
        "holi",
        "landscape",
        "hall",
        "bbb",
    )
    data_capacity_scale: float = 48.0
    sample: int = 1
    # Parameter combinations per video for the Fig. 8 compiler study
    # (the paper averages 32 combos; quick mode uses fewer).
    fig8_combos: int = 4
    fig8_videos: tuple[str, ...] = ()  # empty = all of `videos`

    def with_updates(self, **changes: object) -> "ExperimentScale":
        return replace(self, **changes)  # type: ignore[arg-type]


QUICK = ExperimentScale()

MEDIUM = ExperimentScale(
    name="medium",
    width=160,
    height=96,
    n_frames=16,
    crf_values=(1, 5, 10, 16, 23, 28, 32, 36, 40, 45, 51),
    refs_values=(1, 2, 3, 4, 6, 8, 12, 16),
    fig8_combos=8,
)

FULL = ExperimentScale(
    name="full",
    width=160,
    height=96,
    n_frames=24,
    crf_values=tuple(range(1, 52)),
    refs_values=tuple(range(1, 17)),
    fig8_combos=32,
)

SCALES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}


@dataclass(frozen=True)
class SweepRecord:
    """One profiled point of a sweep."""

    video: str
    crf: int
    refs: int
    preset: str
    counters: CounterSet

    def as_row(self) -> dict[str, float | int | str]:
        row: dict[str, float | int | str] = {
            "video": self.video,
            "crf": self.crf,
            "refs": self.refs,
            "preset": self.preset,
        }
        row.update(self.counters.as_dict())
        return row


class SweepRunner:
    """Executes and memoizes profiled transcodes for one scale."""

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self._video_cache: dict[str, object] = {}
        self._run_cache: dict[tuple, SweepRecord] = {}

    # ------------------------------------------------------------------
    def _video(self, name: str):
        if name not in self._video_cache:
            self._video_cache[name] = load_video(
                name,
                width=self.scale.width,
                height=self.scale.height,
                n_frames=self.scale.n_frames,
            )
        return self._video_cache[name]

    def profile(
        self,
        video: str,
        *,
        crf: int,
        refs: int,
        preset: str = "medium",
        options: EncoderOptions | None = None,
    ) -> SweepRecord:
        """Profile one (video, crf, refs, preset) point, memoized."""
        key = (video, crf, refs, preset, options.describe() if options else None)
        if key in self._run_cache:
            obs.inc("sweep.cache_hits")
            return self._run_cache[key]
        obs.inc("sweep.profiles")
        opts = (
            options
            if options is not None
            else preset_options(preset, crf=crf, refs=refs)
        )
        with obs.span(
            "sweep.point", video=video, crf=crf, refs=refs, preset=preset
        ):
            result = profile_transcode(
                self._video(video),
                opts,
                sample=self.scale.sample,
                data_capacity_scale=self.scale.data_capacity_scale,
            )
        record = SweepRecord(
            video=video, crf=crf, refs=refs, preset=preset, counters=result.counters
        )
        self._run_cache[key] = record
        return record

    # ------------------------------------------------------------------
    def crf_refs_sweep(self, video: str | None = None) -> list[SweepRecord]:
        """The Fig 3/4/5 grid: every (crf, refs) combination."""
        name = video if video is not None else self.scale.sweep_video
        return [
            self.profile(name, crf=crf, refs=refs)
            for crf in self.scale.crf_values
            for refs in self.scale.refs_values
        ]

    def preset_sweep(self, video: str | None = None) -> list[SweepRecord]:
        """The Fig 6 series: all ten presets at crf=23, refs=3."""
        from repro.codec.presets import PRESET_NAMES

        name = video if video is not None else self.scale.sweep_video
        return [
            self.profile(
                name,
                crf=23,
                refs=3,
                preset=preset,
                options=preset_options(preset, crf=23, refs=3),
            )
            for preset in PRESET_NAMES
        ]

    def video_sweep(self) -> list[SweepRecord]:
        """The Fig 7 series: every video, medium preset, crf=23 refs=3."""
        return [
            self.profile(name, crf=23, refs=3, preset="medium")
            for name in self.scale.videos
        ]


_RUNNERS: dict[str, SweepRunner] = {}


def shared_runner(scale: ExperimentScale) -> SweepRunner:
    """Process-wide runner per scale so figures share sweep results."""
    key = scale.name
    runner = _RUNNERS.get(key)
    if runner is None or runner.scale != scale:
        runner = SweepRunner(scale)
        _RUNNERS[key] = runner
    return runner
