"""Sweep engine: parameter grids, proxy scaling, and result caching.

The paper's §III-C sweeps are expensive (816 crf x refs combinations);
this runner executes them at configurable proxy scale through a single
cache-then-compute path with three layers:

1. an in-process memo, so the figure/benchmark modules that share a
   sweep (Fig 3, 4, 5 all use the crf x refs grid) only pay for it once
   per session;
2. an optional persistent :class:`~repro.experiments.cache.ResultCache`
   keyed by a content hash of (repro version, options, video spec,
   simulation knobs, µarch config), so repeat runs across processes are
   near-free;
3. a fault-tolerant :func:`~repro.experiments.parallel.run_tasks`
   fan-out of the remaining misses across worker processes when the
   engine is configured with more than one job.

Every grid method funnels through :meth:`SweepRunner.run_points`, which
is what makes serial and parallel execution provably identical: both
paths run :func:`compute_point` on the same specs in the same order.

Fault tolerance (PR 3): per-cell work retries under the engine's
:class:`~repro.resilience.retry.RetryPolicy`; successes are stored to
the memo, the persistent cache, *and* a periodic
:class:`~repro.resilience.checkpoint.SweepCheckpoint` manifest as they
stream in, so an interrupted campaign — crashed worker pool, SIGKILLed
parent, permanently-failing cell — keeps its completed cells. Cells
that exhaust their retry budget are summarized in a
:class:`SweepFailure` (the CLI reports them in ``run.json`` and exits
nonzero) instead of aborting the sweep at the first error, and
``--resume`` restores completed cells from the manifest so only the
missing ones recompute.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

from repro import resilience
from repro.codec.options import EncoderOptions
from repro.codec.presets import preset_options
from repro.experiments import parallel, transport
from repro.experiments.cache import (
    ResultCache,
    SweepRecord,
    content_key,
    record_from_payload,
    record_to_payload,
)
from repro.obs import session as obs
from repro.profiling.perf import profile_transcode
from repro.resilience.checkpoint import SweepCheckpoint, sweep_id
from repro.resilience.faults import InjectedFault, fault_point
from repro.uarch.configs import baseline_config
from repro.video.vbench import load_video

__all__ = [
    "CellFailure",
    "ExperimentScale",
    "PointSpec",
    "SweepFailure",
    "SweepRecord",
    "SweepRunner",
    "QUICK",
    "MEDIUM",
    "FULL",
    "compute_point",
    "shared_runner",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Proxy sizing knobs for every experiment."""

    name: str = "quick"
    width: int = 112
    height: int = 64
    n_frames: int = 12
    crf_values: tuple[int, ...] = (1, 10, 23, 32, 40, 51)
    refs_values: tuple[int, ...] = (1, 2, 4, 8)
    sweep_video: str = "cricket"
    videos: tuple[str, ...] = (
        "desktop",
        "presentation",
        "bike",
        "funny",
        "cricket",
        "house",
        "game1",
        "game2",
        "girl",
        "chicken",
        "game3",
        "cat",
        "holi",
        "landscape",
        "hall",
        "bbb",
    )
    data_capacity_scale: float = 48.0
    sample: int = 1
    # Parameter combinations per video for the Fig. 8 compiler study
    # (the paper averages 32 combos; quick mode uses fewer).
    fig8_combos: int = 4
    fig8_videos: tuple[str, ...] = ()  # empty = all of `videos`

    def with_updates(self, **changes: object) -> "ExperimentScale":
        """Return a copy with the given fields replaced.

        Unknown field names raise ``ValueError`` up front (``replace``
        alone only fails at construction time with a less helpful
        ``TypeError``)."""
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ValueError(
                f"unknown ExperimentScale field(s): {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        return replace(self, **changes)  # type: ignore[arg-type]


QUICK = ExperimentScale()

MEDIUM = ExperimentScale(
    name="medium",
    width=160,
    height=96,
    n_frames=16,
    crf_values=(1, 5, 10, 16, 23, 28, 32, 36, 40, 45, 51),
    refs_values=(1, 2, 3, 4, 6, 8, 12, 16),
    fig8_combos=8,
)

FULL = ExperimentScale(
    name="full",
    width=160,
    height=96,
    n_frames=24,
    crf_values=tuple(range(1, 52)),
    refs_values=tuple(range(1, 17)),
    fig8_combos=32,
)

SCALES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}


# ----------------------------------------------------------------------
# One sweep point: spec, compute function, per-process video cache.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointSpec:
    """Everything that determines one profiled sweep point."""

    scale: ExperimentScale
    video: str
    crf: int
    refs: int
    preset: str
    options: EncoderOptions

    def memo_key(self) -> tuple:
        return (self.video, self.crf, self.refs, self.preset, self.options)

    def cache_key(self) -> str:
        """Content hash over everything that can change the result."""
        scale = self.scale
        return content_key(
            "sweep",
            video={
                "name": self.video,
                "width": scale.width,
                "height": scale.height,
                "n_frames": scale.n_frames,
            },
            options=self.options,
            sim={
                "sample": scale.sample,
                "data_capacity_scale": scale.data_capacity_scale,
            },
            config=baseline_config(),
        )


#: Per-process decoded-clip cache. Worker processes forked mid-sweep
#: inherit the parent's entries copy-on-write for free.
_VIDEO_CACHE: dict[tuple[str, int, int, int], object] = {}


def _load_video_cached(scale: ExperimentScale, name: str):
    key = (name, scale.width, scale.height, scale.n_frames)
    if key not in _VIDEO_CACHE:
        # Workers forked from a publishing parent attach the shared
        # planes instead of decoding; everyone else decodes normally
        # (fetch returns None in the publishing process itself).
        video = transport.fetch(key)
        if video is None:
            video = load_video(
                name,
                width=scale.width,
                height=scale.height,
                n_frames=scale.n_frames,
            )
        _VIDEO_CACHE[key] = video
    return _VIDEO_CACHE[key]


def compute_point(spec: PointSpec) -> SweepRecord:
    """Profile one sweep point from scratch.

    Module-level (not a method) so the parallel engine can ship it to
    worker processes; serial and parallel execution share this exact
    code path.
    """
    fault_point(
        "sweep.compute",
        detail=f"{spec.video}:crf={spec.crf}:refs={spec.refs}:preset={spec.preset}",
    )
    obs.inc("sweep.profiles")
    with obs.span(
        "sweep.point",
        video=spec.video,
        crf=spec.crf,
        refs=spec.refs,
        preset=spec.preset,
    ):
        result = profile_transcode(
            _load_video_cached(spec.scale, spec.video),
            spec.options,
            sample=spec.scale.sample,
            data_capacity_scale=spec.scale.data_capacity_scale,
        )
    return SweepRecord(
        video=spec.video,
        crf=spec.crf,
        refs=spec.refs,
        preset=spec.preset,
        counters=result.counters,
    )


# ----------------------------------------------------------------------
# Partial-result reporting.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CellFailure:
    """One sweep cell that exhausted its retry budget."""

    video: str
    crf: int
    refs: int
    preset: str
    key: str          # the cell's cache key (what --resume retries)
    error: str        # exception class name
    message: str
    attempts: int

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


class SweepFailure(RuntimeError):
    """A sweep finished with some cells permanently failed.

    Raised *after* every computable cell completed and was stored, so
    a follow-up ``--resume`` run only re-executes the failed cells. The
    CLI turns this into a partial-result ``run.json`` (``status:
    "partial"`` plus a ``failures`` list) and a nonzero exit code.
    """

    def __init__(
        self,
        label: str,
        failures: list[CellFailure],
        *,
        completed: int,
        resumed: int,
        total: int,
    ) -> None:
        self.label = label
        self.failures = failures
        self.completed = completed
        self.resumed = resumed
        self.total = total
        super().__init__(
            f"sweep {label!r}: {len(failures)}/{total} cells failed "
            f"({completed} completed, {resumed} restored from checkpoint)"
        )

    def failure_payloads(self) -> list[dict[str, object]]:
        return [f.as_dict() for f in self.failures]


# ----------------------------------------------------------------------
# The runner.
# ----------------------------------------------------------------------

class SweepRunner:
    """Executes profiled transcodes for one scale via the cache-then-
    compute path (memo -> persistent cache -> serial/parallel compute).

    ``jobs``/``cache`` left at ``None`` track the process-wide engine
    configuration (:func:`repro.experiments.parallel.configure`) at call
    time; pass ``cache=False`` to disable the persistent layer for this
    runner regardless of the engine default.
    """

    def __init__(
        self,
        scale: ExperimentScale,
        *,
        jobs: int | None = None,
        cache: ResultCache | bool | None = None,
    ) -> None:
        self.scale = scale
        self._jobs = jobs
        self._cache = cache
        self._run_cache: dict[tuple, SweepRecord] = {}

    @property
    def jobs(self) -> int:
        if self._jobs is None:
            return parallel.default_jobs()
        return max(self._jobs, 1)

    def cache(self) -> ResultCache | None:
        if self._cache is False:
            return None
        if self._cache is None:
            return parallel.default_cache()
        return self._cache  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _spec(
        self,
        video: str,
        *,
        crf: int,
        refs: int,
        preset: str = "medium",
        options: EncoderOptions | None = None,
    ) -> PointSpec:
        opts = (
            options
            if options is not None
            else preset_options(preset, crf=crf, refs=refs)
        )
        return PointSpec(
            scale=self.scale,
            video=video,
            crf=crf,
            refs=refs,
            preset=preset,
            options=opts,
        )

    def _lookup(self, spec: PointSpec) -> SweepRecord | None:
        """Memo hit, else persistent-cache hit (promoted to the memo)."""
        record = self._run_cache.get(spec.memo_key())
        if record is not None:
            obs.inc("sweep.cache_hits")
            return record
        disk = self.cache()
        if disk is not None:
            record = disk.get_record(spec.cache_key())
            if record is not None and (
                record.video == spec.video
                and record.crf == spec.crf
                and record.refs == spec.refs
                and record.preset == spec.preset
            ):
                obs.inc("sweep.disk_hits")
                self._run_cache[spec.memo_key()] = record
                return record
        return None

    def _store(self, spec: PointSpec, record: SweepRecord) -> None:
        self._run_cache[spec.memo_key()] = record
        disk = self.cache()
        if disk is not None:
            try:
                disk.put_record(spec.cache_key(), record)
            except (OSError, TimeoutError, ConnectionError, InjectedFault):
                # A cell we failed to persist is still a computed cell;
                # degrade to memo-only rather than failing the sweep.
                obs.inc("cache.write_giveups")
                obs.inc("sweep.disk_write_failures")
            else:
                obs.inc("sweep.disk_writes")

    def profile(
        self,
        video: str,
        *,
        crf: int,
        refs: int,
        preset: str = "medium",
        options: EncoderOptions | None = None,
    ) -> SweepRecord:
        """Profile one (video, crf, refs, preset) point, cached."""
        return self.run_points(
            [self._spec(video, crf=crf, refs=refs, preset=preset, options=options)]
        )[0]

    def _checkpoint_dir(self) -> Path | None:
        """Where sweep manifests live: the configured/env directory,
        else ``checkpoints/`` next to the persistent cache entries."""
        configured = resilience.checkpoint_root()
        if configured is not None:
            return configured
        disk = self.cache()
        if disk is not None:
            return disk.root / "checkpoints"
        return None

    def run_points(
        self, specs: list[PointSpec], *, label: str = "sweep"
    ) -> list[SweepRecord]:
        """Resolve every spec through cache-then-compute, in order.

        Misses are computed serially in-process under ``--jobs 1``, and
        sharded across worker processes otherwise (results merge back in
        spec order, so both paths return identical lists). Each miss is
        retried under the engine's retry policy and stored (memo, disk
        cache, checkpoint manifest) the moment it completes; with
        resume enabled, cells recorded complete in a previous run's
        manifest are restored instead of recomputed. Cells that exhaust
        their retries raise :class:`SweepFailure` *after* every other
        cell finished.
        """
        resolved: dict[tuple, SweepRecord] = {}
        misses: list[PointSpec] = []
        unique: list[PointSpec] = []
        seen: set[tuple] = set()
        for spec in specs:
            key = spec.memo_key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(spec)
            record = self._lookup(spec)
            if record is not None:
                resolved[key] = record
            else:
                misses.append(spec)
        if misses:
            self._run_misses(misses, unique, resolved, label=label)
        return [resolved[spec.memo_key()] for spec in specs]

    def _run_misses(
        self,
        misses: list[PointSpec],
        unique: list[PointSpec],
        resolved: dict[tuple, SweepRecord],
        *,
        label: str,
    ) -> None:
        total = len(unique)
        ckpt = self._open_checkpoint(unique, label)
        resumed = 0
        if ckpt is not None and resilience.resume_enabled() and ckpt.load():
            remaining: list[PointSpec] = []
            for spec in misses:
                record = self._restore_cell(ckpt, spec)
                if record is not None:
                    resolved[spec.memo_key()] = record
                    resumed += 1
                else:
                    remaining.append(spec)
            misses = remaining
            if resumed:
                obs.inc("sweep.resumed_cells", resumed)

        def _store_streaming(index: int, record: SweepRecord) -> None:
            spec = misses[index]
            self._store(spec, record)
            if ckpt is not None:
                ckpt.record_done(spec.cache_key(), record_to_payload(record))

        outcomes = []
        if misses:
            shared_keys = self._publish_shared_videos(misses)
            try:
                outcomes = parallel.run_tasks(
                    compute_point,
                    misses,
                    jobs=self.jobs,
                    label=label,
                    on_result=_store_streaming,
                )
            finally:
                transport.release(shared_keys)
        failures: list[CellFailure] = []
        for outcome in outcomes:
            spec = misses[outcome.index]
            if outcome.error is None:
                resolved[spec.memo_key()] = outcome.result  # type: ignore[assignment]
                continue
            failure = CellFailure(
                video=spec.video,
                crf=spec.crf,
                refs=spec.refs,
                preset=spec.preset,
                key=spec.cache_key(),
                error=type(outcome.error).__name__,
                message=str(outcome.error),
                attempts=outcome.attempts,
            )
            failures.append(failure)
            if ckpt is not None:
                ckpt.record_failed(failure.key, failure.as_dict())
        if failures:
            obs.inc("sweep.failed_cells", len(failures))
            if ckpt is not None:
                ckpt.flush()
            raise SweepFailure(
                label,
                failures,
                completed=total - resumed - len(failures),
                resumed=resumed,
                total=total,
            )
        if ckpt is not None:
            ckpt.discard()

    def _publish_shared_videos(self, misses: list[PointSpec]) -> tuple:
        """Publish each clip the worker pool will need into shared memory.

        Decoded planes deliberately bypass the parent's ``_VIDEO_CACHE``:
        forked workers then miss their inherited cache and attach the
        shared segment via :func:`transport.fetch` instead of decoding.
        Returns the published keys (released by the caller once the pool
        drains). With one job, transport disabled, or a publish failure
        the historical path runs unchanged — a failed clip lands in the
        parent cache so workers at least share it copy-on-write.
        """
        if self.jobs <= 1 or not transport.enabled():
            return ()
        published: list[tuple] = []
        seen: set[tuple] = set()
        for spec in misses:
            scale = spec.scale
            key = (spec.video, scale.width, scale.height, scale.n_frames)
            if key in seen or key in _VIDEO_CACHE:
                continue
            seen.add(key)
            video = load_video(
                spec.video,
                width=scale.width,
                height=scale.height,
                n_frames=scale.n_frames,
            )
            if transport.publish_video(key, video):
                published.append(key)
            else:
                _VIDEO_CACHE[key] = video
        if published:
            obs.inc("sweep.shm_clips", len(published))
        return tuple(published)

    def _open_checkpoint(
        self, unique: list[PointSpec], label: str
    ) -> SweepCheckpoint | None:
        root = self._checkpoint_dir()
        if root is None:
            return None
        # The sweep identity hashes every unique cell key (not just the
        # misses): an interrupted run and its resume then agree on the
        # manifest name no matter how many cells the cache already
        # serves, and distinct sweeps stay disjoint because cell keys
        # embed options, scale, and config.
        keys = sorted(spec.cache_key() for spec in unique)
        return SweepCheckpoint(
            root, sweep_id(label, keys), label=label, total=len(keys)
        )

    def _restore_cell(
        self, ckpt: SweepCheckpoint, spec: PointSpec
    ) -> SweepRecord | None:
        payload = ckpt.cells.get(spec.cache_key())
        if not isinstance(payload, dict):
            return None
        try:
            record = record_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if (
            record.video != spec.video
            or record.crf != spec.crf
            or record.refs != spec.refs
            or record.preset != spec.preset
        ):
            return None
        self._run_cache[spec.memo_key()] = record
        return record

    # ------------------------------------------------------------------
    def crf_refs_sweep(self, video: str | None = None) -> list[SweepRecord]:
        """The Fig 3/4/5 grid: every (crf, refs) combination."""
        name = video if video is not None else self.scale.sweep_video
        return self.run_points(
            [
                self._spec(name, crf=crf, refs=refs)
                for crf in self.scale.crf_values
                for refs in self.scale.refs_values
            ],
            label="crf_refs",
        )

    def preset_sweep(self, video: str | None = None) -> list[SweepRecord]:
        """The Fig 6 series: all ten presets at crf=23, refs=3."""
        from repro.codec.presets import PRESET_NAMES

        name = video if video is not None else self.scale.sweep_video
        return self.run_points(
            [
                self._spec(
                    name,
                    crf=23,
                    refs=3,
                    preset=preset,
                    options=preset_options(preset, crf=23, refs=3),
                )
                for preset in PRESET_NAMES
            ],
            label="presets",
        )

    def video_sweep(self) -> list[SweepRecord]:
        """The Fig 7 series: every video, medium preset, crf=23 refs=3."""
        return self.run_points(
            [
                self._spec(name, crf=23, refs=3, preset="medium")
                for name in self.scale.videos
            ],
            label="videos",
        )


_RUNNERS: dict[str, SweepRunner] = {}


def shared_runner(scale: ExperimentScale) -> SweepRunner:
    """Process-wide runner per scale so figures share sweep results."""
    key = scale.name
    runner = _RUNNERS.get(key)
    if runner is None or runner.scale != scale:
        runner = SweepRunner(scale)
        _RUNNERS[key] = runner
    return runner


# ----------------------------------------------------------------------
# Deprecated compatibility surface.
# ----------------------------------------------------------------------

#: Deprecation warnings already emitted by this module (once per symbol).
_warned_deprecations: set[str] = set()


def _deprecated_run(exp_id: str, scale: "ExperimentScale | str" = "quick") -> str:
    """Deprecated: drive an experiment through the runner module.

    Use :func:`repro.api.sweep` instead — it is the blessed entry point
    and also handles telemetry artifacts and settings.
    """
    from repro.api import sweep

    return sweep(exp_id, scale)


def __getattr__(name: str):
    if name == "run":
        if name not in _warned_deprecations:
            _warned_deprecations.add(name)
            import warnings

            warnings.warn(
                "calling experiments through repro.experiments.runner.run "
                "is deprecated; use repro.api.sweep instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return _deprecated_run
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
