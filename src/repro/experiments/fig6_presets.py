"""Figure 6: profiling across the ten x264 presets (crf=23, refs=3).

Four panels: (a) transcoding time / bitrate / PSNR, (b) top-down bound
slots, (c) branch + cache MPKI, (d) resource stalls. Headline shapes:
time grows monotonically from ultrafast to placebo; bitrate improves
sharply up to veryfast then plateaus (the paper's "tune up to veryfast"
advice); data-cache MPKI and the back-end bound fraction *fall* with
slower presets (higher operational intensity); branch MPKI fluctuates
with no clear direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.presets import PRESET_NAMES
from repro.experiments.report import series_table
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner
from repro.profiling.counters import CounterSet

__all__ = ["Fig6Result", "run"]


@dataclass
class Fig6Result:
    presets: tuple[str, ...]
    counters: dict[str, CounterSet]

    def series(self, attr: str) -> list[float]:
        return [getattr(self.counters[p], attr) for p in self.presets]

    def render(self) -> str:
        xs = list(self.presets)
        a = series_table(
            "preset",
            xs,
            {
                "time(ms)": [t * 1e3 for t in self.series("time_seconds")],
                "bitrate(kbps)": self.series("bitrate_kbps"),
                "PSNR(dB)": self.series("psnr_db"),
            },
        )
        b = series_table(
            "preset",
            xs,
            {
                "FE%": self.series("frontend_bound"),
                "BE%": self.series("backend_bound"),
                "BS%": self.series("bad_speculation"),
                "ret%": self.series("retiring"),
            },
        )
        c = series_table(
            "preset",
            xs,
            {
                "branch": self.series("branch_mpki"),
                "L1d": self.series("l1d_mpki"),
                "L2": self.series("l2_mpki"),
                "L3": self.series("l3_mpki"),
            },
        )
        d = series_table(
            "preset",
            xs,
            {
                "any": self.series("stall_any_pki"),
                "ROB": self.series("stall_rob_pki"),
                "RS": self.series("stall_rs_pki"),
                "SB": self.series("stall_sb_pki"),
            },
        )
        return (
            "Figure 6 — across presets (crf=23, refs=3)\n"
            "(a) time / bitrate / PSNR\n" + a +
            "\n\n(b) top-down bound slots (%)\n" + b +
            "\n\n(c) branch & cache MPKI\n" + c +
            "\n\n(d) resource stalls (cycles/KI)\n" + d
        )


def run(scale: ExperimentScale = QUICK) -> Fig6Result:
    runner = shared_runner(scale)
    records = runner.preset_sweep()
    counters = {r.preset: r.counters for r in records}
    return Fig6Result(presets=PRESET_NAMES, counters=counters)
