"""Figure 9: transcoding speedup of the three schedulers over baseline.

Runs the paper's case study — Table III tasks on Table IV configurations
— and reports the random / smart / best schedulers' mean speedups, the
smart-vs-random margin (paper: 3.72%), and the fraction of tasks where
the smart placement coincides with the oracle's (paper: 75%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.experiments import parallel
from repro.experiments.cache import content_key
from repro.experiments.runner import ExperimentScale, QUICK
from repro.obs import session as obs
from repro.resilience.faults import InjectedFault
from repro.scheduling.casestudy import CaseStudyResult, run_case_study
from repro.uarch.configs import config_by_name

__all__ = ["Fig9Result", "run"]


@dataclass
class Fig9Result:
    case_study: CaseStudyResult

    @property
    def speedups(self) -> dict[str, float]:
        return {
            name: a.mean_speedup_pct
            for name, a in self.case_study.assignments.items()
        }

    @property
    def smart_vs_random_pct(self) -> float:
        return self.case_study.smart_vs_random_pct

    @property
    def smart_matches_best_fraction(self) -> float:
        return self.case_study.smart_matches_best_fraction

    def render(self) -> str:
        cs = self.case_study
        per_task_rows = []
        for task in cs.tasks:
            base = cs.baseline_cycles[task.task_id]
            row = [task.describe()]
            for cfg in cs.config_names:
                row.append((base / cs.cycles[task.task_id][cfg] - 1) * 100)
            per_task_rows.append(row)
        per_task = format_table(
            ["task"] + [f"{c} %" for c in cs.config_names], per_task_rows
        )
        sched_rows = [
            [name, a.mean_speedup_pct,
             " ".join(f"{t}->{c}" for t, c in sorted(a.placement.items()))]
            for name, a in cs.assignments.items()
        ]
        sched = format_table(["scheduler", "mean speedup %", "placement"], sched_rows)
        return (
            "Figure 9 — scheduler case study (speedup over baseline config)\n"
            "per-task speedup on each Table IV configuration:\n" + per_task +
            "\n\nscheduler comparison:\n" + sched +
            f"\n\nsmart - random = {self.smart_vs_random_pct:+.2f} pp "
            f"(paper: +3.72); smart matches best on "
            f"{self.smart_matches_best_fraction * 100:.0f}% of tasks (paper: 75%)"
        )


def _job_key(job) -> str:
    """Content hash for one task's simulation payload."""
    return content_key(
        "fig9",
        task=job.task,
        video={"width": job.width, "height": job.height,
               "n_frames": job.n_frames},
        sim={"data_capacity_scale": job.data_capacity_scale},
        configs={
            name: config_by_name(name)
            for name in ("baseline",) + tuple(job.config_names)
        },
    )


def _cached_mapper(fn, jobs):
    """The sweep engine's cache-then-compute path for case-study tasks."""
    cache = parallel.default_cache()
    payloads: dict[int, dict[str, object]] = {}
    missing = []
    for i, job in enumerate(jobs):
        hit = cache.get_value(_job_key(job)) if cache else None
        if isinstance(hit, dict) and "task_id" in hit:
            obs.inc("fig9.cache_hits")
            payloads[i] = hit
        else:
            missing.append((i, job))
    if missing:
        computed = parallel.fan_out(
            fn, [job for _i, job in missing], label="fig9"
        )
        for (i, job), payload in zip(missing, computed):
            payloads[i] = payload
            if cache is not None:
                try:
                    cache.put_value(_job_key(job), payload, kind="fig9")
                except (OSError, TimeoutError, ConnectionError, InjectedFault):
                    # A result we failed to persist is still a result;
                    # degrade to in-memory rather than failing the figure.
                    obs.inc("cache.write_giveups")
    return [payloads[i] for i in range(len(jobs))]


def run(scale: ExperimentScale = QUICK) -> Fig9Result:
    case_study = run_case_study(
        width=scale.width,
        height=scale.height,
        n_frames=scale.n_frames,
        data_capacity_scale=scale.data_capacity_scale,
        mapper=_cached_mapper,
    )
    return Fig9Result(case_study=case_study)
