"""Roofline placement of the crf x refs sweep (extension experiment).

The paper explains every §IV-A trend with the roofline model: raising crf
or refs lowers *operational intensity* (computation per byte of DRAM
traffic), sliding the workload down the memory slope — which is why the
back-end bound fraction climbs. This experiment makes that argument
quantitative for our reproduction: it places every sweep point on the
machine roofline and verifies the intensity really is monotone in the
two parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import format_table
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner
from repro.profiling.roofline import RooflineModel

__all__ = ["RooflineResult", "run"]

_LINE_BYTES = 64


@dataclass
class RooflineResult:
    crf_values: tuple[int, ...]
    refs_values: tuple[int, ...]
    # [refs_index, crf_index] grids
    intensity: np.ndarray  # instructions per off-core (beyond-L2) byte
    ipc: np.ndarray
    bound: list[list[str]]
    model: RooflineModel

    def intensity_trend_along_crf(self) -> float:
        """Mean last-minus-first intensity along crf (expected negative)."""
        return float(np.mean(self.intensity[:, -1] - self.intensity[:, 0]))

    def intensity_trend_along_refs(self) -> float:
        """Mean last-minus-first intensity along refs (expected negative)."""
        return float(np.mean(self.intensity[-1, :] - self.intensity[0, :]))

    def render(self) -> str:
        rows = []
        for i, refs in enumerate(self.refs_values):
            for j, crf in enumerate(self.crf_values):
                rows.append(
                    [
                        crf,
                        refs,
                        self.intensity[i, j],
                        self.ipc[i, j],
                        self.bound[i][j],
                    ]
                )
        table = format_table(
            ["crf", "refs", "ops/offcore-byte", "IPC", "bound"], rows
        )
        return (
            "Roofline placement of the crf x refs sweep "
            f"(ridge point = {self.model.ridge_point:.2f} ops/byte)\n"
            + table
            + f"\n\nintensity trend along crf : "
            f"{self.intensity_trend_along_crf():+.1f} ops/byte"
            f"\nintensity trend along refs: "
            f"{self.intensity_trend_along_refs():+.1f} ops/byte"
            "\n(negative trends = the paper's roofline explanation: higher"
            " crf/refs lowers operational intensity)"
        )


def run(scale: ExperimentScale = QUICK) -> RooflineResult:
    runner = shared_runner(scale)
    records = runner.crf_refs_sweep()
    by_key = {(r.crf, r.refs): r.counters for r in records}
    model = RooflineModel()
    shape = (len(scale.refs_values), len(scale.crf_values))
    intensity = np.zeros(shape)
    ipc = np.zeros(shape)
    bound = [["?"] * shape[1] for _ in range(shape[0])]
    for i, refs in enumerate(scale.refs_values):
        for j, crf in enumerate(scale.crf_values):
            c = by_key[(crf, refs)]
            # Off-core bytes: traffic past the L2 (the paper's Xeon spills
            # its reference working sets at L2/L3; at proxy scale the L2
            # boundary is where the same spill appears).
            offcore_bytes = max(
                c.l2_mpki * c.instructions / 1000.0 * _LINE_BYTES, 1e-9
            )
            oi = c.instructions / offcore_bytes
            intensity[i, j] = oi
            ipc[i, j] = c.ipc
            bound[i][j] = model.classify(oi)
    return RooflineResult(
        crf_values=scale.crf_values,
        refs_values=scale.refs_values,
        intensity=intensity,
        ipc=ipc,
        bound=bound,
        model=model,
    )
