"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(scale) -> <Result>`` where the result
carries the raw data (for tests and benchmarks) and ``render() -> str``
produces the same rows/series the paper reports. The
:class:`~repro.experiments.runner.ExperimentScale` controls proxy sizing:
``quick`` (default) finishes in tens of seconds, ``full`` approaches the
paper's 816-combination grids.
"""

from repro.experiments.runner import ExperimentScale, SweepRunner

__all__ = ["ExperimentScale", "SweepRunner"]

#: Experiment registry used by the CLI: id -> (module, description).
EXPERIMENT_IDS = (
    "tab1",
    "tab2",
    "tab3",
    "tab4",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "roofline",
)
