"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(scale) -> <Result>`` where the result
carries the raw data (for tests and benchmarks) and ``render() -> str``
produces the same rows/series the paper reports. The
:class:`~repro.experiments.runner.ExperimentScale` controls proxy sizing:
``quick`` (default) finishes in tens of seconds, ``full`` approaches the
paper's 816-combination grids.
"""

from repro.experiments.cache import ResultCache, SweepRecord, default_cache_dir
from repro.experiments.parallel import configure, default_cache, default_jobs
from repro.experiments.runner import ExperimentScale, SweepRunner

__all__ = [
    "ExperimentScale",
    "ResultCache",
    "SweepRecord",
    "SweepRunner",
    "configure",
    "default_cache",
    "default_cache_dir",
    "default_jobs",
    "EXPERIMENT_DESCRIPTIONS",
    "EXPERIMENT_IDS",
]

#: Experiment registry used by the CLI: id -> one-line description
#: (rendered by ``repro list``).
EXPERIMENT_DESCRIPTIONS: dict[str, str] = {
    "tab1": "Table I — vbench video catalog with measured entropies",
    "tab2": "Table II — the ten x264 presets' option values",
    "tab3": "Table III — scheduler case-study transcoding tasks",
    "tab4": "Table IV — simulated microarchitecture configurations",
    "fig3": "Figure 3 — FE/BE/BS-bound heatmaps over the crf x refs grid",
    "fig4": "Figure 4 — transcode-time projections across the grid",
    "fig5": "Figure 5 — cycle-inefficiency (MPKI/stall) heatmaps",
    "fig6": "Figure 6 — per-preset microarchitectural characterization",
    "fig7": "Figure 7 — per-video microarchitectural characterization",
    "fig8": "Figure 8 — AutoFDO/Graphite compiler-optimization study",
    "fig9": "Figure 9 — random/smart/best scheduler case study",
    "roofline": "Roofline — operational-intensity sweep (extension)",
}

EXPERIMENT_IDS = tuple(EXPERIMENT_DESCRIPTIONS)
