"""Persistent on-disk result store for the sweep engine.

The paper's §III-C characterization sweeps 816 crf x refs combinations
per video — by far the most expensive code path in this reproduction.
Every profiled point is deterministic given its inputs, so completed
points are stored on disk keyed by a content hash of everything that can
change the result: the repro version, the full
:class:`~repro.codec.options.EncoderOptions`, the video spec (name and
proxy geometry), the simulation knobs (sample rate, data-capacity
scale), and the microarchitecture configuration. Repeat runs — across
processes, not just within one — then cost a JSON read per point.

Design points:

- **Content-hashed keys.** :func:`content_key` canonicalizes the key
  payload (sorted keys, compact JSON, dataclasses flattened by field
  name) before hashing, so keys are independent of dict insertion order
  and dataclass field declaration order, and change whenever any option
  or configuration value changes.
- **Atomic writes.** Entries are written to a temp file in the target
  directory and ``os.replace``-d into place, so a crashed or concurrent
  writer can never leave a half-written entry behind.
- **Corruption tolerance + quarantine.** A truncated or garbled entry
  is treated as a miss (the point is recomputed and rewritten), never
  as an error — and the damaged file is moved aside to
  ``<name>.corrupt`` so it can be inspected and counted by
  ``repro cache stats`` instead of being silently overwritten. Entries
  written under a different schema version are plain misses (expected
  drift, not damage).
- **Retried I/O.** Reads and writes run under the engine's
  :class:`~repro.resilience.retry.RetryPolicy`, so transient I/O errors
  (including injected ``cache.read`` / ``cache.write`` faults) are
  retried with backoff; a read that exhausts its budget degrades to a
  miss, and a write that exhausts its budget raises ``OSError`` for the
  caller to absorb.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import resilience
from repro.obs import session as obs
from repro.profiling.counters import CounterSet
from repro.resilience.faults import InjectedFault, fault_point

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "SweepRecord",
    "canonical_json",
    "content_key",
    "default_cache_dir",
    "record_from_payload",
    "record_to_payload",
]

#: Bump to invalidate every existing cache entry (key payloads embed it).
CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepRecord:
    """One profiled point of a sweep."""

    video: str
    crf: int
    refs: int
    preset: str
    counters: CounterSet

    def as_row(self) -> dict[str, float | int | str]:
        row: dict[str, float | int | str] = {
            "video": self.video,
            "crf": self.crf,
            "refs": self.refs,
            "preset": self.preset,
        }
        row.update(self.counters.as_dict())
        return row


# ----------------------------------------------------------------------
# Canonical serialization and content-hashed keys.
# ----------------------------------------------------------------------

def _jsonable(obj: object) -> object:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def canonical_json(payload: object) -> str:
    """Order-independent JSON: sorted keys, compact separators, and
    dataclasses flattened field-by-name (so reordering a dataclass's
    field declarations cannot change a key)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def content_key(kind: str, **components: object) -> str:
    """SHA-256 over the canonical JSON of ``components`` plus the repro
    version and cache schema version."""
    import repro

    payload = {
        "kind": kind,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "repro_version": repro.__version__,
        "components": components,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# SweepRecord <-> JSON payloads.
# ----------------------------------------------------------------------

def record_to_payload(record: SweepRecord) -> dict[str, object]:
    """JSON-serializable payload for one :class:`SweepRecord`."""
    return {
        "video": record.video,
        "crf": record.crf,
        "refs": record.refs,
        "preset": record.preset,
        "counters": record.counters.as_dict(),
    }


def record_from_payload(payload: dict[str, object]) -> SweepRecord:
    """Rebuild a :class:`SweepRecord`; raises ``ValueError``/``KeyError``/
    ``TypeError`` on any shape mismatch (callers treat that as a miss)."""
    counters = payload["counters"]
    if not isinstance(counters, dict):
        raise ValueError("counters payload must be a mapping")
    names = CounterSet.field_names()
    if set(counters) != set(names):
        raise ValueError(
            "counter fields do not match the current CounterSet schema"
        )
    return SweepRecord(
        video=str(payload["video"]),
        crf=int(payload["crf"]),  # type: ignore[arg-type]
        refs=int(payload["refs"]),  # type: ignore[arg-type]
        preset=str(payload["preset"]),
        counters=CounterSet(**{n: float(counters[n]) for n in names}),
    )


# ----------------------------------------------------------------------
# The on-disk store.
# ----------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``,
    else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


@dataclass(frozen=True)
class CacheStats:
    root: Path
    entries: int
    total_bytes: int
    corrupt: int = 0

    def render(self) -> str:
        return (
            f"cache root : {self.root}\n"
            f"entries    : {self.entries}\n"
            f"total size : {self.total_bytes / 1024.0:.1f} KiB\n"
            f"corrupt    : {self.corrupt} quarantined"
        )


class ResultCache:
    """One directory of content-addressed JSON entries.

    Entries live at ``root/<key[:2]>/<key>.json`` wrapped in a small
    envelope carrying the schema version. :meth:`get_value` /
    :meth:`put_value` move arbitrary JSON payloads; :meth:`get_record` /
    :meth:`put_record` add the :class:`SweepRecord` serde on top.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside to ``<name>.corrupt`` (replacing
        any previous quarantine of the same key) so corruption is
        visible in ``repro cache stats`` rather than silently erased."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        obs.inc("cache.quarantined")

    # -- raw JSON payloads ---------------------------------------------
    def get_value(self, key: str) -> object | None:
        """The stored payload, or ``None`` on any miss, truncation,
        corruption, or schema mismatch.

        The read is retried under the engine's retry policy; a corrupt
        entry is quarantined to ``<name>.corrupt`` before reporting the
        miss."""
        path = self.path_for(key)

        def _read() -> str | None:
            fault_point("cache.read", detail=key)
            try:
                return path.read_text(encoding="utf-8")
            except FileNotFoundError:
                return None

        try:
            text = resilience.call_with_retry(
                _read,
                policy=resilience.retry_policy(),
                token=key,
                label="cache.read",
            )
        except (OSError, TimeoutError, ConnectionError, InjectedFault):
            obs.inc("cache.read_giveups")
            return None
        if text is None:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(envelope, dict) or "payload" not in envelope:
            self._quarantine(path)
            return None
        if envelope.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None  # expected schema drift, not damage
        return envelope["payload"]

    def put_value(self, key: str, payload: object, *, kind: str = "value") -> Path:
        """Atomically write ``payload`` under ``key`` and return its path.

        Retried under the engine's retry policy; raises ``OSError`` (or
        the injected fault) once the budget is exhausted."""
        import repro

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "repro_version": repro.__version__,
            "kind": kind,
            "key": key,
            "payload": payload,
        }

        def _write() -> Path:
            fault_point("cache.write", detail=key)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(envelope, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return path

        return resilience.call_with_retry(
            _write,
            policy=resilience.retry_policy(),
            token=key,
            label="cache.write",
        )

    # -- SweepRecord entries -------------------------------------------
    def get_record(self, key: str) -> SweepRecord | None:
        payload = self.get_value(key)
        if not isinstance(payload, dict):
            return None
        try:
            return record_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def put_record(self, key: str, record: SweepRecord) -> Path:
        return self.put_value(key, record_to_payload(record), kind="sweep")

    # -- maintenance ----------------------------------------------------
    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def _corrupt_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.corrupt"))

    def stats(self) -> CacheStats:
        paths = self._entry_paths()
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=self.root,
            entries=len(paths),
            total_bytes=total,
            corrupt=len(self._corrupt_paths()),
        )

    def clear(self) -> int:
        """Delete every entry (quarantined files included); returns how
        many live entries were removed."""
        for path in self._corrupt_paths():
            try:
                path.unlink()
            except OSError:
                pass
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for subdir in sorted(self.root.glob("*/")):
            try:
                subdir.rmdir()
            except OSError:
                pass
        return removed
