"""Figure 3: heatmaps of front-end / back-end / bad-speculation bound slots.

The paper sweeps crf 1-51 x refs 1-16 (816 combinations) on a single
video and shows three heatmaps of pipeline-slot percentages. Headline
shape: raising either crf or refs *reduces* front-end and bad-speculation
bound slots and *increases* back-end bound slots; front-end bound stays a
small, slowly-varying fraction throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import ascii_heatmap
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner

__all__ = ["Fig3Result", "run"]


@dataclass
class Fig3Result:
    """Grids indexed [refs_index, crf_index]."""

    crf_values: tuple[int, ...]
    refs_values: tuple[int, ...]
    frontend: np.ndarray
    backend: np.ndarray
    bad_speculation: np.ndarray
    retiring: np.ndarray

    def corner_deltas(self) -> dict[str, float]:
        """Change from the (min crf, min refs) corner to (max, max)."""
        return {
            "frontend": float(self.frontend[-1, -1] - self.frontend[0, 0]),
            "backend": float(self.backend[-1, -1] - self.backend[0, 0]),
            "bad_speculation": float(
                self.bad_speculation[-1, -1] - self.bad_speculation[0, 0]
            ),
        }

    def render(self) -> str:
        kwargs = dict(
            row_labels=[f"refs={r}" for r in self.refs_values],
            col_labels=list(self.crf_values),
        )
        parts = [
            "Figure 3 — pipeline-slot bound heatmaps (rows: refs, cols: crf)",
            "",
            ascii_heatmap(self.frontend, title="(a) Front-end bound (%)", **kwargs),
            "",
            ascii_heatmap(self.backend, title="(b) Back-end bound (%)", **kwargs),
            "",
            ascii_heatmap(
                self.bad_speculation, title="(c) Bad speculation bound (%)", **kwargs
            ),
        ]
        return "\n".join(parts)


def run(scale: ExperimentScale = QUICK) -> Fig3Result:
    runner = shared_runner(scale)
    records = runner.crf_refs_sweep()
    by_key = {(r.crf, r.refs): r for r in records}
    shape = (len(scale.refs_values), len(scale.crf_values))
    fe = np.zeros(shape)
    be = np.zeros(shape)
    bs = np.zeros(shape)
    ret = np.zeros(shape)
    for i, refs in enumerate(scale.refs_values):
        for j, crf in enumerate(scale.crf_values):
            c = by_key[(crf, refs)].counters
            fe[i, j] = c.frontend_bound
            be[i, j] = c.backend_bound
            bs[i, j] = c.bad_speculation
            ret[i, j] = c.retiring
    return Fig3Result(
        crf_values=scale.crf_values,
        refs_values=scale.refs_values,
        frontend=fe,
        backend=be,
        bad_speculation=bs,
        retiring=ret,
    )
